"""The shared whole-program model the graph-level lint rules run on.

The per-file rules of PR 5 see one AST at a time; the concurrency
rules added here (``lock-order``, ``api-blocking``,
``resource-lifecycle``) need a *project* view: which classes exist,
which of their attributes are locks, what type an attribute holds
(``self._pool = WorkerPool(...)``), and which property is a thin alias
for a private attribute (``SegmentedIndex.lock`` returning
``self._lock``).  :class:`ProjectModel` builds that view in one pass
over the scanned sources; :mod:`repro.analysis.callgraph` layers the
conservative call graph and lock-acquisition contexts on top.

Type inference is deliberately shallow and conservative: an attribute
gets a type only when it is assigned a direct constructor call (or a
list comprehension of one), and anything unresolvable stays unknown —
the rules never guess.  That is enough to resolve the cross-object
edges that matter here, like ``WorkerHandle._cond`` held while a
``CircuitBreaker._lock`` method runs, without a real type system.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.source import SourceFile

#: Attribute names treated as lock-ish even without a resolvable
#: constructor — mirrors the ``lock-discipline`` rule's heuristic.
LOCKISH = re.compile(r"lock|cond|mutex", re.IGNORECASE)

#: ``threading`` constructors -> lock kind.  Kind "lock" is
#: non-reentrant; "rlock" and "condition" (whose default inner lock is
#: an RLock) may be re-acquired by the holding thread.
_LOCK_KINDS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "Semaphore": "lock",
    "BoundedSemaphore": "lock",
}

KIND_UNKNOWN = "unknown"

#: Methods whose presence marks a class as releasing its resources.
RELEASE_METHODS = frozenset((
    "close", "shutdown", "stop", "terminate", "kill", "release",
    "disconnect", "__exit__", "__del__", "clear",
))


@dataclass(frozen=True, slots=True)
class TypeRef:
    """A shallow inferred type.

    ``kind`` is ``"instance"`` (name = class name, unresolved string),
    ``"list"`` (name = element class name), or ``"lock"`` (name = the
    lock kind from :data:`_LOCK_KINDS`).
    """

    kind: str
    name: str


@dataclass(slots=True)
class ClassModel:
    """One class of the scanned corpus."""

    module: str
    name: str
    lineno: int
    source: SourceFile
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    #: method name -> def node (later defs win, like runtime).
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: attr -> shallow type of ``self.attr = ...`` assignments.
    attr_types: dict[str, TypeRef] = field(default_factory=dict)
    #: attr -> lock kind for lock-typed / lock-ish attributes.
    lock_attrs: dict[str, str] = field(default_factory=dict)
    #: property name -> attribute it trivially returns (``self._x``).
    property_aliases: dict[str, str] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"

    def has_release_method(self) -> bool:
        return any(name in RELEASE_METHODS for name in self.methods)


@dataclass(slots=True)
class ModuleModel:
    """One module: its classes, top-level functions, and imports."""

    name: str
    source: SourceFile
    classes: dict[str, ClassModel] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: local name -> dotted origin ("repro.sharding.pool" or
    #: "repro.sharding.pool.WorkerPool") for import resolution.
    imports: dict[str, str] = field(default_factory=dict)


def _callee_class_name(call: ast.Call) -> str | None:
    """The class a constructor-ish call would instantiate, by name.

    ``WorkerPool(...)`` -> ``WorkerPool``; ``Telemetry.from_config(...)``
    -> ``Telemetry`` (classmethod-factory heuristic: a capitalized
    receiver name).  Method calls on instances resolve to ``None``.
    """
    func = call.func
    if isinstance(func, ast.Name):
        if func.id and func.id[0].isupper():
            return func.id
        return None
    if (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id and func.value.id[0].isupper()):
        return func.value.id
    return None


def _lock_kind_of(call: ast.Call) -> str | None:
    """The lock kind when ``call`` constructs a threading primitive."""
    func = call.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return _LOCK_KINDS.get(name or "")


def infer_value_type(value: ast.expr) -> TypeRef | None:
    """Shallow type of an assignment's right-hand side."""
    if isinstance(value, ast.BoolOp):
        # ``telemetry or Telemetry.from_config(...)``: any resolvable
        # operand names the type (they should agree; last wins).
        resolved = None
        for operand in value.values:
            inferred = infer_value_type(operand)
            if inferred is not None:
                resolved = inferred
        return resolved
    if isinstance(value, ast.Call):
        kind = _lock_kind_of(value)
        if kind is not None:
            return TypeRef("lock", kind)
        cls = _callee_class_name(value)
        if cls is not None:
            return TypeRef("instance", cls)
        return None
    if isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        elt = infer_value_type(value.elt)
        if elt is not None and elt.kind == "instance":
            return TypeRef("list", elt.name)
        return None
    if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
        for elt in value.elts:
            inferred = infer_value_type(elt)
            if inferred is not None and inferred.kind == "instance":
                return TypeRef("list", inferred.name)
        return None
    return None


def infer_annotation_type(annotation: ast.expr | None) -> TypeRef | None:
    """Shallow type from an annotation: ``Cls`` or ``list[Cls]``."""
    if isinstance(annotation, ast.Name):
        if annotation.id and annotation.id[0].isupper():
            return TypeRef("instance", annotation.id)
        return None
    if (isinstance(annotation, ast.Subscript)
            and isinstance(annotation.value, ast.Name)
            and annotation.value.id in ("list", "List", "tuple", "Tuple")
            and isinstance(annotation.slice, ast.Name)
            and annotation.slice.id and annotation.slice.id[0].isupper()):
        return TypeRef("list", annotation.slice.id)
    return None


def _self_attr_target(target: ast.expr) -> str | None:
    if (isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"):
        return target.attr
    return None


def _harvest_attr_types(model: ClassModel) -> None:
    for method in model.methods.values():
        for node in ast.walk(method):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            value = node.value
            if value is None:
                continue
            if (isinstance(node, ast.Assign) and len(targets) == 1
                    and isinstance(targets[0], ast.Tuple)
                    and isinstance(value, ast.Tuple)
                    and len(targets[0].elts) == len(value.elts)):
                pairs = list(zip(targets[0].elts, value.elts))
            else:
                pairs = [(t, value) for t in targets]
            annotated = (infer_annotation_type(node.annotation)
                         if isinstance(node, ast.AnnAssign) else None)
            for target, rhs in pairs:
                attr = _self_attr_target(target)
                if attr is None:
                    continue
                inferred = infer_value_type(rhs) or annotated
                if inferred is None:
                    continue
                if attr not in model.attr_types:
                    model.attr_types[attr] = inferred
                if inferred.kind == "lock":
                    model.lock_attrs.setdefault(attr, inferred.name)


def _harvest_property_aliases(model: ClassModel) -> None:
    for name, method in model.methods.items():
        if not any(isinstance(d, ast.Name) and d.id == "property"
                   for d in method.decorator_list):
            continue
        body = [stmt for stmt in method.body
                if not (isinstance(stmt, ast.Expr)
                        and isinstance(stmt.value, ast.Constant))]
        if len(body) != 1 or not isinstance(body[0], ast.Return):
            continue
        attr = _self_attr_target(body[0].value) \
            if body[0].value is not None else None
        if attr is not None:
            model.property_aliases[name] = attr


def _harvest_lockish_withs(model: ClassModel) -> None:
    """``with self.X`` over a lockish name registers X even when its
    constructor was not resolvable (assigned conditionally, injected)."""
    for method in model.methods.values():
        for node in ast.walk(method):
            if not isinstance(node, ast.With):
                continue
            for item in node.items:
                attr = _self_attr_target(item.context_expr)
                if attr is not None and LOCKISH.search(attr):
                    model.lock_attrs.setdefault(attr, KIND_UNKNOWN)


def _build_class(source: SourceFile, node: ast.ClassDef) -> ClassModel:
    model = ClassModel(module=source.module, name=node.name,
                       lineno=node.lineno, source=source, node=node)
    model.bases = tuple(
        base.id if isinstance(base, ast.Name) else base.attr
        for base in node.bases
        if isinstance(base, (ast.Name, ast.Attribute)))
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(stmt, ast.FunctionDef):
                model.methods[stmt.name] = stmt
    _harvest_attr_types(model)
    _harvest_property_aliases(model)
    _harvest_lockish_withs(model)
    return model


def _harvest_imports(module: ModuleModel) -> None:
    for node in ast.walk(module.source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                module.imports[local] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                module.imports[local] = f"{node.module}.{alias.name}"


class ProjectModel:
    """Classes, modules, and shallow attribute types of one lint run."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleModel] = {}
        self.classes_by_name: dict[str, list[ClassModel]] = {}

    @classmethod
    def build(cls, sources: Sequence[SourceFile]) -> "ProjectModel":
        project = cls()
        for source in sources:
            module = ModuleModel(name=source.module, source=source)
            _harvest_imports(module)
            for node in source.tree.body:
                if isinstance(node, ast.ClassDef):
                    class_model = _build_class(source, node)
                    module.classes[node.name] = class_model
                    project.classes_by_name.setdefault(
                        node.name, []).append(class_model)
                elif isinstance(node, ast.FunctionDef):
                    module.functions[node.name] = node
            project.modules[source.module] = module
        return project

    def resolve_class(self, name: str,
                      from_module: str | None = None) -> ClassModel | None:
        """The class ``name`` refers to from ``from_module``.

        Same module first, then the module's ``from X import name``,
        then a project-unique class of that simple name; ambiguity
        resolves to None (the rules never guess).
        """
        if from_module is not None:
            module = self.modules.get(from_module)
            if module is not None:
                local = module.classes.get(name)
                if local is not None:
                    return local
                origin = module.imports.get(name)
                if origin is not None and "." in origin:
                    target_module, _, target_name = origin.rpartition(".")
                    imported = self.modules.get(target_module)
                    if imported is not None:
                        found = imported.classes.get(target_name)
                        if found is not None:
                            return found
        candidates = self.classes_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_method(self, cls: ClassModel, name: str
                       ) -> tuple[ClassModel, ast.FunctionDef] | None:
        """Find ``name`` on ``cls`` or (one level of) its bases."""
        method = cls.methods.get(name)
        if method is not None:
            return cls, method
        for base_name in cls.bases:
            base = self.resolve_class(base_name, cls.module)
            if base is not None:
                method = base.methods.get(name)
                if method is not None:
                    return base, method
        return None

    def iter_classes(self):
        for module_name in sorted(self.modules):
            module = self.modules[module_name]
            for class_name in sorted(module.classes):
                yield module.classes[class_name]
