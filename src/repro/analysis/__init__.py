"""Project static analysis: AST lint rules for schemr's own source.

Usage::

    schemr lint [--format json] [--baseline PATH] [--update-baseline]
    python -m repro.analysis --self-check

See DESIGN.md ("Static analysis") for the rule catalog and the pragma
syntax.
"""

from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)
from repro.analysis.registry import Rule, all_rules, get_rule, register
from repro.analysis.report import LintResult, render_json, render_text
from repro.analysis.runner import main, run_lint, self_check
from repro.analysis.source import SourceFile

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SourceFile",
    "all_rules",
    "get_rule",
    "main",
    "register",
    "render_json",
    "render_text",
    "run_lint",
    "self_check",
]
