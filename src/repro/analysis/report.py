"""Reporters: render a lint run as text or machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.findings import Finding

JSON_REPORT_VERSION = 1


@dataclass(slots=True)
class LintResult:
    """Everything a reporter (or CI) needs about one run."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def sorted_findings(self) -> list[Finding]:
        return sorted(self.findings, key=Finding.sort_key)


def render_text(result: LintResult) -> str:
    lines = [finding.render() for finding in result.sorted_findings()]
    per_rule = Counter(f.rule for f in result.findings)
    rule_blurb = ", ".join(
        f"{rule}: {count}" for rule, count in sorted(per_rule.items()))
    summary = (
        f"{len(result.findings)} finding(s) in "
        f"{result.files_scanned} file(s)"
        + (f" [{rule_blurb}]" if rule_blurb else "")
        + (f"; {len(result.baselined)} baselined" if result.baselined
           else "")
        + (f"; {result.suppressed} suppressed by pragma"
           if result.suppressed else ""))
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": JSON_REPORT_VERSION,
        "summary": {
            "files": result.files_scanned,
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "rules": dict(sorted(
                Counter(f.rule for f in result.findings).items())),
        },
        "findings": [f.to_dict() for f in result.sorted_findings()],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render(result: LintResult, fmt: str) -> str:
    if fmt == "json":
        return render_json(result)
    if fmt == "text":
        return render_text(result)
    raise ValueError(f"unknown report format {fmt!r}")
