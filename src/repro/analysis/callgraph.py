"""Pass 2 input: lock-acquisition contexts and the conservative call graph.

Every method and top-level function of the scanned corpus is distilled
into a :class:`MethodSummary` — the ordered list of *events* that
matter to the concurrency rules:

* ``acquire`` — a lock is taken (``with self._lock:`` or an explicit
  ``.acquire()``), recorded with the locks already held at that point;
* ``call`` — any other call, with the held-lock snapshot, the resolved
  callee when the shallow type model can name it, and enough shape
  (argument count, ``timeout=`` keyword) for the blocking rule.

The walker is flow-aware where it matters: explicit ``.release()`` /
``.acquire()`` inside a ``with`` region updates the held set (the
``WorkerHandle.collect`` pump drops its condition around the blocking
pipe read, and must not be reported as holding it), and each branch of
``if``/``try`` walks a copy of the held set so a release on one path
never leaks into its sibling.

:func:`compute_lock_closure` then closes acquisitions over the call
graph — ``locks_of(m)`` = every lock ``m`` may take, transitively —
keeping the shortest witness chain per lock so a cross-method
lock-order edge can be reported with the path that proves it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.model import ClassModel, ProjectModel
from repro.analysis.source import SourceFile

#: Fixpoint guard: witness chains longer than this stop propagating.
MAX_CHAIN = 6


@dataclass(frozen=True, slots=True, order=True)
class LockKey:
    """One lock in the global order graph: ``ClassName.attr``."""

    cls: str
    attr: str
    kind: str = field(compare=False, default="unknown")

    @property
    def label(self) -> str:
        return f"{self.cls}.{self.attr}"


@dataclass(frozen=True, slots=True)
class HeldLock:
    lock: LockKey
    line: int


@dataclass(slots=True)
class Event:
    """One acquire or call, with the held-lock context."""

    kind: str  # "acquire" | "call"
    line: int
    held: tuple[HeldLock, ...]
    #: acquire: the lock taken; also set for ``.acquire()``/``.wait()``
    #: style calls where the receiver is a known lock.
    lock: LockKey | None = None
    #: acquire: the same lock is already held (reentrancy probe).
    reentrant: bool = False
    #: acquire: True for explicit ``.acquire()`` (vs ``with``).
    explicit: bool = False
    #: call: resolved callee qualname, when the type model can name it.
    target: str | None = None
    #: call: the called name (attribute or bare function name).
    name: str = ""
    n_args: int = 0
    has_timeout: bool = False


@dataclass(slots=True)
class MethodSummary:
    """Events of one method/function, keyed by its qualname."""

    qualname: str
    module: str
    path: str
    line: int
    events: list[Event] = field(default_factory=list)


def _timeoutish(call: ast.Call) -> bool:
    """Whether the call bounds its blocking: positional args count
    (``join(1.0)``, ``wait(timeout)``) or a ``timeout=`` keyword."""
    if call.args:
        return True
    return any(kw.arg == "timeout" for kw in call.keywords)


class _Env:
    """Local variable -> resolved type, per method walk."""

    def __init__(self) -> None:
        self.vars: dict[str, tuple[str, object]] = {}

    def get(self, name: str):
        return self.vars.get(name)

    def set(self, name: str, value) -> None:
        if value is None:
            self.vars.pop(name, None)
        else:
            self.vars[name] = value


class _MethodWalker:
    """Extract events from one method body."""

    def __init__(self, project: ProjectModel, cls: ClassModel | None,
                 module: str, summary: MethodSummary) -> None:
        self.project = project
        self.cls = cls
        self.module = module
        self.summary = summary
        self.env = _Env()

    # -- type resolution --------------------------------------------------

    def _resolve_annotation(self, annotation: ast.expr | None):
        if isinstance(annotation, ast.Name):
            found = self.project.resolve_class(annotation.id, self.module)
            if found is not None:
                return ("instance", found)
        if isinstance(annotation, ast.Constant) \
                and isinstance(annotation.value, str):
            found = self.project.resolve_class(annotation.value,
                                               self.module)
            if found is not None:
                return ("instance", found)
        return None

    def seed_params(self, node: ast.FunctionDef) -> None:
        args = list(node.args.posonlyargs) + list(node.args.args) \
            + list(node.args.kwonlyargs)
        for arg in args:
            if arg.arg == "self":
                if self.cls is not None:
                    self.env.set("self", ("instance", self.cls))
                continue
            self.env.set(arg.arg, self._resolve_annotation(arg.annotation))

    def _resolve_instance_attr(self, owner: ClassModel, attr: str,
                               depth: int = 0):
        """Type of ``<owner instance>.attr``, following property aliases."""
        if depth > 3:
            return None
        lock_kind = owner.lock_attrs.get(attr)
        if lock_kind is not None:
            return ("lock", LockKey(owner.name, attr, lock_kind))
        alias = owner.property_aliases.get(attr)
        if alias is not None:
            return self._resolve_instance_attr(owner, alias, depth + 1)
        ref = owner.attr_types.get(attr)
        if ref is None:
            return None
        if ref.kind == "lock":
            return ("lock", LockKey(owner.name, attr, ref.name))
        found = self.project.resolve_class(ref.name, owner.module)
        if found is None:
            return None
        if ref.kind == "instance":
            return ("instance", found)
        if ref.kind == "list":
            return ("list", found)
        return None

    def resolve_expr(self, expr: ast.expr | None):
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.cls is not None:
                return ("instance", self.cls)
            return self.env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.resolve_expr(expr.value)
            if base is not None and base[0] == "instance":
                return self._resolve_instance_attr(base[1], expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            base = self.resolve_expr(expr.value)
            if base is not None and base[0] == "list":
                return ("instance", base[1])
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif (isinstance(func, ast.Attribute)
                  and isinstance(func.value, ast.Name)
                  and func.value.id and func.value.id[0].isupper()):
                name = func.value.id
            if name and name[0].isupper():
                found = self.project.resolve_class(name, self.module)
                if found is not None:
                    return ("instance", found)
            return None
        if isinstance(expr, ast.BoolOp):
            for operand in expr.values:
                resolved = self.resolve_expr(operand)
                if resolved is not None:
                    return resolved
            return None
        if isinstance(expr, (ast.IfExp,)):
            return self.resolve_expr(expr.body) \
                or self.resolve_expr(expr.orelse)
        return None

    def resolve_lock(self, expr: ast.expr) -> LockKey | None:
        resolved = self.resolve_expr(expr)
        if resolved is not None and resolved[0] == "lock":
            return resolved[1]
        # Fallback: ``self.X`` over a lockish name with no resolvable
        # constructor still names a lock on the current class.
        if (self.cls is not None and isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in self.cls.lock_attrs):
            return LockKey(self.cls.name, expr.attr,
                           self.cls.lock_attrs[expr.attr])
        return None

    def _resolve_call_target(self, func: ast.expr) -> str | None:
        if isinstance(func, ast.Name):
            found = self.project.resolve_class(func.id, self.module)
            if found is not None and "__init__" in found.methods:
                return f"{found.qualname}.__init__"
            module = self.project.modules.get(self.module)
            if module is not None:
                if func.id in module.functions:
                    return f"{self.module}.{func.id}"
                origin = module.imports.get(func.id)
                if origin is not None and "." in origin:
                    target_module, _, name = origin.rpartition(".")
                    imported = self.project.modules.get(target_module)
                    if imported is not None and name in imported.functions:
                        return f"{target_module}.{name}"
            return None
        if isinstance(func, ast.Attribute):
            base = self.resolve_expr(func.value)
            if base is not None and base[0] == "instance":
                resolved = self.project.resolve_method(base[1], func.attr)
                if resolved is not None:
                    owner, _ = resolved
                    return f"{owner.qualname}.{func.attr}"
        return None

    # -- the walk ---------------------------------------------------------

    def walk_body(self, stmts, held: list[HeldLock]) -> None:
        for stmt in stmts:
            self.walk_stmt(stmt, held)

    def _branch(self, stmts, held: list[HeldLock]) -> None:
        self.walk_body(stmts, list(held))

    def walk_stmt(self, stmt: ast.stmt, held: list[HeldLock]) -> None:
        if isinstance(stmt, ast.With):
            pushed: list[LockKey] = []
            for item in stmt.items:
                lock = self.resolve_lock(item.context_expr)
                if lock is not None:
                    self._record_acquire(item.context_expr.lineno, lock,
                                         held, explicit=False)
                    held.append(HeldLock(lock, item.context_expr.lineno))
                    pushed.append(lock)
                else:
                    self.scan_calls(item.context_expr, held)
                    if isinstance(item.optional_vars, ast.Name):
                        self.env.set(
                            item.optional_vars.id,
                            self.resolve_expr(item.context_expr))
            self.walk_body(stmt.body, held)
            for lock in pushed:
                self._drop_held(held, lock)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.scan_calls(stmt.test, held)
            self._branch(stmt.body, held)
            self._branch(stmt.orelse, held)
        elif isinstance(stmt, ast.For):
            self.scan_calls(stmt.iter, held)
            if isinstance(stmt.target, ast.Name):
                iterated = self.resolve_expr(stmt.iter)
                if iterated is not None and iterated[0] == "list":
                    self.env.set(stmt.target.id, ("instance", iterated[1]))
            self._branch(stmt.body, held)
            self._branch(stmt.orelse, held)
        elif isinstance(stmt, ast.Try):
            # The try body walks the *live* held list: straight-line
            # release/acquire sequences (the collect pump) span it.
            self.walk_body(stmt.body, held)
            for handler in stmt.handlers:
                self._branch(handler.body, held)
            self._branch(stmt.orelse, held)
            self.walk_body(stmt.finalbody, held)
        elif isinstance(stmt, ast.Assign):
            self.scan_calls(stmt.value, held)
            self._bind_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.scan_calls(stmt.value, held)
                if isinstance(stmt.target, ast.Name):
                    self.env.set(stmt.target.id,
                                 self.resolve_expr(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self.scan_calls(stmt.value, held)
        elif isinstance(stmt, ast.Expr):
            if not self._handle_lock_call(stmt.value, held):
                self.scan_calls(stmt.value, held)
        elif isinstance(stmt, (ast.Return, ast.Raise, ast.Assert,
                               ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.scan_calls(child, held)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested defs run later, under their own context
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.scan_calls(child, held)
                elif isinstance(child, ast.stmt):
                    self.walk_stmt(child, held)

    def _bind_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            self.env.set(target.id, self.resolve_expr(stmt.value))
        elif (isinstance(target, ast.Tuple)
              and isinstance(stmt.value, ast.Tuple)
              and len(target.elts) == len(stmt.value.elts)):
            for elt, value in zip(target.elts, stmt.value.elts):
                if isinstance(elt, ast.Name):
                    self.env.set(elt.id, self.resolve_expr(value))

    def _drop_held(self, held: list[HeldLock], lock: LockKey) -> None:
        for index in range(len(held) - 1, -1, -1):
            if held[index].lock == lock:
                del held[index]
                return

    def _record_acquire(self, line: int, lock: LockKey,
                        held: list[HeldLock], *, explicit: bool,
                        has_timeout: bool = False) -> None:
        self.summary.events.append(Event(
            kind="acquire", line=line, held=tuple(held), lock=lock,
            reentrant=any(h.lock == lock for h in held),
            explicit=explicit, has_timeout=has_timeout))

    def _handle_lock_call(self, expr: ast.expr,
                          held: list[HeldLock]) -> bool:
        """Explicit ``<lock>.acquire()`` / ``.release()`` statements
        mutate the held set; returns True when handled."""
        if not (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)):
            return False
        lock = self.resolve_lock(expr.func.value)
        if lock is None:
            return False
        if expr.func.attr == "acquire":
            self._record_acquire(expr.lineno, lock, held, explicit=True,
                                 has_timeout=_timeoutish(expr))
            if not any(h.lock == lock for h in held):
                held.append(HeldLock(lock, expr.lineno))
            return True
        if expr.func.attr == "release":
            self._drop_held(held, lock)
            return True
        return False

    def scan_calls(self, expr: ast.expr, held: list[HeldLock]) -> None:
        """Record every call inside ``expr`` (lambdas excluded)."""
        for node in ast.walk(expr):
            if isinstance(node, (ast.Lambda,)):
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = ""
            lock = None
            if isinstance(func, ast.Attribute):
                name = func.attr
                resolved = self.resolve_expr(func.value)
                if resolved is not None and resolved[0] == "lock":
                    lock = resolved[1]
            elif isinstance(func, ast.Name):
                name = func.id
            self.summary.events.append(Event(
                kind="call", line=node.lineno, held=tuple(held),
                lock=lock, target=self._resolve_call_target(func),
                name=name, n_args=len(node.args),
                has_timeout=_timeoutish(node)))


def _summarize(project: ProjectModel, module: str, path: str,
               cls: ClassModel | None, qualname: str,
               node: ast.FunctionDef) -> MethodSummary:
    summary = MethodSummary(qualname=qualname, module=module, path=path,
                            line=node.lineno)
    walker = _MethodWalker(project, cls, module, summary)
    walker.seed_params(node)
    walker.walk_body(node.body, [])
    return summary


def build_summaries(project: ProjectModel) -> dict[str, MethodSummary]:
    """One :class:`MethodSummary` per method/function, by qualname."""
    summaries: dict[str, MethodSummary] = {}
    for module_name in sorted(project.modules):
        module = project.modules[module_name]
        path = module.source.path
        for func_name in sorted(module.functions):
            qualname = f"{module_name}.{func_name}"
            summaries[qualname] = _summarize(
                project, module_name, path, None, qualname,
                module.functions[func_name])
        for class_name in sorted(module.classes):
            cls = module.classes[class_name]
            for method_name in sorted(cls.methods):
                qualname = f"{cls.qualname}.{method_name}"
                summaries[qualname] = _summarize(
                    project, module_name, path, cls, qualname,
                    cls.methods[method_name])
    return summaries


@dataclass(slots=True)
class GraphContext:
    """Everything the graph-level rules share, built once per run."""

    project: ProjectModel
    summaries: dict[str, MethodSummary]
    closure: dict[str, dict[LockKey, tuple[str, ...]]]
    sources: tuple[SourceFile, ...]

    def source_for(self, module: str) -> SourceFile | None:
        found = self.project.modules.get(module)
        return found.source if found is not None else None


def build_graph(sources) -> GraphContext:
    """Run both passes: project model, summaries, lock closure."""
    project = ProjectModel.build(sources)
    summaries = build_summaries(project)
    closure = compute_lock_closure(summaries)
    return GraphContext(project=project, summaries=summaries,
                        closure=closure, sources=tuple(sources))


def compute_lock_closure(summaries: dict[str, MethodSummary]
                         ) -> dict[str, dict[LockKey, tuple[str, ...]]]:
    """``locks_of``: every lock a callable may acquire, transitively.

    Values map each lock to its shortest witness chain — human-readable
    hops ``qualname:line <verb> ...`` ending at the acquisition site.
    """
    closure: dict[str, dict[LockKey, tuple[str, ...]]] = {
        qualname: {} for qualname in summaries}
    order = sorted(summaries)
    changed = True
    while changed:
        changed = False
        for qualname in order:
            summary = summaries[qualname]
            mine = closure[qualname]
            for event in summary.events:
                if event.kind == "acquire" and event.lock is not None:
                    chain = (f"{qualname}:{event.line} acquires "
                             f"{event.lock.label}",)
                    if (event.lock not in mine
                            or len(chain) < len(mine[event.lock])):
                        mine[event.lock] = chain
                        changed = True
                elif event.kind == "call" and event.target in closure \
                        and event.target != qualname:
                    hop = f"{qualname}:{event.line} calls {event.target}"
                    for lock, chain in closure[event.target].items():
                        candidate = (hop,) + chain
                        if len(candidate) > MAX_CHAIN:
                            continue
                        if (lock not in mine
                                or len(candidate) < len(mine[lock])):
                            mine[lock] = candidate
                            changed = True
    return closure
