"""Rule ``metric-catalog``: ``schemr_*`` metric names live in one place.

``repro.telemetry.catalog`` holds the canonical ``METRICS`` dict.  This
rule reconciles it against the rest of ``src/``:

* every ``schemr_*`` string literal used anywhere in ``repro.*`` must
  name a catalogued metric (or be a documented *prefix* of catalogued
  names, e.g. the ``schemr_index_`` grouping key in the report
  renderer);
* every registration call (``registry.counter("schemr_x", ...)`` /
  ``.gauge`` / ``.histogram``) must agree with the catalogued kind;
* dynamically built metric names (f-strings starting ``schemr_``) are
  flagged — a name the catalog cannot see is a name dashboards cannot
  rely on;
* every catalogue entry must be referenced somewhere, so the catalog
  never rots into fiction.

The rule is a project rule: it needs the whole scanned corpus.  It is
inert when the catalog module is not part of the scan (synthetic test
corpora opt in by including a file that resolves to
``repro.telemetry.catalog``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceFile

CATALOG_MODULE = "repro.telemetry.catalog"

_METRIC_NAME = re.compile(r"^schemr_[a-z0-9_]*$")
_REGISTER_METHODS = frozenset(("counter", "gauge", "histogram"))


def _catalog_entries(source: SourceFile
                     ) -> tuple[dict[str, tuple[str, int]], list[tuple[str, int]]]:
    """``name -> (kind, lineno)`` from the METRICS literal, + duplicates."""
    entries: dict[str, tuple[str, int]] = {}
    duplicates: list[tuple[str, int]] = []
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets
                       if isinstance(t, ast.Name)]
        elif (isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)):
            targets = [node.target.id]
        else:
            continue
        if "METRICS" not in targets or not isinstance(node.value, ast.Dict):
            continue
        for key, value in zip(node.value.keys, node.value.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                continue
            name = key.value
            kind = ""
            if (isinstance(value, ast.Tuple) and value.elts
                    and isinstance(value.elts[0], ast.Constant)
                    and isinstance(value.elts[0].value, str)):
                kind = value.elts[0].value
            if name in entries:
                duplicates.append((name, key.lineno))
            else:
                entries[name] = (kind, key.lineno)
    return entries, duplicates


def _prefix_of_any(literal: str, names: Iterable[str]) -> bool:
    prefix = literal if literal.endswith("_") else literal + "_"
    return any(name.startswith(prefix) for name in names)


@register
class MetricCatalogRule(Rule):
    id = "metric-catalog"
    pragma = "metric-catalog"
    description = ("every schemr_* metric string appears in "
                   "repro.telemetry.catalog, with matching kind, "
                   "and every catalog entry is used")

    def check_project(self,
                      sources: Sequence[SourceFile]) -> Iterable[Finding]:
        catalog = next((s for s in sources
                        if s.module == CATALOG_MODULE), None)
        if catalog is None:
            return ()
        entries, duplicates = _catalog_entries(catalog)
        findings: list[Finding] = []
        for name, line in duplicates:
            findings.append(self.finding(
                catalog, line,
                f"metric {name!r} catalogued more than once"))

        referenced: set[str] = set()
        for source in sources:
            if source is catalog or not source.module.startswith("repro"):
                continue
            findings.extend(
                self._check_source(source, entries, referenced))

        for name, (_kind, line) in sorted(entries.items()):
            if name not in referenced:
                findings.append(self.finding(
                    catalog, line,
                    f"catalogued metric {name!r} is never used in src/; "
                    f"delete the entry or wire the metric up"))
        return findings

    def _check_source(self, source: SourceFile,
                      entries: dict[str, tuple[str, int]],
                      referenced: set[str]) -> Iterable[Finding]:
        findings: list[Finding] = []
        register_args: set[int] = set()
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _REGISTER_METHODS and node.args):
                first = node.args[0]
                if (isinstance(first, ast.Constant)
                        and isinstance(first.value, str)
                        and first.value.startswith("schemr_")):
                    register_args.add(id(first))
                    name = first.value
                    entry = entries.get(name)
                    if entry is not None and entry[0] != func.attr:
                        findings.append(self.finding(
                            source, node.lineno,
                            f"metric {name!r} registered as "
                            f"{func.attr} but catalogued as {entry[0]}"))
                elif (isinstance(first, ast.JoinedStr)
                        and first.values
                        and isinstance(first.values[0], ast.Constant)
                        and str(first.values[0].value)
                        .startswith("schemr_")):
                    findings.append(self.finding(
                        source, node.lineno,
                        "dynamically built schemr_* metric name; the "
                        "catalog cannot enumerate it — use a label or a "
                        "fixed name"))

        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and _METRIC_NAME.match(node.value)):
                continue
            literal = node.value
            if literal in entries:
                referenced.add(literal)
                continue
            if _prefix_of_any(literal, entries):
                referenced.update(
                    name for name in entries
                    if name.startswith(
                        literal if literal.endswith("_")
                        else literal + "_"))
                continue
            findings.append(self.finding(
                source, node.lineno,
                f"metric name {literal!r} is not in "
                f"repro.telemetry.catalog; add it there (exactly once) "
                f"or fix the typo"))
        return findings
