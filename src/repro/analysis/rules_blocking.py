"""Rule ``api-blocking``: no indefinite blocking while holding a lock.

A thread that sleeps, reads a pipe, or waits unboundedly *while holding
a lock* turns one slow peer into a convoy: every other thread needing
that lock stalls behind it, and under the serving deadlines that reads
as a shard timeout, not as the lock contention it is.  Flagged, with
the lock and the blocking call named:

* ``sleep(...)`` and ``conn.recv()`` under any held lock;
* ``.join()`` with no timeout (``proc.join()``) — ``str.join`` always
  takes an argument, so it never matches;
* ``.wait()`` with no timeout, unless the receiver is the *only* held
  lock and is itself a condition (``Condition.wait`` releases it);
* explicit ``.acquire()`` with no timeout while a *different* lock is
  held — the classic hold-and-wait half of a deadlock.

The escape hatch is the usual pragma (``# lint: blocking (reason)``);
the right fix is almost always to compute under the lock and block
outside it, the way ``WorkerHandle.collect`` drops its condition
around the pipe read.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.callgraph import Event, GraphContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

#: Call names that block indefinitely regardless of argument shape.
_ALWAYS_BLOCKING = frozenset(("sleep", "recv"))


def _held_labels(event: Event) -> str:
    return ", ".join(sorted({h.lock.label for h in event.held}))


@register
class ApiBlockingRule(Rule):
    id = "api-blocking"
    pragma = "blocking"
    description = ("no blocking call (sleep, recv, unbounded join/wait, "
                   "acquire without timeout) while holding a lock")

    def check_graph(self, graph: GraphContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for qualname in sorted(graph.summaries):
            summary = graph.summaries[qualname]
            source = graph.source_for(summary.module)
            if source is None or not summary.module.startswith("repro"):
                continue
            for event in summary.events:
                if not event.held:
                    continue
                message = self._violation(qualname, event)
                if message is not None:
                    findings.append(
                        self.finding(source, event.line, message))
        return findings

    def _violation(self, qualname: str, event: Event) -> str | None:
        held = _held_labels(event)
        if event.kind == "acquire":
            if (event.explicit and not event.has_timeout
                    and event.lock is not None
                    and any(h.lock != event.lock for h in event.held)):
                return (f"{qualname} calls {event.lock.label}.acquire() "
                        f"with no timeout while holding {held}; "
                        f"hold-and-wait — bound it or reorder")
            return None
        if event.name in _ALWAYS_BLOCKING:
            return (f"{qualname} calls {event.name}() while holding "
                    f"{held}; blocking under a lock convoys every "
                    f"waiter")
        if event.name == "join" and event.n_args == 0 \
                and not event.has_timeout:
            return (f"{qualname} calls .join() with no timeout while "
                    f"holding {held}; a hung thread wedges the lock "
                    f"forever")
        if event.name == "wait" and not event.has_timeout:
            only_receiver = (event.lock is not None and all(
                h.lock == event.lock for h in event.held))
            if not only_receiver:
                return (f"{qualname} calls .wait() with no timeout "
                        f"while holding {held}; waiters on those locks "
                        f"stall indefinitely")
        return None
