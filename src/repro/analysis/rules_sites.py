"""Rule ``site-catalog``: fault sites and protocol tags round-trip.

Two catalogs anchor the chaos and sharding subsystems:

* :data:`repro.resilience.faults.KNOWN_SITES` — every named fault
  site, plus :data:`SITE_FAMILIES` for parameterized names and
  :data:`CRASH_SITES` for the crash-injection subset;
* :data:`repro.sharding.protocol.TAGS` — the pipe-protocol message
  tags (``TAG_PHASE1`` ...).

This rule reconciles both against the scanned ``repro.*`` corpus, the
same round-trip discipline ``metric-catalog`` established:

* every ``FAULTS.hit``/``.inject``/... site literal must name a
  catalogued site or extend a declared family prefix; f-string sites
  are legal only when their literal head matches a family;
* every catalogued site must be hit somewhere, ``CRASH_SITES`` must be
  a subset of ``KNOWN_SITES``, and no site may be catalogued twice;
* protocol positions — first argument of ``.send(...)``/
  ``.collect(...)``, the tag slot of ``conn.send((tag, qid, ...))``
  tuples, and ``kind == ...`` comparisons — must use the ``TAG_*``
  constants, never string literals; and every declared tag must be
  referenced outside the catalog module.

Inert when neither catalog module is in the scan, so synthetic lint
corpora opt in by including one.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceFile

#: FaultInjector methods whose first argument is a site name.
_SITE_METHODS = frozenset(
    ("hit", "inject", "disarm", "record", "hits", "triggered"))

#: Call receivers treated as *the* injector.
_INJECTOR_NAMES = frozenset(("FAULTS",))

#: Names compared against protocol tags in demux/dispatch code.
_TAG_COMPARANDS = frozenset(("kind", "tag", "r_kind"))

#: Module prefixes that speak the pipe protocol; tag-position checks
#: stay inside them so e.g. a telemetry ``kind == "counter"`` compare
#: elsewhere is never mistaken for a protocol tag.
_TAG_SCOPES = ("repro.sharding", "repro.replication",
               "repro.resilience")


def _assigned_names(node: ast.stmt) -> list[str]:
    if isinstance(node, ast.Assign):
        return [t.id for t in node.targets if isinstance(t, ast.Name)]
    if isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                     ast.Name):
        return [node.target.id]
    return []


def _str_const(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _FaultCatalog:
    """KNOWN_SITES / SITE_FAMILIES / CRASH_SITES parsed from one module."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.sites: dict[str, int] = {}
        self.duplicates: list[tuple[str, int]] = []
        self.families: dict[str, int] = {}
        self.crash_sites: dict[str, int] = {}
        for stmt in source.tree.body:
            names = _assigned_names(stmt)
            value = getattr(stmt, "value", None)
            if "KNOWN_SITES" in names and isinstance(value, ast.Dict):
                for key in value.keys:
                    site = _str_const(key)
                    if site is None:
                        continue
                    if site in self.sites:
                        self.duplicates.append((site, key.lineno))
                    else:
                        self.sites[site] = key.lineno
            elif "SITE_FAMILIES" in names and isinstance(value, ast.Dict):
                for key in value.keys:
                    prefix = _str_const(key)
                    if prefix is not None:
                        self.families[prefix] = key.lineno
            elif "CRASH_SITES" in names and value is not None:
                elements: Sequence[ast.expr] = ()
                if (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id == "frozenset" and value.args
                        and isinstance(value.args[0],
                                       (ast.Tuple, ast.List, ast.Set))):
                    elements = value.args[0].elts
                elif isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    elements = value.elts
                for element in elements:
                    site = _str_const(element)
                    if site is not None:
                        self.crash_sites[site] = element.lineno

    @property
    def declared(self) -> bool:
        return bool(self.sites)

    def family_of(self, site: str) -> str | None:
        for prefix in self.families:
            if site.startswith(prefix):
                return prefix
        return None


class _TagCatalog:
    """``TAG_* = "..."`` constants and the TAGS dict from one module."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.constants: dict[str, tuple[str, int]] = {}
        self.tag_keys: set[str] = set()
        for stmt in source.tree.body:
            value = getattr(stmt, "value", None)
            for name in _assigned_names(stmt):
                if name.startswith("TAG_"):
                    tag = _str_const(value)
                    if tag is not None:
                        self.constants[name] = (tag, stmt.lineno)
                elif name == "TAGS" and isinstance(value, ast.Dict):
                    for key in value.keys:
                        if isinstance(key, ast.Name):
                            self.tag_keys.add(key.id)

    @property
    def declared(self) -> bool:
        return bool(self.constants)

    @property
    def values(self) -> dict[str, str]:
        return {tag: name for name, (tag, _line)
                in self.constants.items()}


def _is_injector(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in _INJECTOR_NAMES
    if isinstance(expr, ast.Attribute):
        return expr.attr in _INJECTOR_NAMES
    return False


@register
class SiteCatalogRule(Rule):
    id = "site-catalog"
    pragma = "site-catalog"
    description = ("fault-injection sites and pipe-protocol tags "
                   "round-trip against their declared catalogs "
                   "(KNOWN_SITES / SITE_FAMILIES / CRASH_SITES / TAGS)")

    def check_project(self,
                      sources: Sequence[SourceFile]) -> Iterable[Finding]:
        faults = None
        tags = None
        for source in sources:
            if faults is None:
                candidate = _FaultCatalog(source)
                if candidate.declared:
                    faults = candidate
            if tags is None:
                candidate_tags = _TagCatalog(source)
                if candidate_tags.declared and candidate_tags.tag_keys:
                    tags = candidate_tags
        findings: list[Finding] = []
        used_sites: set[str] = set()
        used_families: set[str] = set()
        used_tags: set[str] = set()
        for source in sources:
            if not source.module.startswith("repro"):
                continue
            if faults is not None and source is not faults.source:
                findings.extend(self._check_fault_sites(
                    source, faults, used_sites, used_families))
            if tags is not None and source is not tags.source:
                findings.extend(self._check_tags(
                    source, tags, used_tags,
                    in_scope=source.module.startswith(_TAG_SCOPES)))
        if faults is not None:
            findings.extend(self._catalog_findings(
                faults, used_sites, used_families))
        if tags is not None:
            findings.extend(self._tag_catalog_findings(tags, used_tags))
        return findings

    # -- fault sites ------------------------------------------------------

    def _check_fault_sites(self, source: SourceFile,
                           faults: _FaultCatalog, used_sites: set[str],
                           used_families: set[str]) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SITE_METHODS
                    and _is_injector(node.func.value)
                    and node.args):
                continue
            first = node.args[0]
            site = _str_const(first)
            if site is not None:
                if site in faults.sites:
                    used_sites.add(site)
                    continue
                family = faults.family_of(site)
                if family is not None:
                    used_families.add(family)
                    continue
                findings.append(self.finding(
                    source, node.lineno,
                    f"fault site {site!r} is not in KNOWN_SITES; "
                    f"declare it in the catalog or fix the typo"))
            elif isinstance(first, ast.JoinedStr):
                head = ""
                if first.values:
                    head_const = _str_const(first.values[0]) \
                        if isinstance(first.values[0], ast.Constant) \
                        else None
                    head = head_const or ""
                family = faults.family_of(head) if head else None
                if family is not None and head.startswith(family):
                    used_families.add(family)
                    continue
                findings.append(self.finding(
                    source, node.lineno,
                    "dynamically built fault site name; only declared "
                    "SITE_FAMILIES prefixes may be parameterized"))
        return findings

    def _catalog_findings(self, faults: _FaultCatalog,
                          used_sites: set[str],
                          used_families: set[str]) -> Iterable[Finding]:
        findings: list[Finding] = []
        for site, line in faults.duplicates:
            findings.append(self.finding(
                faults.source, line,
                f"fault site {site!r} catalogued more than once"))
        for site in sorted(faults.sites):
            if site not in used_sites:
                findings.append(self.finding(
                    faults.source, faults.sites[site],
                    f"catalogued fault site {site!r} is never hit; "
                    f"delete the entry or instrument the code"))
        for prefix in sorted(faults.families):
            if prefix not in used_families:
                findings.append(self.finding(
                    faults.source, faults.families[prefix],
                    f"site family {prefix!r} has no users; delete it "
                    f"or wire the parameterized site up"))
        for site in sorted(faults.crash_sites):
            if site not in faults.sites:
                findings.append(self.finding(
                    faults.source, faults.crash_sites[site],
                    f"CRASH_SITES entry {site!r} is not in KNOWN_SITES; "
                    f"crash sites must be declared sites"))
        return findings

    # -- protocol tags ----------------------------------------------------

    def _tag_literal_finding(self, source: SourceFile, line: int,
                             literal: str,
                             tags: _TagCatalog) -> Finding:
        constant = tags.values.get(literal)
        if constant is not None:
            return self.finding(
                source, line,
                f"protocol tag literal {literal!r} duplicates "
                f"{constant}; use the declared constant")
        return self.finding(
            source, line,
            f"undeclared protocol tag {literal!r}; declare a TAG_* "
            f"constant in the protocol catalog")

    def _check_tags(self, source: SourceFile, tags: _TagCatalog,
                    used_tags: set[str], *,
                    in_scope: bool) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Name) and node.id in tags.constants:
                used_tags.add(node.id)
            elif not in_scope:
                continue
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("send", "collect")
                    and node.args):
                first = node.args[0]
                if isinstance(first, ast.Tuple) and first.elts:
                    first = first.elts[0]
                literal = _str_const(first)
                if literal is not None:
                    findings.append(self._tag_literal_finding(
                        source, node.lineno, literal, tags))
            elif isinstance(node, ast.Compare):
                if not (isinstance(node.left, ast.Name)
                        and node.left.id in _TAG_COMPARANDS
                        and len(node.comparators) == 1
                        and isinstance(node.ops[0],
                                       (ast.Eq, ast.NotEq))):
                    continue
                # Only literals that *are* declared tag values: other
                # strings compared to a ``kind`` variable (failure
                # kinds, state names) are not protocol traffic.
                literal = _str_const(node.comparators[0])
                if literal is not None and literal in tags.values:
                    findings.append(self._tag_literal_finding(
                        source, node.lineno, literal, tags))
        return findings

    def _tag_catalog_findings(self, tags: _TagCatalog,
                              used_tags: set[str]) -> Iterable[Finding]:
        findings: list[Finding] = []
        for name in sorted(tags.constants):
            tag, line = tags.constants[name]
            if name not in tags.tag_keys:
                findings.append(self.finding(
                    tags.source, line,
                    f"protocol tag {name} ({tag!r}) is missing from "
                    f"the TAGS registry dict"))
            if name not in used_tags:
                findings.append(self.finding(
                    tags.source, line,
                    f"declared protocol tag {name} ({tag!r}) is never "
                    f"used outside the catalog; delete it or wire it "
                    f"up"))
        return findings
