"""``python -m repro.analysis`` — same entry point as ``schemr lint``."""

import sys

from repro.analysis.runner import main

sys.exit(main())
