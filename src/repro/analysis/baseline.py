"""Baseline files: grandfathered findings that don't fail the build.

A baseline is a JSON document::

    {"version": 1, "findings": [{"rule": ..., "path": ..., "message": ...}]}

Findings are matched on ``(rule, path, message)`` — line numbers drift
with every edit, so they are deliberately not part of the key.  The
shipped baseline should stay near-empty; ``--update-baseline`` exists
for bootstrapping a new rule over legacy code, not for muting fresh
regressions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Raised when a baseline file is malformed."""


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """The set of grandfathered ``(rule, path, message)`` keys."""
    raw = Path(path).read_text(encoding="utf-8")
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path}: invalid JSON: {exc}")
    if not isinstance(payload, dict):
        raise BaselineError(f"baseline {path}: expected an object")
    if payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path}: unsupported version "
            f"{payload.get('version')!r}")
    entries = payload.get("findings", [])
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: findings must be a list")
    keys: set[tuple[str, str, str]] = set()
    for entry in entries:
        if not isinstance(entry, dict):
            raise BaselineError(
                f"baseline {path}: each finding must be an object")
        try:
            keys.add((str(entry["rule"]), str(entry["path"]),
                      str(entry["message"])))
        except KeyError as exc:
            raise BaselineError(
                f"baseline {path}: finding missing {exc}")
    return keys


def write_baseline(path: str | Path,
                   findings: Iterable[Finding]) -> None:
    """Persist ``findings`` as the new baseline (sorted, stable)."""
    entries = sorted(
        {finding.key() for finding in findings})
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": rule, "path": file_path, "message": message}
            for rule, file_path, message in entries
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def split_baselined(findings: Sequence[Finding],
                    baseline: set[tuple[str, str, str]]
                    ) -> tuple[list[Finding], list[Finding]]:
    """Partition into (fresh, grandfathered)."""
    fresh: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        (old if finding.key() in baseline else fresh).append(finding)
    return fresh, old
