"""Exception hierarchy for the Schemr reproduction.

All library errors derive from :class:`SchemrError` so that callers can
catch every library failure with a single except clause while still being
able to discriminate parse errors from index or repository errors.
"""

from __future__ import annotations


class SchemrError(Exception):
    """Base class for every error raised by this library."""


class ParseError(SchemrError):
    """A schema or query source could not be parsed.

    Carries the position of the offending token when known so the caller
    can point a user at the problem.
    """

    def __init__(self, message: str, *, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}" + (
                f", column {column})" if column is not None else ")")
        super().__init__(message)


class SchemaError(SchemrError):
    """A schema object is structurally invalid (duplicate names, dangling
    foreign keys, empty entities where elements are required, ...)."""


class IndexError_(SchemrError):
    """The inverted index was asked to do something it cannot
    (unknown document id, corrupt persisted segment, ...).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class QueryError(SchemrError):
    """A search query is empty or otherwise unusable."""


class MatchError(SchemrError):
    """A matcher was mis-configured or fed incompatible inputs."""


class RepositoryError(SchemrError):
    """The schema repository rejected an operation (missing schema id,
    duplicate import, closed connection, ...)."""


class ServiceError(SchemrError):
    """The HTTP service layer failed to satisfy a request."""
