"""Exception hierarchy for the Schemr reproduction.

All library errors derive from :class:`SchemrError` so that callers can
catch every library failure with a single except clause while still being
able to discriminate parse errors from index or repository errors.
"""

from __future__ import annotations


class SchemrError(Exception):
    """Base class for every error raised by this library."""


class ParseError(SchemrError):
    """A schema or query source could not be parsed.

    Carries the position of the offending token when known so the caller
    can point a user at the problem.
    """

    def __init__(self, message: str, *, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}" + (
                f", column {column})" if column is not None else ")")
        super().__init__(message)


class SchemaError(SchemrError):
    """A schema object is structurally invalid (duplicate names, dangling
    foreign keys, empty entities where elements are required, ...)."""


class IndexError_(SchemrError):
    """The inverted index was asked to do something it cannot
    (unknown document id, corrupt persisted segment, ...).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class SegmentDirectoryError(IndexError_):
    """A segment directory's control files are unreadable or torn.

    Raised instead of a raw ``json.JSONDecodeError`` when
    ``MANIFEST.json`` or ``SHARDS.json`` is truncated or corrupt.
    ``path`` names the offending file and ``hint`` tells the operator
    how to recover (restore from a replica, or re-index from the
    repository) — a half-written control file means the atomic-rename
    commit discipline was violated by something outside the library
    (disk fault, manual edit), so the directory cannot be trusted.
    """

    def __init__(self, message: str, *, path: str = "",
                 hint: str = "") -> None:
        self.path = path
        self.hint = hint
        if hint:
            message = f"{message} ({hint})"
        super().__init__(message)


class QueryError(SchemrError):
    """A search query is empty or otherwise unusable."""


class MatchError(SchemrError):
    """A matcher was mis-configured or fed incompatible inputs."""


class RepositoryError(SchemrError):
    """The schema repository rejected an operation (missing schema id,
    duplicate import, closed connection, ...)."""


class ServiceError(SchemrError):
    """The HTTP service layer failed to satisfy a request.

    ``status`` carries the HTTP status code when the failure came from
    a server response (429 lets a replay driver count load shedding
    distinctly from hard failures); ``None`` for transport errors.
    ``retry_after`` is the server's ``Retry-After`` hint in seconds
    (0.0 when the response carried none) — the client's backoff floors
    its jittered delay on it.
    """

    def __init__(self, message: str, *, status: int | None = None,
                 retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ResilienceError(SchemrError):
    """Base class for the resilience layer's structured failures.

    These carry enough machine-readable state (retry hints, breaker
    names) for the service tier to map them to 429/503 responses
    instead of opaque 500s.
    """


class DeadlineExceeded(ResilienceError):
    """A search exhausted its wall-clock budget.

    The engine normally *degrades* rather than raising — this escapes
    only when even the phase-1 fallback cannot be produced in time.
    """


class CircuitOpenError(ResilienceError):
    """A circuit breaker refused the call because it is open.

    ``breaker`` names the breaker; ``retry_after`` is the seconds until
    the next half-open probe would be admitted.
    """

    def __init__(self, message: str, *, breaker: str = "",
                 retry_after: float = 0.0) -> None:
        self.breaker = breaker
        self.retry_after = retry_after
        super().__init__(message)


class AdmissionRejected(ResilienceError):
    """The admission controller shed this request (server overload).

    ``retry_after`` is the suggested client back-off in seconds — the
    service layer turns it into a ``Retry-After`` header on the 429.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        self.retry_after = retry_after
        super().__init__(message)
