"""Deriving element mappings from similarity matrices.

Schema search diverges from classical matching in phase three ("rather
than generating mappings between elements..."), but once a user adopts
a result, the classical output becomes valuable again: a set of
(query element, result element) correspondences.  This module recovers
them from the combined similarity matrix with greedy best-first 1:1
assignment — the standard extraction step after matrix-producing
matchers (Rahm & Bernstein's "selection" phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MatchError
from repro.matching.base import SimilarityMatrix


@dataclass(frozen=True, slots=True)
class Correspondence:
    """One mapped element pair."""

    source_element: str
    target_element: str
    confidence: float


@dataclass(slots=True)
class ElementMapping:
    """A 1:1 mapping between a source (query/draft) and target schema."""

    source_name: str
    target_name: str
    correspondences: list[Correspondence] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.correspondences)

    def target_of(self, source_element: str) -> str | None:
        for correspondence in self.correspondences:
            if correspondence.source_element == source_element:
                return correspondence.target_element
        return None

    def mean_confidence(self) -> float:
        if not self.correspondences:
            return 0.0
        return (sum(c.confidence for c in self.correspondences)
                / len(self.correspondences))


def derive_mapping(matrix: SimilarityMatrix,
                   source_name: str = "query",
                   target_name: str = "candidate",
                   threshold: float = 0.5) -> ElementMapping:
    """Greedy best-first 1:1 assignment over the similarity matrix.

    Pairs are taken in descending similarity; each row and column is
    used at most once; pairs below ``threshold`` are discarded.  Greedy
    assignment is the standard, auditable choice here — an optimal
    (Hungarian) assignment changes almost nothing at matching-quality
    thresholds but is much harder to explain to a user reviewing the
    mapping.
    """
    if not 0.0 < threshold <= 1.0:
        raise MatchError(f"threshold must be in (0, 1], got {threshold}")
    mapping = ElementMapping(source_name=source_name,
                             target_name=target_name)
    used_rows: set[str] = set()
    used_cols: set[str] = set()
    for row, col, value in matrix.nonzero_pairs():
        if value < threshold:
            break  # pairs arrive best-first
        if row in used_rows or col in used_cols:
            continue
        used_rows.add(row)
        used_cols.add(col)
        mapping.correspondences.append(Correspondence(
            source_element=row, target_element=col, confidence=value))
    return mapping
