"""Schema diff: what changed between two versions of a schema.

The paper's "new model development process" iterates a design through
search and adoption; a diff between iterations (or between a draft and
an adopted reference schema) is the natural review artifact.  Beyond
set differences, the name matcher detects *renames*: an element removed
on one side and added on the other with high name similarity is
reported as a rename rather than a drop + add.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.matching.name import name_similarity
from repro.matching.normalize import normalize_words
from repro.model.schema import Schema

#: Minimum name similarity for a removed/added pair to count as a rename.
RENAME_THRESHOLD = 0.6


@dataclass(frozen=True, slots=True)
class Rename:
    """One detected rename (old path -> new path)."""

    old_path: str
    new_path: str
    similarity: float


@dataclass(slots=True)
class SchemaDiff:
    """The difference between an old and a new schema version."""

    old_name: str
    new_name: str
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    renamed: list[Rename] = field(default_factory=list)
    type_changed: list[tuple[str, str, str]] = field(default_factory=list)
    """(path, old type, new type) for attributes whose type changed."""

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.renamed
                    or self.type_changed)

    def summary(self) -> str:
        if self.is_empty:
            return (f"{self.old_name} -> {self.new_name}: no structural "
                    f"changes")
        lines = [f"{self.old_name} -> {self.new_name}:"]
        for path in self.added:
            lines.append(f"  + {path}")
        for path in self.removed:
            lines.append(f"  - {path}")
        for rename in self.renamed:
            lines.append(f"  ~ {rename.old_path} -> {rename.new_path} "
                         f"(similarity {rename.similarity:.2f})")
        for path, old_type, new_type in self.type_changed:
            lines.append(f"  : {path} type {old_type or '?'} -> "
                         f"{new_type or '?'}")
        return "\n".join(lines)


def _attribute_types(schema: Schema) -> dict[str, str]:
    out = {}
    for entity in schema.entities.values():
        for attr in entity.attributes:
            out[f"{entity.name}.{attr.name}"] = attr.data_type
    return out


def diff_schemas(old: Schema, new: Schema) -> SchemaDiff:
    """Structural diff of two schemas, with rename detection."""
    old_paths = {ref.path for ref in old.elements()}
    new_paths = {ref.path for ref in new.elements()}
    removed = sorted(old_paths - new_paths)
    added = sorted(new_paths - old_paths)

    # Rename detection: greedy best-first over name similarity of
    # removed x added pairs, scoped to element kind (entity vs attr).
    candidates = []
    for old_path in removed:
        old_words = tuple(normalize_words(old_path.rsplit(".", 1)[-1]))
        for new_path in added:
            if ("." in old_path) != ("." in new_path):
                continue  # entity cannot rename into attribute
            new_words = tuple(normalize_words(new_path.rsplit(".", 1)[-1]))
            score = name_similarity(old_words, new_words)
            if score >= RENAME_THRESHOLD:
                candidates.append((score, old_path, new_path))
    candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
    renamed: list[Rename] = []
    used_old: set[str] = set()
    used_new: set[str] = set()
    for score, old_path, new_path in candidates:
        if old_path in used_old or new_path in used_new:
            continue
        used_old.add(old_path)
        used_new.add(new_path)
        renamed.append(Rename(old_path, new_path, score))

    diff = SchemaDiff(
        old_name=old.name,
        new_name=new.name,
        added=[path for path in added if path not in used_new],
        removed=[path for path in removed if path not in used_old],
        renamed=renamed,
    )
    # Type changes on surviving attributes.
    old_types = _attribute_types(old)
    new_types = _attribute_types(new)
    for path in sorted(old_paths & new_paths):
        if path in old_types and old_types[path] != new_types.get(path):
            diff.type_changed.append(
                (path, old_types[path], new_types.get(path, "")))
    return diff
