"""Persisting mappings, re-use events and provenance in the repository.

Tables are created lazily on first use so the core repository schema
stays unchanged for deployments that never capture mappings.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import RepositoryError
from repro.mapping.derive import Correspondence, ElementMapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.repository.store import SchemaRepository

_MAPPING_SQL = """
CREATE TABLE IF NOT EXISTS mappings (
    mapping_id   INTEGER PRIMARY KEY AUTOINCREMENT,
    source_name  TEXT NOT NULL,
    target_schema_id INTEGER NOT NULL,
    payload      TEXT NOT NULL,
    created_at   REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS provenance (
    provenance_id INTEGER PRIMARY KEY AUTOINCREMENT,
    schema_id    INTEGER NOT NULL,
    element_path TEXT NOT NULL,
    origin_schema_id INTEGER NOT NULL,
    origin_element TEXT NOT NULL,
    adopted_at   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_provenance_origin
    ON provenance (origin_schema_id);
"""


def _ensure_tables(repository: "SchemaRepository") -> None:
    repository.connection.executescript(_MAPPING_SQL)
    repository.connection.commit()


def save_mapping(repository: "SchemaRepository", mapping: ElementMapping,
                 target_schema_id: int) -> int:
    """Persist one derived mapping against a stored schema."""
    _ensure_tables(repository)
    if not repository.has_schema(target_schema_id):
        raise RepositoryError(
            f"schema {target_schema_id} is not in the repository")
    payload = json.dumps([
        {"source": c.source_element, "target": c.target_element,
         "confidence": c.confidence}
        for c in mapping.correspondences
    ])
    cursor = repository.connection.execute(
        "INSERT INTO mappings (source_name, target_schema_id, payload, "
        "created_at) VALUES (?, ?, ?, ?)",
        (mapping.source_name, target_schema_id, payload, time.time()))
    repository.connection.commit()
    mapping_id = cursor.lastrowid
    assert mapping_id is not None
    return mapping_id


def load_mappings(repository: "SchemaRepository",
                  target_schema_id: int) -> list[ElementMapping]:
    """Every stored mapping whose target is ``target_schema_id``."""
    _ensure_tables(repository)
    rows = repository.connection.execute(
        "SELECT source_name, target_schema_id, payload FROM mappings "
        "WHERE target_schema_id = ? ORDER BY mapping_id",
        (target_schema_id,)).fetchall()
    out = []
    for row in rows:
        mapping = ElementMapping(
            source_name=row["source_name"],
            target_name=str(row["target_schema_id"]))
        for entry in json.loads(row["payload"]):
            mapping.correspondences.append(Correspondence(
                source_element=entry["source"],
                target_element=entry["target"],
                confidence=entry["confidence"]))
        out.append(mapping)
    return out


@dataclass(frozen=True, slots=True)
class ProvenanceRecord:
    """Where one schema element came from."""

    schema_id: int
    element_path: str
    origin_schema_id: int
    origin_element: str


def record_provenance(repository: "SchemaRepository", schema_id: int,
                      element_path: str, origin_schema_id: int,
                      origin_element: str) -> None:
    """Record that ``schema_id.element_path`` was adopted from
    ``origin_schema_id.origin_element`` via search."""
    _ensure_tables(repository)
    for required in (schema_id, origin_schema_id):
        if not repository.has_schema(required):
            raise RepositoryError(
                f"schema {required} is not in the repository")
    repository.connection.execute(
        "INSERT INTO provenance (schema_id, element_path, "
        "origin_schema_id, origin_element, adopted_at) "
        "VALUES (?, ?, ?, ?, ?)",
        (schema_id, element_path, origin_schema_id, origin_element,
         time.time()))
    repository.connection.commit()


def provenance_of(repository: "SchemaRepository",
                  schema_id: int) -> list[ProvenanceRecord]:
    """Provenance records for elements of ``schema_id``."""
    _ensure_tables(repository)
    rows = repository.connection.execute(
        "SELECT schema_id, element_path, origin_schema_id, origin_element "
        "FROM provenance WHERE schema_id = ? ORDER BY provenance_id",
        (schema_id,)).fetchall()
    return [ProvenanceRecord(row["schema_id"], row["element_path"],
                             row["origin_schema_id"],
                             row["origin_element"]) for row in rows]


def reuse_statistics(repository: "SchemaRepository") -> dict[int, int]:
    """How often each schema's elements were adopted elsewhere —
    the "information on schema re-use" the paper wants to surface."""
    _ensure_tables(repository)
    rows = repository.connection.execute(
        "SELECT origin_schema_id, COUNT(*) AS n FROM provenance "
        "GROUP BY origin_schema_id ORDER BY n DESC").fetchall()
    return {row["origin_schema_id"]: row["n"] for row in rows}
