"""Mapping capture: the by-product the paper wants from schema search.

"In this process, we can also capture implicit semantic mappings
between schema elements, information on schema re-use, and the
provenance of new schema entities."

* :mod:`~repro.mapping.derive` — turn a search result's combined
  similarity matrix into a 1:1 element mapping (greedy best-first
  assignment with a confidence threshold);
* :mod:`~repro.mapping.store` — persist mappings, schema re-use events
  and element provenance in the repository database, and report reuse
  statistics.
"""

from repro.mapping.derive import ElementMapping, derive_mapping
from repro.mapping.diff import Rename, SchemaDiff, diff_schemas
from repro.mapping.store import (
    ProvenanceRecord,
    load_mappings,
    record_provenance,
    provenance_of,
    reuse_statistics,
    save_mapping,
)

__all__ = [
    "ElementMapping",
    "Rename",
    "SchemaDiff",
    "diff_schemas",
    "ProvenanceRecord",
    "derive_mapping",
    "load_mappings",
    "provenance_of",
    "record_provenance",
    "reuse_statistics",
    "save_mapping",
]
