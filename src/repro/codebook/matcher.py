"""Codebook matcher: concept-level similarity for the ensemble.

Two attributes annotated with the *same* concept score 1.0 even when
their names share no characters (``stature``/``height``: both are the
*length* concept).  Attributes whose concepts differ but share a
category score a configurable partial credit (two different units are
more alike than a unit and an email address).  Unannotated elements and
entity-level elements abstain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.codebook.annotate import annotate_attribute, annotate_schema
from repro.matching.base import Matcher, SimilarityMatrix
from repro.model.query import QueryGraph, QueryItemKind
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.profile import MatchScratch, SchemaMatchProfile


class CodebookMatcher(Matcher):
    """Scores pairs by codebook concept compatibility."""

    name = "codebook"

    def __init__(self, same_category_score: float = 0.4) -> None:
        if not 0.0 <= same_category_score <= 1.0:
            raise ValueError(
                f"same_category_score must be in [0, 1], got "
                f"{same_category_score}")
        self._same_category_score = same_category_score

    def match(self, query: QueryGraph, candidate: Schema,
              profile: "SchemaMatchProfile | None" = None,
              scratch: "MatchScratch | None" = None) -> SimilarityMatrix:
        matrix = self.empty_matrix(query, candidate,
                                   profile=profile, scratch=scratch)
        candidate_concepts = annotate_schema(candidate).annotations
        if not candidate_concepts:
            return matrix
        labels = iter(query.element_labels())
        for item in query.items:
            if item.kind is QueryItemKind.KEYWORD:
                label = next(labels)
                assert item.keyword is not None
                annotation = annotate_attribute(item.keyword)
                if annotation is not None:
                    self._fill_row(matrix, label, annotation.concept,
                                   candidate_concepts)
                continue
            assert item.fragment is not None
            fragment_concepts = annotate_schema(item.fragment).annotations
            for ref in item.fragment.elements():
                label = next(labels)
                annotation = fragment_concepts.get(ref.path)
                if annotation is not None:
                    self._fill_row(matrix, label, annotation.concept,
                                   candidate_concepts)
        return matrix

    def _fill_row(self, matrix: SimilarityMatrix, row_label: str,
                  concept, candidate_concepts) -> None:
        for path, annotation in candidate_concepts.items():
            other = annotation.concept
            if other.name == concept.name:
                matrix.set(row_label, path, 1.0)
            elif other.category is concept.category:
                if matrix.get(row_label, path) < self._same_category_score:
                    matrix.set(row_label, path, self._same_category_score)
