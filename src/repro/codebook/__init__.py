"""The codebook: standardized data-type concepts for schema elements.

The paper's OpenII sketch: "integrating Schemr's search functionality
with a codebook that contains data types like units, date/time, and
geographic location, would encourage a deeper standardization of data
types alongside schema search results."

This package provides:

* :mod:`~repro.codebook.concepts` — the concept catalog: units of
  measure, date/time shapes, geographic coordinates/areas, identifiers,
  monetary amounts, contact info;
* :mod:`~repro.codebook.annotate` — a rule-based recognizer that maps
  schema attributes to concepts from their names and declared types;
* :mod:`~repro.codebook.matcher` — a :class:`CodebookMatcher` for the
  ensemble: two attributes annotated with the same concept (or
  compatible concepts, e.g. two different length units) are likely
  semantic matches even when their names share nothing.
"""

from repro.codebook.annotate import AnnotatedSchema, annotate_schema
from repro.codebook.concepts import (
    CONCEPTS,
    Concept,
    ConceptCategory,
    concept_by_name,
)
from repro.codebook.matcher import CodebookMatcher

__all__ = [
    "AnnotatedSchema",
    "CONCEPTS",
    "CodebookMatcher",
    "Concept",
    "ConceptCategory",
    "annotate_schema",
    "concept_by_name",
]
