"""The concept catalog.

A :class:`Concept` is a standardized data-type notion — "length in
centimeters", "calendar date", "latitude" — grouped into categories.
Concepts carry the name cues and SQL-type families the recognizer uses,
plus an optional canonical unit so downstream tooling can standardize.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ConceptCategory(enum.Enum):
    """Top-level grouping (the paper names the first three)."""

    UNIT = "unit"
    DATETIME = "datetime"
    GEOGRAPHIC = "geographic"
    IDENTIFIER = "identifier"
    MONETARY = "monetary"
    CONTACT = "contact"
    TEXT = "text"


@dataclass(frozen=True, slots=True)
class Concept:
    """One standardized data-type concept."""

    name: str
    category: ConceptCategory
    #: Lowercase words whose presence in an attribute name suggests this
    #: concept (matched against split, abbreviation-expanded words).
    name_cues: tuple[str, ...]
    #: Type families (see repro.matching.datatype) that are consistent
    #: with the concept; empty means any.
    type_families: tuple[str, ...] = ()
    canonical_unit: str = ""
    description: str = ""


CONCEPTS: tuple[Concept, ...] = (
    # -- units of measure ---------------------------------------------------
    Concept("length", ConceptCategory.UNIT,
            ("height", "width", "length", "depth", "distance", "elevation",
             "stature"),
            type_families=("numeric",), canonical_unit="m",
            description="linear measure"),
    Concept("mass", ConceptCategory.UNIT,
            ("weight", "mass"), type_families=("numeric",),
            canonical_unit="kg"),
    Concept("temperature", ConceptCategory.UNIT,
            ("temperature",), type_families=("numeric",),
            canonical_unit="celsius"),
    Concept("pressure", ConceptCategory.UNIT,
            ("pressure",), type_families=("numeric",),
            canonical_unit="hPa"),
    Concept("speed", ConceptCategory.UNIT,
            ("speed", "velocity"), type_families=("numeric",),
            canonical_unit="m/s"),
    Concept("area", ConceptCategory.UNIT,
            ("area", "acreage"), type_families=("numeric",),
            canonical_unit="m^2"),
    Concept("duration", ConceptCategory.UNIT,
            ("duration", "elapsed"), type_families=("numeric", "temporal"),
            canonical_unit="s"),
    Concept("count", ConceptCategory.UNIT,
            ("count", "quantity", "number", "capacity", "attendance",
             "passengers", "stock", "pages"),
            type_families=("numeric",), canonical_unit="1"),
    Concept("percentage", ConceptCategory.UNIT,
            ("percent", "percentage", "rate", "ratio", "humidity"),
            type_families=("numeric",), canonical_unit="%"),
    # -- date/time -----------------------------------------------------------
    Concept("calendar_date", ConceptCategory.DATETIME,
            ("date", "day", "birthday"), type_families=("temporal", "text"),
            description="a calendar date"),
    Concept("timestamp", ConceptCategory.DATETIME,
            ("time", "timestamp", "datetime"),
            type_families=("temporal", "text")),
    Concept("year", ConceptCategory.DATETIME,
            ("year",), type_families=("temporal", "numeric")),
    Concept("period", ConceptCategory.DATETIME,
            ("period", "semester", "term", "quarter", "month"),
            type_families=("temporal", "text", "numeric")),
    # -- geographic ------------------------------------------------------------
    Concept("latitude", ConceptCategory.GEOGRAPHIC,
            ("latitude", "lat"), type_families=("numeric",),
            canonical_unit="deg"),
    Concept("longitude", ConceptCategory.GEOGRAPHIC,
            ("longitude", "lon", "lng"), type_families=("numeric",),
            canonical_unit="deg"),
    Concept("postal_address", ConceptCategory.GEOGRAPHIC,
            ("address", "street", "residence")),
    Concept("city", ConceptCategory.GEOGRAPHIC,
            ("city", "town", "municipality", "village")),
    Concept("region", ConceptCategory.GEOGRAPHIC,
            ("region", "state", "province", "district", "county")),
    Concept("country", ConceptCategory.GEOGRAPHIC,
            ("country", "nation")),
    Concept("postal_code", ConceptCategory.GEOGRAPHIC,
            ("zip", "zipcode", "postcode", "postal")),
    # -- identifiers ------------------------------------------------------------
    Concept("surrogate_key", ConceptCategory.IDENTIFIER,
            ("id", "key", "code", "uuid"),
            type_families=("identifier", "numeric", "text")),
    Concept("national_id", ConceptCategory.IDENTIFIER,
            ("ssn", "social", "tax", "license", "passport", "isbn",
             "plate")),
    # -- monetary -----------------------------------------------------------------
    Concept("money", ConceptCategory.MONETARY,
            ("price", "cost", "amount", "salary", "wage", "pay", "fee",
             "fare", "fine", "budget", "balance", "principal", "total"),
            type_families=("numeric",), canonical_unit="currency"),
    Concept("currency_code", ConceptCategory.MONETARY,
            ("currency",), type_families=("text",)),
    Concept("interest_rate", ConceptCategory.MONETARY,
            ("interest",), type_families=("numeric",), canonical_unit="%"),
    # -- contact --------------------------------------------------------------------
    Concept("email_address", ConceptCategory.CONTACT,
            ("email", "mail")),
    Concept("phone_number", ConceptCategory.CONTACT,
            ("phone", "telephone", "mobile", "fax")),
    # -- text ------------------------------------------------------------------------
    Concept("person_name", ConceptCategory.TEXT,
            ("name", "fname", "lname", "surname", "firstname", "lastname")),
    Concept("free_text", ConceptCategory.TEXT,
            ("description", "notes", "comment", "remarks", "summary")),
)


def concept_by_name(name: str) -> Concept:
    """Look up a concept; raises :class:`KeyError` when absent."""
    for concept in CONCEPTS:
        if concept.name == name:
            return concept
    raise KeyError(f"no concept named {name!r}")
