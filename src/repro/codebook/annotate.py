"""Rule-based concept recognition for schema attributes.

An attribute is annotated with the concept whose name cues best match
the attribute's (split + abbreviation-expanded) words, subject to
type-family consistency with the declared SQL type.  Scoring is simple
and auditable: one point per cue word present, a half-point penalty when
the declared type family contradicts the concept's allowed families,
winner takes the annotation if its score clears 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codebook.concepts import CONCEPTS, Concept
from repro.matching.datatype import type_family
from repro.matching.normalize import normalize_words
from repro.model.schema import Schema


@dataclass(frozen=True, slots=True)
class Annotation:
    """One attribute's recognized concept."""

    element_path: str
    concept: Concept
    score: float


@dataclass(slots=True)
class AnnotatedSchema:
    """A schema plus its concept annotations, keyed by element path."""

    schema: Schema
    annotations: dict[str, Annotation] = field(default_factory=dict)

    def concept_of(self, element_path: str) -> Concept | None:
        annotation = self.annotations.get(element_path)
        return None if annotation is None else annotation.concept

    @property
    def coverage(self) -> float:
        """Fraction of attributes that received an annotation."""
        total = self.schema.attribute_count
        if total == 0:
            return 0.0
        return len(self.annotations) / total

    def by_category(self) -> dict[str, list[str]]:
        """element paths grouped by concept category (for reports)."""
        groups: dict[str, list[str]] = {}
        for path, annotation in sorted(self.annotations.items()):
            groups.setdefault(
                annotation.concept.category.value, []).append(path)
        return groups


def _score_concept(concept: Concept, words: list[str],
                   family: str | None) -> float:
    cue_hits = sum(1 for word in words if word in concept.name_cues)
    if cue_hits == 0:
        return 0.0
    score = float(cue_hits)
    if concept.type_families and family is not None \
            and family not in concept.type_families:
        score -= 0.5
    return score


def annotate_attribute(name: str, data_type: str = "") -> Annotation | None:
    """Recognize the concept of one attribute, or None.

    Standalone helper for callers outside full-schema annotation (e.g.
    annotating query keywords).
    """
    words = normalize_words(name)
    family = type_family(data_type)
    best: tuple[float, Concept] | None = None
    for concept in CONCEPTS:
        score = _score_concept(concept, words, family)
        if score >= 1.0 and (best is None or score > best[0]):
            best = (score, concept)
    if best is None:
        return None
    return Annotation(element_path=name, concept=best[1], score=best[0])


def annotate_schema(schema: Schema) -> AnnotatedSchema:
    """Annotate every attribute of ``schema`` that a rule recognizes."""
    annotated = AnnotatedSchema(schema=schema)
    for entity in schema.entities.values():
        for attr in entity.attributes:
            annotation = annotate_attribute(attr.name, attr.data_type)
            if annotation is not None:
                path = f"{entity.name}.{attr.name}"
                annotated.annotations[path] = Annotation(
                    element_path=path,
                    concept=annotation.concept,
                    score=annotation.score,
                )
    return annotated
