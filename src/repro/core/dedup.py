"""Near-duplicate collapsing for result lists.

A WebTables-style corpus is full of near-identical schemas — the same
table crawled from many pages with trivial naming differences.  The
paper's filter drops singletons but keeps every duplicate cluster
member, so a result page can fill up with copies of one answer.  This
module groups results whose schemas have highly-overlapping normalized
element vocabularies and keeps the best-scored representative of each
group, annotating it with how many near-duplicates it hides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import SchemaSource
from repro.core.results import SearchResult
from repro.errors import SchemrError
from repro.matching.normalize import normalize_words
from repro.model.schema import Schema

#: Jaccard overlap of element-word fingerprints above which two schemas
#: are near-duplicates.
DEFAULT_OVERLAP = 0.9


def schema_fingerprint(schema: Schema) -> frozenset[str]:
    """The normalized element-word set of a schema.

    Naming-style noise (case, delimiters, abbreviations) washes out, so
    two renderings of the same underlying table fingerprint alike.
    """
    words: set[str] = set()
    for ref in schema.elements():
        words.update(normalize_words(ref.local_name))
    return frozenset(words)


def fingerprint_overlap(a: frozenset[str], b: frozenset[str]) -> float:
    """Jaccard overlap of two fingerprints."""
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


@dataclass(slots=True)
class DedupedResult:
    """One representative result plus its collapsed near-duplicates."""

    representative: SearchResult
    duplicates: list[SearchResult] = field(default_factory=list)

    @property
    def similar_count(self) -> int:
        return len(self.duplicates)


def collapse_duplicates(results: list[SearchResult],
                        source: SchemaSource,
                        overlap: float = DEFAULT_OVERLAP
                        ) -> list[DedupedResult]:
    """Greedily collapse near-duplicate results, order-preserving.

    Results arrive ranked; each becomes either a new representative or
    a duplicate of the first earlier representative whose fingerprint
    overlaps by at least ``overlap``.  The output order is the input
    order of the representatives, so ranking semantics survive.
    """
    if not 0.0 < overlap <= 1.0:
        raise SchemrError(f"overlap must be in (0, 1], got {overlap}")
    groups: list[DedupedResult] = []
    fingerprints: list[frozenset[str]] = []
    for result in results:
        fingerprint = schema_fingerprint(source.get_schema(result.schema_id))
        for group, existing in zip(groups, fingerprints):
            if fingerprint_overlap(fingerprint, existing) >= overlap:
                group.duplicates.append(result)
                break
        else:
            groups.append(DedupedResult(representative=result))
            fingerprints.append(fingerprint)
    return groups


def format_deduped(groups: list[DedupedResult]) -> str:
    """Compact display: representative rows with "+N similar" notes."""
    lines = []
    for rank, group in enumerate(groups, start=1):
        result = group.representative
        note = (f"  (+{group.similar_count} similar)"
                if group.similar_count else "")
        lines.append(f"{rank:>3}. {result.name:<40} "
                     f"{result.score:8.4f}{note}")
    return "\n".join(lines)
