"""Engine configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.scoring.tightness import PenaltyPolicy


@dataclass(slots=True)
class SchemrConfig:
    """Tunable knobs of the three-phase pipeline.

    ``candidate_pool`` is the n of the paper's "top n candidate results"
    from phase one — how many schemas survive into fine-grained
    matching.  ``use_coordination`` and ``use_tightness`` exist for the
    E3/E4 ablation benches; with ``use_tightness`` off, ranking falls
    back to the aggregate of per-element max scores without structural
    penalties.

    ``use_fuzzy_expansion`` enables the extension of
    :mod:`repro.index.fuzzy`: abbreviation expansion plus trigram
    suggestion for query terms missing from the term dictionary.  Off by
    default because the paper's phase one does not do this; the E3
    ablation measures its effect on noisy queries.

    ``match_workers`` sets how many threads score candidates in phase
    two.  1 (the default) keeps the phase sequential; above 1 the
    candidate pool is split into contiguous chunks dispatched to a
    thread pool, and the per-chunk results are concatenated in chunk
    order, so the ranking is identical to the sequential one.

    ``query_cache_size`` caps the phase-1
    :class:`~repro.index.cache.QueryCache`: how many (analyzed terms,
    top_n, index generation) rankings the searcher memoizes.  Repeated
    and paged queries skip retrieval entirely; entries self-invalidate
    when the indexer refreshes because the index generation is part of
    the key.  0 disables the cache.

    ``telemetry_enabled`` turns on the :mod:`repro.telemetry`
    subsystem: per-phase metrics and spans, query profiles, the
    slow-query log, and (when ``history_path`` is set) the JSONL
    search-history sink.  Off by default — the disabled path is a
    handful of no-op calls per query.  ``slow_query_seconds`` is the
    latency above which a search lands in the slow-query log;
    ``trace_buffer_size`` / ``profile_buffer_size`` bound the in-memory
    rings of recent span trees and query profiles.
    ``history_max_bytes`` bounds the history sink's live JSONL file:
    past it the file rotates to ``<history_path>.1`` (see
    :class:`~repro.telemetry.history.SearchHistorySink`), so a
    million-session replay cannot grow one file without limit.

    ``search_budget_seconds`` arms the :mod:`repro.resilience` layer:
    each search gets a wall-clock :class:`~repro.resilience.Deadline`
    and, under pressure, degrades along the ladder set by the
    ``degrade_*_fraction`` thresholds (remaining-budget fractions at
    which the engine shrinks the phase-2 pool, drops to the name
    matcher, or returns the phase-1 ranking outright).  ``None`` (the
    default) disables budgets entirely.

    ``breaker_failure_threshold`` / ``breaker_reset_seconds`` shape the
    circuit breakers around each matcher and the schema source;
    ``retry_attempts`` / ``retry_base_seconds`` shape the
    backoff-with-jitter retries on transient sqlite lock errors.

    ``max_concurrent_searches`` / ``admission_queue_size`` /
    ``admission_timeout_seconds`` bound the HTTP server's admission
    queue (429 + Retry-After past them); ``request_timeout_seconds``
    is the per-connection socket timeout that keeps a stalled client
    from pinning a serving thread.

    ``segment_dir`` serves the index from an on-disk segment directory
    (:mod:`repro.index.segments`): restart cold start is O(segment
    count) instead of a full postings rebuild, and every indexer
    refresh flushes the in-memory delta durably.  ``merge_policy``
    picks how flushed segments fold back together — ``"tiered"`` (the
    default, Lucene-style size tiers) or ``"none"`` (segments
    accumulate until an explicit rebuild).  ``None`` (the default)
    keeps the index purely in memory.

    ``shards`` > 1 serves searches from a pool of worker *processes*
    over a doc-id-sharded segment layout (:mod:`repro.sharding`) —
    the GIL-escape for CPU-bound phase-1/phase-2 work.  Requires
    ``segment_dir`` (workers mmap their shard) and a file-backed
    repository (workers open their own connections).
    ``shard_timeout_seconds`` bounds how long the scatter-gather front
    waits on one worker round-trip before declaring the shard stalled
    and serving degraded from the survivors.

    ``replicate_from`` turns the server into a read replica: instead of
    indexing locally, it pulls committed segments from the named
    primary (an ``http(s)://`` URL, or a local path for same-host
    tests) into ``segment_dir`` and hot-swaps them in
    (:mod:`repro.replication`).  ``replica_poll_seconds`` is the pull
    cadence; ``max_replica_lag_seconds`` is the staleness past which
    ``/readyz`` answers 503 so load balancers route around a replica
    that has fallen behind.  Requires ``segment_dir`` and is mutually
    exclusive with ``shards`` > 1 (a replica follows whatever layout —
    flat or sharded — the primary publishes).
    """

    candidate_pool: int = 50
    use_coordination: bool = True  # lint: internal (E3/E4 ablation knob)
    use_tightness: bool = True  # lint: internal (E3/E4 ablation knob)
    use_fuzzy_expansion: bool = False  # lint: internal (E3 ablation knob)
    match_workers: int = 1
    query_cache_size: int = 256
    telemetry_enabled: bool = False  # lint: internal (serve always enables)
    slow_query_seconds: float = 0.25
    trace_buffer_size: int = 64  # lint: internal (memory bound, not a tuning knob)
    profile_buffer_size: int = 256  # lint: internal (memory bound, not a tuning knob)
    history_path: str | None = None
    history_max_bytes: int | None = None
    search_budget_seconds: float | None = None
    degrade_reduced_pool_fraction: float = 0.5  # lint: internal (ladder shape; budget is the knob)
    degrade_name_only_fraction: float = 0.25  # lint: internal (ladder shape; budget is the knob)
    degrade_phase1_fraction: float = 0.10  # lint: internal (ladder shape; budget is the knob)
    breaker_failure_threshold: int = 5  # lint: internal (resilience default; chaos suite tunes it)
    breaker_reset_seconds: float = 30.0  # lint: internal (resilience default; chaos suite tunes it)
    retry_attempts: int = 4  # lint: internal (sqlite-lock backoff; not operator-facing)
    retry_base_seconds: float = 0.01  # lint: internal (sqlite-lock backoff; not operator-facing)
    max_concurrent_searches: int = 32
    admission_queue_size: int = 64
    admission_timeout_seconds: float = 0.5
    request_timeout_seconds: float = 30.0
    segment_dir: str | None = None
    merge_policy: str = "tiered"
    shards: int = 1
    shard_timeout_seconds: float = 10.0
    replicate_from: str | None = None
    max_replica_lag_seconds: float = 30.0
    replica_poll_seconds: float = 1.0
    penalties: PenaltyPolicy = field(default_factory=PenaltyPolicy)  # lint: internal (structured policy object, no flat flag)

    def __post_init__(self) -> None:
        if self.candidate_pool <= 0:
            raise QueryError(
                f"candidate_pool must be positive, got {self.candidate_pool}")
        if self.match_workers < 1:
            raise QueryError(
                f"match_workers must be >= 1, got {self.match_workers}")
        if self.query_cache_size < 0:
            raise QueryError(
                f"query_cache_size must be >= 0, got {self.query_cache_size}")
        if self.slow_query_seconds <= 0:
            raise QueryError(
                "slow_query_seconds must be positive, got "
                f"{self.slow_query_seconds}")
        if self.trace_buffer_size < 1:
            raise QueryError(
                "trace_buffer_size must be >= 1, got "
                f"{self.trace_buffer_size}")
        if self.profile_buffer_size < 1:
            raise QueryError(
                "profile_buffer_size must be >= 1, got "
                f"{self.profile_buffer_size}")
        if self.history_max_bytes is not None and self.history_max_bytes < 1:
            raise QueryError(
                "history_max_bytes must be >= 1 or None, got "
                f"{self.history_max_bytes}")
        if (self.search_budget_seconds is not None
                and self.search_budget_seconds <= 0):
            raise QueryError(
                "search_budget_seconds must be positive or None, got "
                f"{self.search_budget_seconds}")
        if not (0.0 < self.degrade_phase1_fraction
                <= self.degrade_name_only_fraction
                <= self.degrade_reduced_pool_fraction < 1.0):
            raise QueryError(
                "degradation fractions must satisfy 0 < phase1 <= "
                "name_only <= reduced_pool < 1, got "
                f"{self.degrade_phase1_fraction}/"
                f"{self.degrade_name_only_fraction}/"
                f"{self.degrade_reduced_pool_fraction}")
        if self.breaker_failure_threshold < 1:
            raise QueryError(
                "breaker_failure_threshold must be >= 1, got "
                f"{self.breaker_failure_threshold}")
        if self.breaker_reset_seconds <= 0:
            raise QueryError(
                "breaker_reset_seconds must be positive, got "
                f"{self.breaker_reset_seconds}")
        if self.retry_attempts < 1:
            raise QueryError(
                f"retry_attempts must be >= 1, got {self.retry_attempts}")
        if self.retry_base_seconds <= 0:
            raise QueryError(
                "retry_base_seconds must be positive, got "
                f"{self.retry_base_seconds}")
        if self.max_concurrent_searches < 1:
            raise QueryError(
                "max_concurrent_searches must be >= 1, got "
                f"{self.max_concurrent_searches}")
        if self.admission_queue_size < 0:
            raise QueryError(
                "admission_queue_size must be >= 0, got "
                f"{self.admission_queue_size}")
        if self.admission_timeout_seconds < 0:
            raise QueryError(
                "admission_timeout_seconds must be >= 0, got "
                f"{self.admission_timeout_seconds}")
        if self.request_timeout_seconds <= 0:
            raise QueryError(
                "request_timeout_seconds must be positive, got "
                f"{self.request_timeout_seconds}")
        if self.merge_policy not in ("tiered", "none"):
            raise QueryError(
                "merge_policy must be 'tiered' or 'none', got "
                f"{self.merge_policy!r}")
        if self.shards < 1:
            raise QueryError(
                f"shards must be >= 1, got {self.shards}")
        if self.shards > 1 and self.segment_dir is None:
            raise QueryError(
                "shards > 1 requires segment_dir (workers mmap their "
                "shard of the segment layout)")
        if self.shard_timeout_seconds <= 0:
            raise QueryError(
                "shard_timeout_seconds must be positive, got "
                f"{self.shard_timeout_seconds}")
        if self.replicate_from is not None:
            if self.segment_dir is None:
                raise QueryError(
                    "replicate_from requires segment_dir (the replica "
                    "commits pulled segments there)")
            if self.shards > 1:
                raise QueryError(
                    "replicate_from is mutually exclusive with shards > 1;"
                    " a replica follows the primary's layout as-is")
        if self.max_replica_lag_seconds <= 0:
            raise QueryError(
                "max_replica_lag_seconds must be positive, got "
                f"{self.max_replica_lag_seconds}")
        if self.replica_poll_seconds <= 0:
            raise QueryError(
                "replica_poll_seconds must be positive, got "
                f"{self.replica_poll_seconds}")
