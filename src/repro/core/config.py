"""Engine configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.scoring.tightness import PenaltyPolicy


@dataclass(slots=True)
class SchemrConfig:
    """Tunable knobs of the three-phase pipeline.

    ``candidate_pool`` is the n of the paper's "top n candidate results"
    from phase one — how many schemas survive into fine-grained
    matching.  ``use_coordination`` and ``use_tightness`` exist for the
    E3/E4 ablation benches; with ``use_tightness`` off, ranking falls
    back to the aggregate of per-element max scores without structural
    penalties.

    ``use_fuzzy_expansion`` enables the extension of
    :mod:`repro.index.fuzzy`: abbreviation expansion plus trigram
    suggestion for query terms missing from the term dictionary.  Off by
    default because the paper's phase one does not do this; the E3
    ablation measures its effect on noisy queries.

    ``match_workers`` sets how many threads score candidates in phase
    two.  1 (the default) keeps the phase sequential; above 1 the
    candidate pool is split into contiguous chunks dispatched to a
    thread pool, and the per-chunk results are concatenated in chunk
    order, so the ranking is identical to the sequential one.

    ``query_cache_size`` caps the phase-1
    :class:`~repro.index.cache.QueryCache`: how many (analyzed terms,
    top_n, index generation) rankings the searcher memoizes.  Repeated
    and paged queries skip retrieval entirely; entries self-invalidate
    when the indexer refreshes because the index generation is part of
    the key.  0 disables the cache.

    ``telemetry_enabled`` turns on the :mod:`repro.telemetry`
    subsystem: per-phase metrics and spans, query profiles, the
    slow-query log, and (when ``history_path`` is set) the JSONL
    search-history sink.  Off by default — the disabled path is a
    handful of no-op calls per query.  ``slow_query_seconds`` is the
    latency above which a search lands in the slow-query log;
    ``trace_buffer_size`` / ``profile_buffer_size`` bound the in-memory
    rings of recent span trees and query profiles.
    """

    candidate_pool: int = 50
    use_coordination: bool = True
    use_tightness: bool = True
    use_fuzzy_expansion: bool = False
    match_workers: int = 1
    query_cache_size: int = 256
    telemetry_enabled: bool = False
    slow_query_seconds: float = 0.25
    trace_buffer_size: int = 64
    profile_buffer_size: int = 256
    history_path: str | None = None
    penalties: PenaltyPolicy = field(default_factory=PenaltyPolicy)

    def __post_init__(self) -> None:
        if self.candidate_pool <= 0:
            raise QueryError(
                f"candidate_pool must be positive, got {self.candidate_pool}")
        if self.match_workers < 1:
            raise QueryError(
                f"match_workers must be >= 1, got {self.match_workers}")
        if self.query_cache_size < 0:
            raise QueryError(
                f"query_cache_size must be >= 0, got {self.query_cache_size}")
        if self.slow_query_seconds <= 0:
            raise QueryError(
                "slow_query_seconds must be positive, got "
                f"{self.slow_query_seconds}")
        if self.trace_buffer_size < 1:
            raise QueryError(
                "trace_buffer_size must be >= 1, got "
                f"{self.trace_buffer_size}")
        if self.profile_buffer_size < 1:
            raise QueryError(
                "profile_buffer_size must be >= 1, got "
                f"{self.profile_buffer_size}")
