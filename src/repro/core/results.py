"""Search results and the Figure 2 tabular view.

"Schemr returns a ranked list of n results, presented in a tabular
format, including columns for name, score, matches, entities,
attributes, and description."
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class ElementMatch:
    """One matched (query element, schema element) pair for drill-in."""

    query_label: str
    element_path: str
    score: float


@dataclass(slots=True)
class SearchResult:
    """One row of the ranked result list."""

    schema_id: int
    name: str
    score: float
    match_count: int
    entity_count: int
    attribute_count: int
    description: str = ""
    coarse_score: float = 0.0
    best_anchor: str | None = None
    element_scores: dict[str, float] = field(default_factory=dict)
    element_matches: list[ElementMatch] = field(default_factory=list)

    def top_matches(self, limit: int = 5) -> list[ElementMatch]:
        """Best element matches for display, highest score first."""
        ranked = sorted(self.element_matches,
                        key=lambda m: (-m.score, m.element_path))
        return ranked[:limit]


_COLUMNS = ("rank", "name", "score", "matches", "entities", "attributes",
            "description")


def format_result_table(results: list[SearchResult],
                        max_description: int = 40) -> str:
    """Render results as the fixed-width table of the Figure 2 GUI panel."""
    rows: list[tuple[str, ...]] = [tuple(c.title() for c in _COLUMNS)]
    for rank, result in enumerate(results, start=1):
        description = result.description
        if len(description) > max_description:
            description = description[:max_description - 3] + "..."
        rows.append((
            str(rank),
            result.name,
            f"{result.score:.4f}",
            str(result.match_count),
            str(result.entity_count),
            str(result.attribute_count),
            description,
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(_COLUMNS))]
    lines = []
    for i, row in enumerate(rows):
        line = "  ".join(cell.ljust(width)
                         for cell, width in zip(row, widths)).rstrip()
        lines.append(line)
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
