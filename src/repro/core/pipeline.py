"""Pipeline tracing: per-phase timing and sizes (Figure 3's data flow).

Every search records one :class:`PipelineTrace` holding a
:class:`PhaseTrace` per phase, so the bench for Figure 3 can print the
data-flow breakdown and callers can monitor production latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

PHASE_PARSE = "query_parse"
PHASE_CANDIDATES = "candidate_extraction"
PHASE_MATCHING = "schema_matching"
PHASE_TIGHTNESS = "tightness_of_fit"

ALL_PHASES = (PHASE_PARSE, PHASE_CANDIDATES, PHASE_MATCHING, PHASE_TIGHTNESS)


@dataclass(slots=True)
class PhaseTrace:
    """One phase: wall-clock seconds plus an items-processed count."""

    name: str
    seconds: float = 0.0
    items_in: int = 0
    items_out: int = 0


@dataclass(slots=True)
class PipelineTrace:
    """All phases of one search invocation, in execution order."""

    phases: list[PhaseTrace] = field(default_factory=list)

    def phase(self, name: str) -> PhaseTrace:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"no phase {name!r} recorded")

    @property
    def total_seconds(self) -> float:
        return sum(phase.seconds for phase in self.phases)

    def summary(self) -> str:
        """Human-readable data-flow table (the Figure 3 rendition)."""
        lines = [f"{'phase':<22} {'in':>8} {'out':>8} {'seconds':>10}"]
        for phase in self.phases:
            lines.append(f"{phase.name:<22} {phase.items_in:>8} "
                         f"{phase.items_out:>8} {phase.seconds:>10.5f}")
        lines.append(f"{'total':<22} {'':>8} {'':>8} "
                     f"{self.total_seconds:>10.5f}")
        return "\n".join(lines)


class _PhaseTimer:
    """Context manager recording one phase into a trace."""

    def __init__(self, trace: PipelineTrace, name: str) -> None:
        self._phase = PhaseTrace(name=name)
        trace.phases.append(self._phase)
        self._start = 0.0

    def __enter__(self) -> PhaseTrace:
        self._start = time.perf_counter()
        return self._phase

    def __exit__(self, *exc_info: object) -> None:
        self._phase.seconds = time.perf_counter() - self._start


def timed_phase(trace: PipelineTrace, name: str) -> _PhaseTimer:
    """Record a phase: ``with timed_phase(trace, PHASE_MATCHING) as ph:``"""
    return _PhaseTimer(trace, name)
