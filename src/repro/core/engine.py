"""The Schemr search engine: all three phases behind one call."""

from __future__ import annotations

import logging
import threading
import time

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Protocol

from repro.core.config import SchemrConfig
from repro.core.pipeline import (
    PHASE_CANDIDATES,
    PHASE_MATCHING,
    PHASE_PARSE,
    PHASE_TIGHTNESS,
    PipelineTrace,
    timed_phase,
)
from repro.core.results import ElementMatch, SearchResult
from repro.errors import QueryError
from repro.index.inverted import InvertedIndex
from repro.index.searcher import IndexSearcher
from repro.index.searcher import IndexHit
from repro.matching.ensemble import MatcherEnsemble
from repro.matching.profile import MatchScratch, SchemaMatchProfile
from repro.model.query import QueryGraph
from repro.model.schema import Schema
from repro.errors import CircuitOpenError, DeadlineExceeded
from repro.parsers.query_parser import parse_query
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import (
    DEGRADE_NAME_ONLY,
    DEGRADE_PHASE1_ONLY,
    DEGRADE_REDUCED_POOL,
    Deadline,
    DegradationLadder,
    degradation_name,
)
from repro.resilience.faults import FAULTS
from repro.resilience.guards import GuardedEnsemble
from repro.scoring.tightness import TightnessScorer
from repro.telemetry import (
    DEFAULT_COUNT_BUCKETS,
    EMPTY_ALL_FILTERED,
    EMPTY_NO_INDEX_HITS,
    EMPTY_OFFSET_BEYOND,
    QueryProfile,
    Telemetry,
)

logger = logging.getLogger(__name__)


class SchemaSource(Protocol):
    """Where the engine fetches full schemas for candidate ids.

    The repository implements this; tests can use
    :class:`DictSchemaSource`.
    """

    def get_schema(self, schema_id: int) -> Schema:  # pragma: no cover
        """Return the schema stored under ``schema_id``."""
        ...


class DictSchemaSource:
    """In-memory :class:`SchemaSource` over a dict (tests, examples)."""

    def __init__(self, schemas: dict[int, Schema]) -> None:
        self._schemas = dict(schemas)

    def get_schema(self, schema_id: int) -> Schema:
        try:
            return self._schemas[schema_id]
        except KeyError:
            raise QueryError(f"unknown schema id {schema_id}") from None


class SchemrEngine:
    """Executes the three-phase schema search of Figure 3.

    Parameters
    ----------
    index:
        The inverted index over the schema corpus (phase one).
    source:
        Resolver from candidate ids to full :class:`Schema` objects
        (needed by phases two and three).
    ensemble:
        Fine-grained matcher ensemble; defaults to the paper's
        name + context pair with uniform weights.
    config:
        Pipeline knobs; see :class:`SchemrConfig`.
    telemetry:
        Shared :class:`~repro.telemetry.Telemetry` facade; built from
        ``config`` when omitted (and then owned — closed with the
        engine).  Disabled telemetry costs a handful of no-op calls
        per query.
    """

    def __init__(self, index: InvertedIndex, source: SchemaSource,
                 ensemble: MatcherEnsemble | None = None,
                 config: SchemrConfig | None = None,
                 telemetry: Telemetry | None = None,
                 clock: Callable[[], float] | None = None) -> None:
        self._config = config or SchemrConfig()
        #: Monotonic clock for deadlines and breakers — injectable so
        #: the chaos suite advances time without sleeping.
        self._clock = clock or time.monotonic
        self._owns_telemetry = telemetry is None
        self._telemetry = telemetry or Telemetry.from_config(self._config)
        fuzzy = None
        if self._config.use_fuzzy_expansion:
            from repro.index.fuzzy import TrigramIndex
            fuzzy = TrigramIndex.from_terms(index.vocabulary())
        self._fuzzy_generation = index.generation
        query_cache = None
        if self._config.query_cache_size > 0:
            from repro.index.cache import QueryCache
            query_cache = QueryCache(self._config.query_cache_size)
        self._searcher = IndexSearcher(
            index, use_coordination=self._config.use_coordination,
            fuzzy=fuzzy, query_cache=query_cache)
        self._source = source
        # Sources that precompute match profiles (ProfileStore) expose
        # get_profile; the engine takes the fast path when it exists.
        self._get_profile = getattr(source, "get_profile", None)
        self._ensemble = ensemble or MatcherEnsemble.default()
        self._guard = GuardedEnsemble(
            self._ensemble,
            failure_threshold=self._config.breaker_failure_threshold,
            reset_seconds=self._config.breaker_reset_seconds,
            clock=self._clock)
        self._store_breaker = CircuitBreaker(
            "schema_source",
            failure_threshold=self._config.breaker_failure_threshold,
            reset_seconds=self._config.breaker_reset_seconds,
            clock=self._clock)
        self._ladder = DegradationLadder(
            reduced_pool_fraction=self._config.degrade_reduced_pool_fraction,
            name_only_fraction=self._config.degrade_name_only_fraction,
            phase1_fraction=self._config.degrade_phase1_fraction)
        self._tightness = TightnessScorer(self._config.penalties)
        self._executor: ThreadPoolExecutor | None = None
        self.last_trace: PipelineTrace | None = None
        #: The :class:`QueryProfile` of the most recent search —
        #: populated whether or not telemetry is enabled, so callers can
        #: always see *why* a query came back empty.
        self.last_profile: QueryProfile | None = None
        # Per-thread copy of the same, for concurrent callers (the
        # threading HTTP server) that must read *their own* search's
        # profile, not whichever search finished last.
        self._thread_profile = threading.local()
        self._register_instruments(index)

    def _register_instruments(self, index: InvertedIndex) -> None:
        """Resolve hot-path instruments once and wire callback gauges.

        On a disabled registry every instrument is a shared no-op, so
        the per-query cost of the disabled path is the calls themselves.
        Cache and index statistics are exported as callbacks evaluated
        at scrape time — the serving path never updates them.
        """
        m = self._telemetry.metrics
        self._m_searches = m.counter(
            "schemr_searches_total", "Searches executed")
        self._m_search_seconds = m.histogram(
            "schemr_search_seconds", "End-to-end search latency")
        self._m_phase = {
            name: m.histogram("schemr_phase_seconds",
                              "Per-phase wall time", phase=name)
            for name in (PHASE_PARSE, PHASE_CANDIDATES, PHASE_MATCHING,
                         PHASE_TIGHTNESS)
        }
        self._m_candidates = m.histogram(
            "schemr_phase1_candidates", "Phase-1 candidates per query",
            buckets=DEFAULT_COUNT_BUCKETS)
        self._m_results = m.counter(
            "schemr_results_total", "Results returned")
        self._m_docs_scored = m.counter(
            "schemr_phase1_docs_scored_total",
            "Documents entering the phase-1 accumulator")
        self._m_pruned_early = m.counter(
            "schemr_phase1_pruned_early_total",
            "Queries where MaxScore pruning reached AND-mode")
        self._m_slow = m.counter(
            "schemr_slow_queries_total",
            "Searches above the slow-query threshold")
        self._m_degraded = {
            level: m.counter("schemr_degraded_searches_total",
                             "Searches answered below full fidelity",
                             level=degradation_name(level))
            for level in (DEGRADE_REDUCED_POOL, DEGRADE_NAME_ONLY,
                          DEGRADE_PHASE1_ONLY)
        }
        self._m_deadline_expired = m.counter(
            "schemr_deadline_expired_total",
            "Searches whose wall-clock budget ran out mid-pipeline")
        self._m_source_failures = m.counter(
            "schemr_source_failures_total",
            "Candidate fetches the schema source failed")
        if m.enabled:
            m.gauge("schemr_index_documents", "Indexed documents",
                    callback=lambda: index.document_count)
            m.gauge("schemr_index_terms", "Distinct index terms",
                    callback=lambda: index.term_count)
            m.gauge("schemr_index_generation", "Index generation",
                    callback=lambda: index.generation)
            if hasattr(index, "segment_count"):
                # Serving from a SegmentedIndex: expose the segment
                # topology so operators can watch flushes and merges.
                m.gauge("schemr_segment_count", "Live mmapped segments",
                        callback=lambda: index.segment_count)
                m.gauge("schemr_segment_mmap_bytes",
                        "Bytes memory-mapped across live segments",
                        callback=lambda: index.mmap_bytes)
                m.gauge("schemr_segment_delta_docs",
                        "Documents in the in-memory delta segment",
                        callback=lambda: index.delta_document_count)
                m.gauge("schemr_segment_deleted_docs",
                        "Tombstoned documents awaiting a merge",
                        callback=lambda: index.deleted_count)
            cache = self._searcher.query_cache
            if cache is not None:
                m.counter("schemr_query_cache_hits_total",
                          "Query-cache hits", callback=lambda: cache.hits)
                m.counter("schemr_query_cache_misses_total",
                          "Query-cache misses",
                          callback=lambda: cache.misses)
                m.counter("schemr_query_cache_evictions_total",
                          "Query-cache LRU evictions",
                          callback=lambda: cache.evictions)
                m.counter("schemr_query_cache_stale_evictions_total",
                          "Query-cache stale-generation sweeps",
                          callback=lambda: cache.stale_evictions)
                m.gauge("schemr_query_cache_entries",
                        "Query-cache live entries",
                        callback=lambda: len(cache))
            for name, breaker in self.breakers.items():
                m.gauge("schemr_breaker_state",
                        "Breaker state: 0 closed, 1 half-open, 2 open",
                        callback=lambda b=breaker: b.state_code,
                        breaker=name)
                m.counter("schemr_breaker_opens_total",
                          "Times a breaker tripped open",
                          callback=lambda b=breaker: b.open_count,
                          breaker=name)
            source = self._source
            if all(hasattr(source, name)
                   for name in ("hits", "misses", "evictions")):
                m.counter("schemr_profile_cache_hits_total",
                          "Profile-cache hits",
                          callback=lambda: source.hits)
                m.counter("schemr_profile_cache_misses_total",
                          "Profile-cache misses",
                          callback=lambda: source.misses)
                m.counter("schemr_profile_cache_evictions_total",
                          "Profile-cache LRU evictions",
                          callback=lambda: source.evictions)

    @property
    def ensemble(self) -> MatcherEnsemble:
        return self._ensemble

    @property
    def config(self) -> SchemrConfig:
        return self._config

    @property
    def searcher(self) -> IndexSearcher:
        return self._searcher

    @property
    def telemetry(self) -> Telemetry:
        return self._telemetry

    @property
    def store_breaker(self) -> CircuitBreaker:
        """The breaker around the schema source (sqlite/ProfileStore)."""
        return self._store_breaker

    @property
    def breakers(self) -> dict[str, CircuitBreaker]:
        """Every breaker this engine owns, keyed by name.

        ``schema_source`` plus one ``matcher.<name>`` entry per
        ensemble matcher; the readiness probe and the ``/metrics``
        gauges read these.
        """
        all_breakers = {"schema_source": self._store_breaker}
        all_breakers.update(
            (breaker.name, breaker)
            for breaker in self._guard.breakers.values())
        return all_breakers

    @property
    def thread_profile(self) -> QueryProfile | None:
        """The profile of the *calling thread's* most recent search.

        Unlike :attr:`last_profile` this cannot be clobbered by a
        concurrent search on another thread; the HTTP handlers read it
        to stamp each response with its own degradation level."""
        return getattr(self._thread_profile, "profile", None)

    def close(self) -> None:
        """Release the match-phase thread pool and, when this engine
        created its own telemetry, the history sink (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._owns_telemetry:
            self._telemetry.close()

    def __enter__(self) -> "SchemrEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- public API ----------------------------------------------------

    def search(self, keywords: str | list[str] | None = None,
               fragment: "str | Schema | list[str | Schema] | None" = None,
               top_n: int = 10, offset: int = 0) -> list[SearchResult]:
        """Search with raw user input (parses the query graph first).

        ``fragment`` accepts DDL/XSD text, a :class:`Schema`, or a list
        of either (the query graph is a forest).  ``offset`` pages
        through the ranking: the user "can ... ask for the next n
        schemas" (offset=top_n gets page two).
        """
        trace = PipelineTrace()
        deadline = Deadline(self._config.search_budget_seconds,
                            clock=self._clock)
        tracer = self._telemetry.tracer
        with tracer.span("search"):
            with timed_phase(trace, PHASE_PARSE) as phase, \
                    tracer.span(PHASE_PARSE):
                query = parse_query(keywords=keywords, fragment=fragment)
                phase.items_out = len(query)
            results = self._run(query, top_n, trace, offset, deadline)
        self.last_trace = trace
        return results

    def search_graph(self, query: QueryGraph, top_n: int = 10,
                     offset: int = 0) -> list[SearchResult]:
        """Search with a pre-built query graph."""
        if query.is_empty():
            raise QueryError("query graph is empty")
        trace = PipelineTrace()
        deadline = Deadline(self._config.search_budget_seconds,
                            clock=self._clock)
        with self._telemetry.tracer.span("search"):
            results = self._run(query, top_n, trace, offset, deadline)
        self.last_trace = trace
        return results

    def _ensure_fuzzy_current(self) -> None:
        """Re-sync the fuzzy vocabulary with the index generation.

        The trigram index is built from the vocabulary at construction
        time; after an indexer refresh/rebuild the index generation
        moves and new schemas' terms would be invisible to fuzzy
        expansion.  Comparing generations makes the check O(1) per
        query and the vocabulary walk happens only when something
        actually changed.
        """
        fuzzy = self._searcher.fuzzy
        if fuzzy is None:
            return
        index = self._searcher.index
        generation = index.generation
        if generation != self._fuzzy_generation:
            fuzzy.update_from(index.vocabulary())
            self._fuzzy_generation = generation

    # -- pipeline --------------------------------------------------------

    def _run(self, query: QueryGraph, top_n: int, trace: PipelineTrace,
             offset: int = 0,
             deadline: Deadline | None = None) -> list[SearchResult]:
        if top_n <= 0:
            raise QueryError(f"top_n must be positive, got {top_n}")
        if offset < 0:
            raise QueryError(f"offset must be >= 0, got {offset}")
        if deadline is None:
            deadline = Deadline(self._config.search_budget_seconds,
                                clock=self._clock)

        tracer = self._telemetry.tracer

        # Phase 1: candidate extraction over the document index.
        self._ensure_fuzzy_current()
        with timed_phase(trace, PHASE_CANDIDATES) as phase, \
                tracer.span(PHASE_CANDIDATES):
            flattened = query.flatten()
            phase.items_in = len(flattened)
            FAULTS.hit("engine.phase1")
            hits = self._searcher.search(
                flattened, top_n=self._config.candidate_pool)
            phase.items_out = len(hits)

        # Between phases 1 and 2 the degradation ladder decides how
        # much of the remaining pipeline the budget can afford.
        level = self._ladder.level_for(deadline)
        deadline_expired = deadline.expired()
        if level >= DEGRADE_PHASE1_ONLY:
            page = self._phase1_page(hits, top_n, offset)
            self._finish_search(flattened, trace, hits, len(hits), page,
                                top_n, offset, level=level,
                                deadline=deadline,
                                deadline_expired=deadline_expired)
            return page

        pool = hits
        if level >= DEGRADE_REDUCED_POOL:
            keep = max(top_n + offset, self._config.candidate_pool // 4)
            pool = hits[:keep]
        cheap_only = level >= DEGRADE_NAME_ONLY

        # Phase 2: fine-grained matching of each candidate.  A budget
        # that dies inside the scoring loop — or a schema source whose
        # breaker is open — degrades to the phase-1 ranking instead of
        # failing the search.
        scored: list[SearchResult] = []
        source_failures_before = self._store_breaker.failure_count
        try:
            with timed_phase(trace, PHASE_MATCHING) as phase, \
                    tracer.span(PHASE_MATCHING):
                phase.items_in = len(pool)
                matched = self._match_candidates(query, pool, deadline,
                                                 cheap_only=cheap_only)
                phase.items_out = len(matched)
            if (not matched and pool and self._store_breaker.failure_count
                    > source_failures_before):
                # Every candidate's schema fetch failed (but the breaker
                # has not tripped yet): an empty page would misreport a
                # source outage as "nothing matched".
                raise CircuitOpenError(
                    "schema source failed for every candidate",
                    breaker=self._store_breaker.name)

            # Phase 3: tightness-of-fit scoring and final ranking.
            with timed_phase(trace, PHASE_TIGHTNESS) as phase, \
                    tracer.span(PHASE_TIGHTNESS):
                phase.items_in = len(matched)
                for (hit, candidate, ensemble_result, element_scores,
                     profile) in matched:
                    scored.append(self._score_candidate(
                        hit.score, candidate, ensemble_result,
                        element_scores, profile))
                scored.sort(
                    key=lambda r: (-r.score, -r.coarse_score, r.name))
                page = scored[offset:offset + top_n]
                phase.items_out = len(page)
        except DeadlineExceeded as exc:
            logger.warning("search degraded to phase-1 ranking: %s", exc)
            page = self._phase1_page(hits, top_n, offset)
            self._finish_search(flattened, trace, hits, len(hits), page,
                                top_n, offset,
                                level=DEGRADE_PHASE1_ONLY,
                                deadline=deadline, deadline_expired=True)
            return page
        except CircuitOpenError as exc:
            logger.warning("search degraded to phase-1 ranking "
                           "(breaker %s open)", exc.breaker)
            page = self._phase1_page(hits, top_n, offset)
            self._finish_search(flattened, trace, hits, len(hits), page,
                                top_n, offset,
                                level=DEGRADE_PHASE1_ONLY,
                                deadline=deadline,
                                deadline_expired=deadline.expired())
            return page
        self._finish_search(flattened, trace, hits, len(scored), page,
                            top_n, offset, level=level, deadline=deadline,
                            deadline_expired=deadline.expired())
        logger.debug("search: %d candidate(s) -> %d result(s) in %.4fs",
                     len(hits), len(page), trace.total_seconds)
        return page

    def match_and_score(self, query: QueryGraph, pool: list[IndexHit],
                        deadline: Deadline | None = None,
                        cheap_only: bool = False) -> list[SearchResult]:
        """Phases 2+3 for an externally supplied candidate pool.

        Returns one :class:`SearchResult` per candidate that survived
        matching, **in pool order, unsorted and unpaged** — the caller
        owns ranking.  This is the per-shard work unit of
        :mod:`repro.sharding`: a scatter-gather front selects the
        global pool, each worker runs its shard's slice through here,
        and the front applies the engine's final sort, so the merged
        page is byte-identical to a single engine's.

        Raises exactly what :meth:`search`'s inner pipeline would:
        :class:`DeadlineExceeded` when the budget dies mid-pool and
        :class:`CircuitOpenError` when the schema source failed for
        every candidate (or its breaker is open).
        """
        if deadline is None:
            deadline = Deadline(None, clock=self._clock)
        source_failures_before = self._store_breaker.failure_count
        matched = self._match_candidates(query, pool, deadline,
                                         cheap_only=cheap_only)
        if (not matched and pool and self._store_breaker.failure_count
                > source_failures_before):
            raise CircuitOpenError(
                "schema source failed for every candidate",
                breaker=self._store_breaker.name)
        return [
            self._score_candidate(hit.score, candidate, ensemble_result,
                                  element_scores, profile)
            for (hit, candidate, ensemble_result, element_scores,
                 profile) in matched
        ]

    def _phase1_page(self, hits: list[IndexHit], top_n: int,
                     offset: int) -> list[SearchResult]:
        """The ``phase1_only`` fallback: TF/IDF ranking, index data only.

        Built purely from the inverted index (the schema source may be
        the thing that is broken), so entity/attribute counts are
        unknown and the coarse score doubles as the final score.
        """
        return [
            SearchResult(
                schema_id=hit.doc_id,
                name=hit.title,
                score=hit.score,
                match_count=hit.matched_terms,
                entity_count=0,
                attribute_count=0,
                coarse_score=hit.score,
            )
            for hit in hits[offset:offset + top_n]
        ]

    def _finish_search(self, flattened: list[str], trace: PipelineTrace,
                       hits: list[IndexHit], matched_count: int,
                       results: list[SearchResult], top_n: int,
                       offset: int, level: int = 0,
                       deadline: Deadline | None = None,
                       deadline_expired: bool = False) -> None:
        """Build the :class:`QueryProfile` and feed the telemetry sinks.

        The profile itself is always built (it is how callers learn an
        empty page's reason); metric updates, the slow-query log, and
        the history sink only run with telemetry enabled.
        """
        empty_reason = None
        if not results:
            if not hits:
                empty_reason = EMPTY_NO_INDEX_HITS
            elif matched_count == 0:
                empty_reason = EMPTY_ALL_FILTERED
            else:
                empty_reason = EMPTY_OFFSET_BEYOND
        stats = self._searcher.last_stats
        profile = QueryProfile(
            query_terms=tuple(flattened),
            started_at=self._telemetry.wall_clock() - trace.total_seconds,
            total_seconds=trace.total_seconds,
            phase_seconds={phase.name: phase.seconds
                           for phase in trace.phases},
            candidate_count=len(hits),
            matched_count=matched_count,
            result_count=len(results),
            top_n=top_n,
            offset=offset,
            strategy=stats.strategy if stats is not None else "",
            cache_hit=stats.cache_hit if stats is not None else False,
            pruned_early=stats.pruned_early if stats is not None else False,
            docs_scored=stats.docs_scored if stats is not None else 0,
            empty_reason=empty_reason,
            degradation_level=level,
            degradation=degradation_name(level),
            deadline_expired=deadline_expired,
            budget_seconds=(deadline.budget_seconds
                            if deadline is not None else None),
        )
        self.last_profile = profile
        self._thread_profile.profile = profile
        telemetry = self._telemetry
        if not telemetry.enabled:
            return
        self._m_searches.inc()
        if level > 0:
            counter = self._m_degraded.get(level)
            if counter is not None:
                counter.inc()
        if deadline_expired:
            self._m_deadline_expired.inc()
        self._m_search_seconds.observe(profile.total_seconds)
        for name, seconds in profile.phase_seconds.items():
            hist = self._m_phase.get(name)
            if hist is not None:
                hist.observe(seconds)
        self._m_candidates.observe(profile.candidate_count)
        self._m_results.inc(profile.result_count)
        self._m_docs_scored.inc(profile.docs_scored)
        if profile.pruned_early:
            self._m_pruned_early.inc()
        telemetry.metrics.counter(
            "schemr_phase1_queries_total", "Phase-1 retrievals by path",
            strategy=profile.strategy or "unknown",
            cache="hit" if profile.cache_hit else "miss").inc()
        if profile.empty_reason is not None:
            telemetry.metrics.counter(
                "schemr_empty_results_total", "Empty result pages by reason",
                reason=profile.empty_reason).inc()
        if telemetry.profiles.record(profile):
            self._m_slow.inc()
            logger.warning(
                "slow query (%.1f ms >= %.1f ms): terms=%s candidates=%d "
                "results=%d", profile.total_seconds * 1000.0,
                telemetry.profiles.slow_threshold_seconds * 1000.0,
                " ".join(profile.query_terms), profile.candidate_count,
                profile.result_count)
        if telemetry.history is not None:
            telemetry.history.record(profile.query_terms, results,
                                     total_seconds=profile.total_seconds)

    def _match_candidates(self, query: QueryGraph, hits: list[IndexHit],
                          deadline: Deadline, cheap_only: bool = False):
        """Run the ensemble over every candidate, optionally in parallel.

        One :class:`MatchScratch` is shared by the whole pool — the
        caches memoize pure functions, so cross-thread sharing is safe
        and profitable.  With ``match_workers > 1`` the hits are split
        into contiguous chunks and the per-chunk results concatenated in
        chunk order, keeping the output order (and therefore the final
        ranking) byte-identical to the sequential path.

        The deadline is consulted before every candidate; an exhausted
        budget raises :class:`DeadlineExceeded`, which the caller turns
        into the phase-1 fallback.  Candidates whose schema fetch fails
        are skipped (counted, breaker-recorded) rather than failing the
        whole search.
        """
        scratch = MatchScratch()
        workers = self._config.match_workers
        if workers <= 1 or len(hits) <= 1:
            return self._match_chunk(query, hits, scratch, deadline,
                                     cheap_only)
        size = -(-len(hits) // workers)  # ceil division
        executor = self._executor
        if executor is None:
            executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="schemr-match")
            self._executor = executor
        futures = [
            executor.submit(self._match_chunk, query, hits[i:i + size],
                            scratch, deadline, cheap_only)
            for i in range(size, len(hits), size)
        ]
        # The main thread scores the first chunk itself while the pool
        # drains the rest — one fewer task round-trip per query.
        matched = self._match_chunk(query, hits[:size], scratch, deadline,
                                    cheap_only)
        for future in futures:
            matched.extend(future.result())
        return matched

    def _match_chunk(self, query: QueryGraph, chunk: list[IndexHit],
                     scratch: MatchScratch, deadline: Deadline,
                     cheap_only: bool = False):
        matched = []
        for hit in chunk:
            deadline.check("phase-2 candidate loop")
            entry = self._match_one(query, hit, scratch, cheap_only)
            if entry is not None:
                matched.append(entry)
        return matched

    def _match_one(self, query: QueryGraph, hit: IndexHit,
                   scratch: MatchScratch, cheap_only: bool = False):
        """Score one candidate; None when its schema fetch failed.

        The schema source sits behind its circuit breaker: individual
        fetch failures skip the candidate and count against the
        breaker; an open breaker aborts the whole match phase with
        :class:`CircuitOpenError` so the caller can fall back to the
        phase-1 ranking instead of paying a timeout per candidate.
        """
        FAULTS.hit("engine.match_one")
        breaker = self._store_breaker
        if not breaker.allow():
            raise CircuitOpenError(
                "schema source circuit is open",
                breaker=breaker.name, retry_after=breaker.retry_after())
        profile: SchemaMatchProfile | None = None
        try:
            if self._get_profile is not None:
                profile = self._get_profile(hit.doc_id)
            candidate = self._source.get_schema(hit.doc_id)
        except Exception as exc:
            breaker.record_failure()
            self._m_source_failures.inc()
            logger.warning("schema source failed for candidate %d "
                           "(skipped): %s", hit.doc_id, exc)
            return None
        breaker.record_success()
        result = self._guard.match(query, candidate, profile=profile,
                                   scratch=scratch, cheap_only=cheap_only)
        element_scores = result.combined.max_per_column()
        return (hit, candidate, result, element_scores, profile)

    def _score_candidate(self, coarse_score: float, candidate: Schema,
                         ensemble_result, element_scores: dict[str, float],
                         profile: SchemaMatchProfile | None = None
                         ) -> SearchResult:
        floor = self._config.penalties.match_floor
        matched_scores = {path: value
                          for path, value in element_scores.items()
                          if value > floor}
        if self._config.use_tightness:
            neighborhoods = (profile.neighborhood_index()
                             if profile is not None else None)
            tight = self._tightness.score(candidate, element_scores,
                                          neighborhoods=neighborhoods)
            final_score = tight.score
            best_anchor = tight.best_anchor
        else:
            # Ablation path: same aggregation, no structural penalties.
            if matched_scores:
                final_score = sum(matched_scores.values())
                if self._config.penalties.aggregation == "mean":
                    final_score /= len(matched_scores)
            else:
                final_score = 0.0
            best_anchor = None
        element_matches = [
            ElementMatch(query_label=row, element_path=col, score=value)
            for row, col, value in
            ensemble_result.combined.nonzero_pairs(threshold=floor)
        ]
        assert candidate.schema_id is not None
        return SearchResult(
            schema_id=candidate.schema_id,
            name=candidate.name,
            score=final_score,
            match_count=len(matched_scores),
            entity_count=candidate.entity_count,
            attribute_count=candidate.attribute_count,
            description=candidate.description,
            coarse_score=coarse_score,
            best_anchor=best_anchor,
            element_scores=matched_scores,
            element_matches=element_matches,
        )
