"""The Schemr engine: candidate extraction -> matching -> tightness-of-fit.

:class:`~repro.core.engine.SchemrEngine` is the library's main entry
point.  It consumes a query graph (or raw keywords + fragment text),
filters candidates through the inverted index, re-scores them with the
matcher ensemble and ranks by tightness-of-fit, returning
:class:`~repro.core.results.SearchResult` rows that carry everything the
Figure 2 tabular view displays.
"""

from repro.core.config import SchemrConfig
from repro.core.engine import DictSchemaSource, SchemaSource, SchemrEngine
from repro.core.pipeline import PhaseTrace, PipelineTrace
from repro.core.results import ElementMatch, SearchResult, format_result_table

__all__ = [
    "DictSchemaSource",
    "ElementMatch",
    "PhaseTrace",
    "PipelineTrace",
    "SchemaSource",
    "SchemrConfig",
    "SchemrEngine",
    "SearchResult",
    "format_result_table",
]
