"""WebTables-style importer.

The paper's 30,000-schema repository "came [from] a collection of 10
million HTML tables" (Cafarella et al.'s WebTables).  A WebTable schema
is just a header row: a table name (or page title) plus column labels.
This importer turns such a header into a single-entity schema.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.model.elements import Attribute, Entity
from repro.model.schema import Schema


def schema_from_webtable(title: str, columns: list[str],
                         description: str = "") -> Schema:
    """Build a one-entity schema from an HTML-table header row.

    ``title`` names both the schema and its sole entity; ``columns``
    become attributes in order.  Duplicate or empty column labels are
    disambiguated / dropped the way a crawler post-processor would.
    """
    title = title.strip()
    if not title:
        raise ParseError("webtable title must be non-empty")
    cleaned: list[str] = []
    seen: set[str] = set()
    for raw in columns:
        label = raw.strip()
        if not label:
            continue
        candidate = label
        suffix = 2
        while candidate in seen:
            candidate = f"{label}_{suffix}"
            suffix += 1
        seen.add(candidate)
        cleaned.append(candidate)
    if not cleaned:
        raise ParseError(
            f"webtable {title!r} has no usable column labels")
    entity = Entity(name=title, attributes=[
        Attribute(name=label) for label in cleaned])
    return Schema(name=title, entities={title: entity},
                  description=description, source="webtable")
