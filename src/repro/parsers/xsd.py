"""XSD (XML Schema Definition) parser.

Hierarchical XSD structure is normalized into the relational model the
rest of the library works on, the way an XML shredding tool would:

* an ``xs:element`` with complex content (or a named ``xs:complexType``)
  becomes an :class:`~repro.model.elements.Entity`;
* leaf ``xs:element``s and ``xs:attribute``s become attributes;
* containment of entity B inside entity A becomes the foreign key
  ``B.<A>_id -> A.id``, synthesizing the ``id`` key attribute on A (and
  the ``<A>_id`` attribute on B) when absent.  Synthetic attributes are
  tagged in their description so downstream code can recognize them.

This preserves what tightness-of-fit needs — entity neighborhoods that
follow the document hierarchy — while keeping realistic relational
names.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.errors import ParseError, SchemaError
from repro.model.elements import Attribute, Entity, ForeignKey
from repro.model.schema import Schema

_XS = "{http://www.w3.org/2001/XMLSchema}"
SYNTHETIC_KEY_NOTE = "synthetic containment key"


def _local_type(type_name: str | None) -> str:
    """``xs:string`` -> ``string``; passthrough for unprefixed names."""
    if not type_name:
        return ""
    _, _, local = type_name.rpartition(":")
    return local


class _XsdParser:
    def __init__(self, root: ET.Element, schema_name: str) -> None:
        self._root = root
        self._schema = Schema(name=schema_name, source="xsd")
        self._named_types: dict[str, ET.Element] = {}
        self._containments: list[tuple[str, str]] = []  # (parent, child)
        self._visiting: set[str] = set()

    def parse(self) -> Schema:
        if self._root.tag != f"{_XS}schema":
            raise ParseError(
                f"root element is {self._root.tag!r}, expected xs:schema")
        for node in self._root.findall(f"{_XS}complexType"):
            name = node.get("name")
            if name:
                self._named_types[name] = node
        top_elements = self._root.findall(f"{_XS}element")
        if not top_elements and not self._named_types:
            raise ParseError("XSD declares no elements or complex types")
        for element in top_elements:
            self._walk_element(element, parent_entity=None)
        # Named complex types never instantiated by an element still
        # describe structure worth indexing.
        for name, node in self._named_types.items():
            if name not in self._schema.entities:
                self._build_entity(name, node, parent_entity=None)
        for parent, child in self._containments:
            self._link(parent, child)
        self._restore_appinfo_foreign_keys()
        return self._schema

    def _restore_appinfo_foreign_keys(self) -> None:
        """Read back ``<foreignKey source target>`` appinfo annotations.

        :func:`repro.repository.exporter.export_xsd` records relational
        FK structure (which XSD cannot express hierarchically) in
        ``xs:annotation/xs:appinfo``; restoring them completes the
        export/import round trip.  Annotations whose endpoints do not
        exist in the parsed schema are ignored.
        """
        for node in self._root.findall(
                f"{_XS}annotation/{_XS}appinfo/foreignKey"):
            source = node.get("source", "")
            target = node.get("target", "")
            source_entity, _, source_attr = source.partition(".")
            target_entity, _, target_attr = target.partition(".")
            if not (source_attr and target_attr):
                continue
            try:
                fk = ForeignKey(source_entity, source_attr,
                                target_entity, target_attr)
            except SchemaError:
                continue
            source_ok = (source_entity in self._schema.entities
                         and self._schema.entity(source_entity)
                         .has_attribute(source_attr))
            target_ok = (target_entity in self._schema.entities
                         and self._schema.entity(target_entity)
                         .has_attribute(target_attr))
            if source_ok and target_ok \
                    and fk not in self._schema.foreign_keys:
                self._schema.add_foreign_key(fk)

    # -- traversal ---------------------------------------------------------

    def _walk_element(self, element: ET.Element,
                      parent_entity: str | None) -> None:
        name = element.get("name") or element.get("ref")
        if not name:
            raise ParseError("xs:element without name or ref")
        name = _local_type(name)
        type_attr = _local_type(element.get("type"))
        inline = element.find(f"{_XS}complexType")
        if inline is not None:
            self._build_entity(name, inline, parent_entity)
            return
        if type_attr in self._named_types:
            self._build_entity(name, self._named_types[type_attr],
                               parent_entity)
            return
        # Leaf element: belongs to the parent entity as an attribute.
        if parent_entity is None:
            # A top-level scalar element: model it as a 1-attribute entity
            # so it remains searchable.
            entity = Entity(name=name)
            entity.add_attribute(Attribute(name="value",
                                           data_type=type_attr or "string"))
            self._add_entity(entity)
            return
        self._add_attribute(parent_entity, name, type_attr or "string")

    def _build_entity(self, name: str, complex_type: ET.Element,
                      parent_entity: str | None) -> None:
        if name in self._visiting:
            # Recursive type (e.g. a tree); record containment and stop.
            if parent_entity:
                self._containments.append((parent_entity, name))
            return
        if name in self._schema.entities:
            if parent_entity:
                self._containments.append((parent_entity, name))
            return
        self._visiting.add(name)
        try:
            entity = Entity(name=name,
                            description=self._documentation(complex_type))
            self._add_entity(entity)
            if parent_entity:
                self._containments.append((parent_entity, name))
            for attr_node in complex_type.findall(f"{_XS}attribute"):
                attr_name = attr_node.get("name")
                if attr_name:
                    self._add_attribute(
                        name, attr_name,
                        _local_type(attr_node.get("type")) or "string")
            for group_tag in ("sequence", "all", "choice"):
                for group in complex_type.findall(f"{_XS}{group_tag}"):
                    self._walk_group(group, name)
        finally:
            self._visiting.discard(name)

    def _walk_group(self, group: ET.Element, entity_name: str) -> None:
        for child in group:
            if child.tag == f"{_XS}element":
                self._walk_element(child, parent_entity=entity_name)
            elif child.tag in (f"{_XS}sequence", f"{_XS}all", f"{_XS}choice"):
                self._walk_group(child, entity_name)

    @staticmethod
    def _documentation(node: ET.Element) -> str:
        doc = node.find(f"{_XS}annotation/{_XS}documentation")
        if doc is not None and doc.text:
            return " ".join(doc.text.split())
        return ""

    # -- model assembly ----------------------------------------------------

    def _add_entity(self, entity: Entity) -> None:
        if entity.name not in self._schema.entities:
            self._schema.add_entity(entity)

    def _add_attribute(self, entity_name: str, attr_name: str,
                       data_type: str) -> None:
        entity = self._schema.entity(entity_name)
        if not entity.has_attribute(attr_name):
            entity.add_attribute(Attribute(name=attr_name,
                                           data_type=data_type))

    def _link(self, parent: str, child: str) -> None:
        """Normalize containment: ``child.<parent>_id -> parent.id``."""
        if parent == child:
            return
        parent_entity = self._schema.entity(parent)
        child_entity = self._schema.entity(child)
        if not parent_entity.has_attribute("id"):
            parent_entity.add_attribute(Attribute(
                name="id", data_type="ID",
                description=SYNTHETIC_KEY_NOTE, primary_key=True,
                nullable=False))
        ref_name = f"{parent}_id"
        if not child_entity.has_attribute(ref_name):
            child_entity.add_attribute(Attribute(
                name=ref_name, data_type="ID",
                description=SYNTHETIC_KEY_NOTE))
        fk = ForeignKey(source_entity=child, source_attribute=ref_name,
                        target_entity=parent, target_attribute="id")
        if fk not in self._schema.foreign_keys:
            self._schema.add_foreign_key(fk)


def parse_xsd(text: str, schema_name: str = "xsd_schema") -> Schema:
    """Parse XSD text into a :class:`Schema`.

    Raises :class:`ParseError` on malformed XML or when the document is
    not an XSD.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ParseError(f"malformed XML: {exc}") from exc
    return _XsdParser(root, schema_name).parse()
