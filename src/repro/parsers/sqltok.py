"""A small SQL tokenizer for the DDL parser.

Handles bare and quoted identifiers (``"x"``, `` `x` ``, ``[x]``),
numbers, single-quoted strings, punctuation, and both comment styles
(``-- ...`` and ``/* ... */``).  Keywords are recognized by the parser,
not the tokenizer, so identifiers that collide with keywords still work
as column names where the grammar allows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, *keywords: str) -> bool:
        """Case-insensitive keyword test; only meaningful for IDENT."""
        return (self.type is TokenType.IDENT
                and self.value.upper() in keywords)


_PUNCT_CHARS = set("(),;.*=<>+-/")
_QUOTE_PAIRS = {'"': '"', "`": "`", "[": "]"}


def tokenize_sql(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`ParseError` on malformed input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)

    def column(pos: int) -> int:
        return pos - line_start + 1

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        # line comment
        if ch == "-" and text[i:i + 2] == "--":
            end = text.find("\n", i)
            i = n if end == -1 else end
            continue
        # block comment
        if ch == "/" and text[i:i + 2] == "/*":
            end = text.find("*/", i + 2)
            if end == -1:
                raise ParseError("unterminated block comment",
                                 line=line, column=column(i))
            line += text.count("\n", i, end)
            i = end + 2
            continue
        # quoted identifier
        if ch in _QUOTE_PAIRS:
            closing = _QUOTE_PAIRS[ch]
            end = text.find(closing, i + 1)
            if end == -1:
                raise ParseError(f"unterminated quoted identifier {ch}...",
                                 line=line, column=column(i))
            tokens.append(Token(TokenType.IDENT, text[i + 1:end],
                                line, column(i)))
            i = end + 1
            continue
        # string literal (doubled '' escapes)
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                end = text.find("'", j)
                if end == -1:
                    raise ParseError("unterminated string literal",
                                     line=line, column=column(i))
                parts.append(text[j:end])
                if text[end:end + 2] == "''":
                    parts.append("'")
                    j = end + 2
                    continue
                j = end + 1
                break
            tokens.append(Token(TokenType.STRING, "".join(parts),
                                line, column(i)))
            line += text.count("\n", i, j)
            i = j
            continue
        # number
        if ch.isdigit():
            j = i
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token(TokenType.NUMBER, text[i:j], line, column(i)))
            i = j
            continue
        # identifier / keyword
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_$"):
                j += 1
            tokens.append(Token(TokenType.IDENT, text[i:j], line, column(i)))
            i = j
            continue
        if ch in _PUNCT_CHARS:
            tokens.append(Token(TokenType.PUNCT, ch, line, column(i)))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}",
                         line=line, column=column(i))
    tokens.append(Token(TokenType.EOF, "", line, column(i)))
    return tokens
