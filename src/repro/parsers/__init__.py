"""Parsers: DDL, XSD and WebTable sources into the schema model, plus the
query parser that builds query graphs from mixed user input.

Supported inputs mirror the paper: "A partially designed schema can be
specified by uploading a DDL (Data Definition Language) or XSD (XML
Schema Definition)", and the corpus itself comes from WebTables-style
header rows.
"""

from repro.parsers.ddl import parse_ddl
from repro.parsers.query_parser import detect_format, parse_query
from repro.parsers.webtable import schema_from_webtable
from repro.parsers.xsd import parse_xsd

__all__ = [
    "detect_format",
    "parse_ddl",
    "parse_query",
    "parse_xsd",
    "schema_from_webtable",
]
