"""Recursive-descent parser for a practical subset of SQL DDL.

Supported grammar (enough for real CREATE TABLE dumps and the query
fragments users paste into Schemr):

* ``CREATE TABLE [IF NOT EXISTS] [schema.]name ( ... );``
* column definitions with multi-word types (``DOUBLE PRECISION``),
  type parameters (``VARCHAR(100)``, ``DECIMAL(5,2)``) and the column
  constraints ``PRIMARY KEY``, ``NOT NULL``, ``NULL``, ``UNIQUE``,
  ``DEFAULT <literal>``, ``REFERENCES t(c)``, ``CHECK (...)``
* table constraints: ``PRIMARY KEY (...)``, ``UNIQUE (...)``,
  ``FOREIGN KEY (c) REFERENCES t(c)``, ``CONSTRAINT name <constraint>``,
  ``CHECK (...)``
* any number of statements per input; non-CREATE statements are skipped.

Everything parsed lands in the :mod:`repro.model` classes; foreign keys
whose target table is not part of the same input are dropped with a
warning list rather than failing, because query fragments are partial
by nature.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParseError, SchemaError
from repro.model.elements import Attribute, Entity, ForeignKey
from repro.model.schema import Schema
from repro.parsers.sqltok import Token, TokenType, tokenize_sql

_COLUMN_CONSTRAINT_STARTERS = (
    "PRIMARY", "NOT", "NULL", "UNIQUE", "DEFAULT", "REFERENCES", "CHECK",
    "AUTO_INCREMENT", "AUTOINCREMENT", "COLLATE",
)
_TABLE_CONSTRAINT_STARTERS = ("PRIMARY", "UNIQUE", "FOREIGN", "CONSTRAINT",
                              "CHECK", "KEY", "INDEX")


@dataclass(slots=True)
class _PendingForeignKey:
    source_entity: str
    source_attribute: str
    target_entity: str
    target_attribute: str


@dataclass(slots=True)
class DdlParseResult:
    """Parsed schema plus foreign keys that referenced absent tables."""

    schema: Schema
    dangling_foreign_keys: list[str] = field(default_factory=list)


class _DdlParser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- cursor helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[i]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect_punct(self, value: str) -> Token:
        token = self._advance()
        if token.type is not TokenType.PUNCT or token.value != value:
            raise ParseError(f"expected {value!r}, found {token.value!r}",
                             line=token.line, column=token.column)
        return token

    def _expect_keyword(self, *keywords: str) -> Token:
        token = self._advance()
        if not token.is_keyword(*keywords):
            raise ParseError(
                f"expected {'/'.join(keywords)}, found {token.value!r}",
                line=token.line, column=token.column)
        return token

    def _expect_ident(self) -> Token:
        token = self._advance()
        if token.type is not TokenType.IDENT:
            raise ParseError(f"expected identifier, found {token.value!r}",
                             line=token.line, column=token.column)
        return token

    def _at_punct(self, value: str) -> bool:
        token = self._peek()
        return token.type is TokenType.PUNCT and token.value == value

    def _skip_parenthesized(self) -> None:
        """Consume a balanced ``( ... )`` group (CHECK bodies etc.)."""
        self._expect_punct("(")
        depth = 1
        while depth:
            token = self._advance()
            if token.type is TokenType.EOF:
                raise ParseError("unbalanced parentheses",
                                 line=token.line, column=token.column)
            if token.type is TokenType.PUNCT:
                if token.value == "(":
                    depth += 1
                elif token.value == ")":
                    depth -= 1

    def _skip_statement(self) -> None:
        """Consume tokens up to and including the next top-level ';'."""
        while True:
            token = self._advance()
            if token.type is TokenType.EOF:
                return
            if token.type is TokenType.PUNCT and token.value == ";":
                return

    # -- grammar -----------------------------------------------------------

    def parse(self, schema_name: str) -> DdlParseResult:
        schema = Schema(name=schema_name, source="ddl")
        pending_fks: list[_PendingForeignKey] = []
        while self._peek().type is not TokenType.EOF:
            token = self._peek()
            if token.is_keyword("CREATE") and self._peek(1).is_keyword("TABLE"):
                entity, fks = self._parse_create_table()
                try:
                    schema.add_entity(entity)
                except SchemaError:
                    # Re-declared table: keep the first definition, as a
                    # dump with duplicates usually repeats identical DDL.
                    pass
                else:
                    pending_fks.extend(fks)
            else:
                self._skip_statement()
        dangling: list[str] = []
        for fk in pending_fks:
            self._attach_foreign_key(schema, fk, dangling)
        return DdlParseResult(schema=schema, dangling_foreign_keys=dangling)

    @staticmethod
    def _attach_foreign_key(schema: Schema, fk: _PendingForeignKey,
                            dangling: list[str]) -> None:
        description = (f"{fk.source_entity}.{fk.source_attribute} -> "
                       f"{fk.target_entity}.{fk.target_attribute}")
        target = schema.entities.get(fk.target_entity)
        if target is None:
            dangling.append(description)
            return
        # REFERENCES t  (no column) defaults to t's primary key, else its
        # first attribute.
        target_attribute = fk.target_attribute
        if not target_attribute:
            pk = [a.name for a in target.attributes if a.primary_key]
            if pk:
                target_attribute = pk[0]
            elif target.attributes:
                target_attribute = target.attributes[0].name
            else:
                dangling.append(description)
                return
        if not target.has_attribute(target_attribute):
            dangling.append(description)
            return
        schema.add_foreign_key(ForeignKey(
            source_entity=fk.source_entity,
            source_attribute=fk.source_attribute,
            target_entity=fk.target_entity,
            target_attribute=target_attribute,
        ))

    def _parse_create_table(self) -> tuple[Entity, list[_PendingForeignKey]]:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        if self._peek().is_keyword("IF"):
            self._advance()
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
        name = self._expect_ident().value
        if self._at_punct("."):  # schema-qualified: keep the table part
            self._advance()
            name = self._expect_ident().value
        entity = Entity(name=name)
        fks: list[_PendingForeignKey] = []
        self._expect_punct("(")
        while True:
            token = self._peek()
            if token.is_keyword(*_TABLE_CONSTRAINT_STARTERS):
                self._parse_table_constraint(entity, fks)
            else:
                self._parse_column(entity, fks)
            if self._at_punct(","):
                self._advance()
                continue
            break
        self._expect_punct(")")
        # trailing table options (ENGINE=..., etc.) up to ';'
        self._skip_statement_tail()
        return entity, fks

    def _skip_statement_tail(self) -> None:
        while True:
            token = self._peek()
            if token.type is TokenType.EOF:
                return
            if token.type is TokenType.PUNCT and token.value == ";":
                self._advance()
                return
            self._advance()

    def _parse_column(self, entity: Entity,
                      fks: list[_PendingForeignKey]) -> None:
        name_token = self._expect_ident()
        attribute = Attribute(name=name_token.value,
                              data_type=self._parse_type())
        while True:
            token = self._peek()
            if token.type is TokenType.PUNCT and token.value in (",", ")"):
                break
            if token.type is TokenType.EOF:
                break
            if token.is_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                attribute.primary_key = True
                attribute.nullable = False
            elif token.is_keyword("NOT"):
                self._advance()
                self._expect_keyword("NULL")
                attribute.nullable = False
            elif token.is_keyword("NULL"):
                self._advance()
                attribute.nullable = True
            elif token.is_keyword("UNIQUE", "AUTO_INCREMENT",
                                  "AUTOINCREMENT"):
                self._advance()
            elif token.is_keyword("COLLATE"):
                self._advance()
                self._advance()  # collation name
            elif token.is_keyword("DEFAULT"):
                self._advance()
                self._parse_default_value()
            elif token.is_keyword("CHECK"):
                self._advance()
                self._skip_parenthesized()
            elif token.is_keyword("REFERENCES"):
                self._advance()
                target, target_attr = self._parse_references_target()
                fks.append(_PendingForeignKey(
                    source_entity=entity.name,
                    source_attribute=attribute.name,
                    target_entity=target,
                    target_attribute=target_attr,
                ))
            elif token.is_keyword("CONSTRAINT"):
                self._advance()
                self._advance()  # constraint name; the constraint itself
                # follows and is handled by the next loop turn.
            else:
                raise ParseError(
                    f"unexpected token {token.value!r} in column definition",
                    line=token.line, column=token.column)
        entity.add_attribute(attribute)

    def _parse_default_value(self) -> None:
        token = self._advance()
        if token.type is TokenType.IDENT and self._at_punct("("):
            self._skip_parenthesized()  # DEFAULT now() and friends
        elif token.type is TokenType.PUNCT and token.value == "-":
            self._advance()  # negative numeric default

    def _parse_type(self) -> str:
        """Type name, possibly multi-word, with optional parameters."""
        token = self._peek()
        if token.type is not TokenType.IDENT or token.is_keyword(
                *_COLUMN_CONSTRAINT_STARTERS):
            return ""  # typeless column (SQLite allows this)
        parts = [self._advance().value]
        # multi-word types: DOUBLE PRECISION, CHARACTER VARYING, ...
        follow = self._peek()
        if follow.is_keyword("PRECISION", "VARYING"):
            parts.append(self._advance().value)
        type_name = " ".join(parts)
        if self._at_punct("("):
            self._advance()
            params: list[str] = []
            while not self._at_punct(")"):
                token = self._advance()
                if token.type is TokenType.EOF:
                    raise ParseError("unterminated type parameters",
                                     line=token.line, column=token.column)
                if not (token.type is TokenType.PUNCT and token.value == ","):
                    params.append(token.value)
            self._advance()  # ')'
            type_name = f"{type_name}({','.join(params)})"
        return type_name

    def _parse_table_constraint(self, entity: Entity,
                                fks: list[_PendingForeignKey]) -> None:
        token = self._peek()
        if token.is_keyword("CONSTRAINT"):
            self._advance()
            self._expect_ident()  # constraint name
            token = self._peek()
        if token.is_keyword("PRIMARY"):
            self._advance()
            self._expect_keyword("KEY")
            for column in self._parse_column_list():
                if entity.has_attribute(column):
                    attr = entity.attribute(column)
                    attr.primary_key = True
                    attr.nullable = False
        elif token.is_keyword("UNIQUE", "KEY", "INDEX"):
            self._advance()
            if self._peek().type is TokenType.IDENT:
                self._advance()  # optional index name
            self._parse_column_list()
        elif token.is_keyword("CHECK"):
            self._advance()
            self._skip_parenthesized()
        elif token.is_keyword("FOREIGN"):
            self._advance()
            self._expect_keyword("KEY")
            columns = self._parse_column_list()
            self._expect_keyword("REFERENCES")
            target, target_attr = self._parse_references_target()
            for column in columns:
                fks.append(_PendingForeignKey(
                    source_entity=entity.name,
                    source_attribute=column,
                    target_entity=target,
                    target_attribute=target_attr,
                ))
        else:
            raise ParseError(
                f"unexpected token {token.value!r} in table constraint",
                line=token.line, column=token.column)

    def _parse_column_list(self) -> list[str]:
        self._expect_punct("(")
        columns = [self._expect_ident().value]
        while self._at_punct(","):
            self._advance()
            columns.append(self._expect_ident().value)
        self._expect_punct(")")
        return columns

    def _parse_references_target(self) -> tuple[str, str]:
        target = self._expect_ident().value
        if self._at_punct("."):
            self._advance()
            target = self._expect_ident().value
        target_attr = ""
        if self._at_punct("("):
            columns = self._parse_column_list()
            target_attr = columns[0]
        # ON DELETE/UPDATE actions
        while self._peek().is_keyword("ON"):
            self._advance()
            self._expect_keyword("DELETE", "UPDATE")
            action = self._advance()
            if action.is_keyword("NO", "SET"):
                self._advance()  # ACTION / NULL / DEFAULT
        return target, target_attr


def parse_ddl(text: str, schema_name: str = "ddl_schema") -> Schema:
    """Parse DDL text into a :class:`Schema`.

    Raises :class:`ParseError` for malformed input or when no CREATE
    TABLE statement is present.  See :func:`parse_ddl_result` for the
    variant that also reports dangling foreign keys.
    """
    return parse_ddl_result(text, schema_name).schema


def parse_ddl_result(text: str,
                     schema_name: str = "ddl_schema") -> DdlParseResult:
    """Parse DDL and return the schema plus dangling-FK diagnostics."""
    result = _DdlParser(tokenize_sql(text)).parse(schema_name)
    if not result.schema.entities:
        raise ParseError("input contains no CREATE TABLE statement")
    return result
