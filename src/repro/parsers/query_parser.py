"""Query parsing: user input -> :class:`~repro.model.query.QueryGraph`.

"Prior to executing a search, the query parser creates a query-graph
from the keyword terms and schema fragments given by user input."

Users supply any mix of plain keywords and pasted/uploaded fragments;
fragment format (DDL vs XSD) is auto-detected.
"""

from __future__ import annotations

from repro.errors import ParseError, QueryError
from repro.model.query import QueryGraph
from repro.model.schema import Schema
from repro.parsers.ddl import parse_ddl
from repro.parsers.xsd import parse_xsd


def detect_format(text: str) -> str:
    """Best-effort fragment format sniffing: ``"ddl"``, ``"xsd"`` or
    ``"keywords"``."""
    stripped = text.strip()
    if not stripped:
        return "keywords"
    lowered = stripped.lower()
    if stripped.startswith("<") and ("schema" in lowered
                                     or "element" in lowered):
        return "xsd"
    if "create" in lowered and "table" in lowered:
        return "ddl"
    return "keywords"


def parse_fragment(text: str, name: str = "query_fragment") -> Schema:
    """Parse one fragment, dispatching on the detected format."""
    fmt = detect_format(text)
    if fmt == "xsd":
        return parse_xsd(text, schema_name=name)
    if fmt == "ddl":
        return parse_ddl(text, schema_name=name)
    raise ParseError(
        "fragment is neither DDL (CREATE TABLE ...) nor XSD (<xs:schema>)")


def parse_query(keywords: str | list[str] | None = None,
                fragment: "str | Schema | list[str | Schema] | None" = None
                ) -> QueryGraph:
    """Build the query graph from raw user input.

    ``keywords`` may be one comma/whitespace-separated string or an
    already-split list.  ``fragment`` may be raw DDL/XSD text, an
    in-memory :class:`Schema` (e.g. from a schema editor integration),
    or a list mixing both — the query graph is a *forest*, so several
    fragments are first-class.  Raises :class:`QueryError` when
    everything is empty.
    """
    graph = QueryGraph()
    for word in _split_keywords(keywords):
        graph.add_keyword(word)
    fragments: list[str | Schema]
    if fragment is None:
        fragments = []
    elif isinstance(fragment, list):
        fragments = fragment
    else:
        fragments = [fragment]
    for index, item in enumerate(fragments):
        if isinstance(item, Schema):
            graph.add_fragment(item)
        elif item.strip():
            name = ("query_fragment" if len(fragments) == 1
                    else f"query_fragment_{index}")
            graph.add_fragment(parse_fragment(item, name=name))
    if graph.is_empty():
        raise QueryError("query needs at least one keyword or fragment")
    return graph


def _split_keywords(keywords: str | list[str] | None) -> list[str]:
    if keywords is None:
        return []
    if isinstance(keywords, str):
        pieces = keywords.replace(",", " ").split()
    else:
        pieces = [k for raw in keywords for k in raw.replace(",", " ").split()]
    return [piece for piece in pieces if piece]
