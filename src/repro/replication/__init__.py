"""Primary/replica segment shipping (replicated serving tier).

Read traffic dominates writes in a schema repository, so the scale-out
and survive-a-host step is classic segment-shipping replication:

* :mod:`~repro.replication.manifest` — the wire description of a
  primary's *committed* segment state (flat or sharded), with
  per-segment ``bytes``/``crc32``;
* :mod:`~repro.replication.source` — where a replica pulls from:
  :class:`HttpSource` (a primary's ``/replication/*`` endpoints,
  range-resumable) or :class:`DirectorySource` (a local path — powers
  ``schemr replicate`` and the deterministic crash-injection sweep);
* :mod:`~repro.replication.replica` — :class:`ReplicaSyncer`, the
  pull → verify → atomic-commit → hot-swap loop, with
  ``schemr_replica_lag_*`` metrics and the ``/readyz`` lag gate.

The client half of the story — multi-endpoint failover preferring the
primary, falling back to the freshest replica — lives in
:class:`repro.service.client.SchemrClient`, which reads the served
generation each response stamps so staleness is observable end to end.
"""

from repro.replication.manifest import (
    REPLICATION_FORMAT,
    build_replication_manifest,
    valid_segment_ref,
    validate_replication_manifest,
)
from repro.replication.replica import (
    MANIFEST_RETRIES,
    ReplicaSyncer,
    SyncReport,
)
from repro.replication.source import (
    CHUNK_BYTES,
    DirectorySource,
    HttpSource,
    SegmentVanished,
)

__all__ = [
    "CHUNK_BYTES",
    "MANIFEST_RETRIES",
    "REPLICATION_FORMAT",
    "DirectorySource",
    "HttpSource",
    "ReplicaSyncer",
    "SegmentVanished",
    "SyncReport",
    "build_replication_manifest",
    "valid_segment_ref",
    "validate_replication_manifest",
]
