"""The replication manifest: one document describing committed state.

A primary answers ``/replication/manifest`` with a single JSON document
covering its whole segment layout — flat or sharded — built strictly
from the *committed* control files on disk::

    {"format": 1,
     "layout": "flat" | "sharded",
     "shards": null | N,
     "generation": <change-log cursor the layout durably reflects>,
     "dirs": [{"name": "",            # "" = the root itself (flat)
               "manifest": {...}},    # the dir's MANIFEST.json, verbatim
              {"name": "shard_0000", "manifest": {...}},
              ...]}

Shipping each directory's ``MANIFEST.json`` verbatim (with per-segment
``bytes``/``crc32``, computed here when a legacy manifest predates
them) means a replica can commit *exactly* the state the primary
committed: same segment files, same tombstones, same cursors.  Because
the primary's own commits are atomic renames, reading the control
files from disk — never from the live index object — guarantees the
manifest only ever describes a state that a crash-restarted primary
would itself serve.

``generation`` is the layout's ``last_change_id`` (the minimum across
shards for sharded layouts, matching
:attr:`~repro.index.segments.sharded.ShardedSegmentIndex.last_change_id`);
clients observe it stamped on search responses, so replica staleness
is visible, never silent.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import IndexError_
from repro.index.segments.directory import MANIFEST_NAME, SegmentDirectory
from repro.index.segments.format import file_crc32
from repro.index.segments.sharded import (
    SHARDS_NAME,
    detect_shard_count,
    shard_dir_name,
)

REPLICATION_FORMAT = 1

#: The only file names a replica will ever write from network input —
#: both sides validate against these, so a hostile or confused peer
#: cannot traverse outside the segment directory.
SEGMENT_NAME_RE = re.compile(r"^seg_\d{8}\.seg$")
SHARD_DIR_RE = re.compile(r"^shard_\d{4}$")


def valid_segment_ref(dirname: str, filename: str) -> bool:
    """True when ``dirname``/``filename`` is a safe segment reference."""
    if not SEGMENT_NAME_RE.match(filename):
        return False
    return dirname == "" or bool(SHARD_DIR_RE.match(dirname))


def _dir_manifest(path: Path) -> dict:
    """A directory's committed manifest with checksums guaranteed.

    Entries from manifests written before per-segment checksums get
    ``bytes``/``crc32`` computed here so the wire format is uniform.
    """
    manifest = SegmentDirectory(path).read_manifest()
    for entry in manifest["segments"]:
        if "bytes" not in entry or "crc32" not in entry:
            seg_path = path / entry["file"]
            entry["bytes"] = seg_path.stat().st_size
            entry["crc32"] = file_crc32(seg_path)
    return manifest


def build_replication_manifest(root: str | Path) -> dict:
    """Describe the committed state of ``root`` for replication."""
    root = Path(root)
    shards = detect_shard_count(root)
    if shards is None:
        if not (root / MANIFEST_NAME).exists():
            raise IndexError_(
                f"{root} is not a segment directory (no {MANIFEST_NAME} "
                f"or {SHARDS_NAME})")
        manifest = _dir_manifest(root)
        return {
            "format": REPLICATION_FORMAT,
            "layout": "flat",
            "shards": None,
            "generation": manifest.get("last_change_id", 0),
            "dirs": [{"name": "", "manifest": manifest}],
        }
    dirs = []
    for shard_id in range(shards):
        name = shard_dir_name(shard_id)
        dirs.append({"name": name, "manifest": _dir_manifest(root / name)})
    return {
        "format": REPLICATION_FORMAT,
        "layout": "sharded",
        "shards": shards,
        "generation": min((d["manifest"].get("last_change_id", 0)
                           for d in dirs), default=0),
        "dirs": dirs,
    }


def validate_replication_manifest(manifest: dict) -> None:
    """Reject a malformed or unsafe manifest before acting on it."""
    if manifest.get("format") != REPLICATION_FORMAT:
        raise IndexError_(
            f"unsupported replication manifest format "
            f"{manifest.get('format')!r}; expected {REPLICATION_FORMAT}")
    layout = manifest.get("layout")
    if layout not in ("flat", "sharded"):
        raise IndexError_(
            f"replication manifest has invalid layout {layout!r}")
    dirs = manifest.get("dirs")
    if not isinstance(dirs, list) or not dirs:
        raise IndexError_("replication manifest has no dirs")
    for entry in dirs:
        name = entry.get("name", "")
        dir_manifest = entry.get("manifest")
        if not isinstance(dir_manifest, dict) \
                or "segments" not in dir_manifest \
                or "next_id" not in dir_manifest:
            raise IndexError_(
                f"replication manifest dir {name!r} is malformed")
        for segment in dir_manifest["segments"]:
            filename = segment.get("file", "")
            if not valid_segment_ref(name, filename):
                raise IndexError_(
                    f"replication manifest names unsafe segment "
                    f"{name!r}/{filename!r}")
            if "bytes" not in segment or "crc32" not in segment:
                raise IndexError_(
                    f"replication manifest segment {filename} lacks "
                    f"bytes/crc32 checksums")
