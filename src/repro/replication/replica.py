"""The replica syncer: pull committed segments, verify, commit, swap.

:class:`ReplicaSyncer` turns a local segment directory into a faithful
follower of a primary's committed state:

1. fetch the primary's replication manifest (committed state only);
2. per directory, skip when the local manifest already matches;
   otherwise pull each missing segment file to ``<name>.tmp``
   (resuming from a partial tmp's byte offset), verify its size and
   CRC against the manifest, fsync, and rename into place;
3. commit the directory's manifest atomically — the same
   tmp+fsync+rename discipline the primary itself uses, so a crash at
   any point leaves the replica on its previous committed generation;
4. hot-swap the serving index via
   :meth:`~repro.index.segments.segmented.SegmentedIndex.reopen_from_disk`
   — per the PR 6 generation contract, a content change bumps the
   generation (caches invalidate) while a merge-only change keeps warm
   caches intact.

Because segment files are immutable and verified before commit, every
pull is idempotent and the syncer needs no coordination with the
primary beyond the manifest: a merge on the primary mid-pull surfaces
as :class:`~repro.replication.source.SegmentVanished`, and the syncer
simply refetches the manifest and replans (bounded retries).

Lag is tracked two ways, both exported through the metrics registry
when telemetry is attached: ``schemr_replica_lag_seconds`` (time since
the replica last confirmed itself in sync) and
``schemr_replica_lag_operations`` (change-log distance at the last
manifest fetch).  ``/readyz`` on a replica gates on the former.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import IndexError_, SchemrError, ServiceError
from repro.index.segments.directory import SegmentDirectory
from repro.index.segments.format import file_crc32
from repro.index.segments.sharded import (
    SHARDS_NAME,
    _write_shards_marker,
    detect_shard_count,
)
from repro.replication.manifest import validate_replication_manifest
from repro.replication.source import SegmentVanished
from repro.resilience.faults import FAULTS

logger = logging.getLogger(__name__)

#: How many times one sync cycle refetches the manifest when the
#: primary merges segments away mid-pull before giving up.
MANIFEST_RETRIES = 3


@dataclass
class SyncReport:
    """What one :meth:`ReplicaSyncer.sync_once` cycle did."""

    changed: bool = False
    pulled_segments: int = 0
    pulled_bytes: int = 0
    primary_generation: int = 0
    local_generation: int = 0
    dirs_updated: list[str] = field(default_factory=list)


class ReplicaSyncer:
    """Keeps a local segment directory caught up with a source."""

    def __init__(self, source, local_dir: str | Path, *,
                 index=None, telemetry=None,
                 poll_seconds: float = 1.0,
                 clock=time.monotonic) -> None:
        """``source`` speaks the protocol of
        :mod:`repro.replication.source`; ``index`` is the serving
        :class:`SegmentedIndex`/:class:`ShardedSegmentIndex` to
        hot-swap after commits (None for one-shot directory sync);
        ``clock`` is injectable for deterministic lag tests.
        """
        self._source = source
        self._root = Path(local_dir)
        self._index = index
        self._telemetry = telemetry
        self._poll_seconds = poll_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_sync: float | None = None
        self._primary_generation = 0
        self._local_generation = 0
        if telemetry is not None and telemetry.enabled:
            m = telemetry.metrics
            m.gauge("schemr_replica_lag_seconds",
                    "Seconds since the replica last confirmed sync",
                    callback=self.lag_seconds)
            m.gauge("schemr_replica_lag_operations",
                    "Change-log operations the replica trails by",
                    callback=lambda: float(self.lag_operations))
            m.gauge("schemr_replica_generation",
                    "Change-log cursor the replica serves",
                    callback=lambda: float(self._local_generation))

    def attach_index(self, index) -> None:
        """Adopt the serving index to hot-swap after future commits.

        Exists because a fresh replica's index can only be opened
        *after* the first sync creates the directory.
        """
        self._index = index

    # -- observability -----------------------------------------------------

    def lag_seconds(self) -> float:
        """Seconds since the last successful sync (inf before the
        first one — an unsynced replica is maximally stale)."""
        with self._lock:
            if self._last_sync is None:
                return float("inf")
            return max(0.0, self._clock() - self._last_sync)

    @property
    def lag_operations(self) -> int:
        """Change-log distance to the primary at the last manifest
        fetch (0 right after a successful sync)."""
        with self._lock:
            return max(0, self._primary_generation
                       - self._local_generation)

    @property
    def generation(self) -> int:
        """The change-log cursor the local directory durably reflects."""
        with self._lock:
            return self._local_generation

    def is_ready(self, max_lag_seconds: float) -> bool:
        """The ``/readyz`` gate: synced at least once, within lag."""
        return self.lag_seconds() <= max_lag_seconds

    def _count_sync(self, outcome: str) -> None:
        if self._telemetry is not None and self._telemetry.enabled:
            self._telemetry.metrics.counter(
                "schemr_replica_syncs_total",
                "Replica sync cycles by outcome", outcome=outcome).inc()

    # -- one sync cycle ----------------------------------------------------

    def sync_once(self) -> SyncReport:
        """Pull the primary's committed state; returns what changed.

        Raises :class:`~repro.errors.ServiceError` when the primary is
        unreachable or keeps yanking segments faster than we can pull
        (pathological merge churn), and propagates verification
        failures — the poll loop counts those and tries again.
        """
        try:
            return self._sync_cycle()
        except SchemrError:
            self._count_sync("error")
            raise

    def _sync_cycle(self) -> SyncReport:
        last: SegmentVanished | None = None
        for _ in range(MANIFEST_RETRIES):
            manifest = self._source.fetch_manifest()
            validate_replication_manifest(manifest)
            try:
                report = self._apply(manifest)
            except SegmentVanished as exc:
                last = exc
                continue
            with self._lock:
                self._last_sync = self._clock()
                self._primary_generation = report.primary_generation
                self._local_generation = report.local_generation
            self._count_sync("changed" if report.changed else "unchanged")
            if self._telemetry is not None and self._telemetry.enabled \
                    and report.pulled_segments:
                m = self._telemetry.metrics
                m.counter("schemr_replica_pulled_segments_total",
                          "Segment files pulled from the primary"
                          ).inc(report.pulled_segments)
                m.counter("schemr_replica_pulled_bytes_total",
                          "Segment bytes pulled from the primary"
                          ).inc(report.pulled_bytes)
            return report
        raise ServiceError(
            f"primary merged segments away {MANIFEST_RETRIES} times "
            f"mid-pull; giving up this cycle: {last}")

    def _apply(self, manifest: dict) -> SyncReport:
        report = SyncReport(primary_generation=manifest.get(
            "generation", 0))
        self._root.mkdir(parents=True, exist_ok=True)
        self._check_layout(manifest)
        cursors = []
        for entry in manifest["dirs"]:
            name = entry["name"]
            remote = entry["manifest"]
            cursors.append(remote.get("last_change_id", 0))
            dirpath = self._root / name if name else self._root
            if self._dir_current(dirpath, remote):
                continue
            dirpath.mkdir(parents=True, exist_ok=True)
            for segment in remote["segments"]:
                self._pull_segment(name, segment, dirpath, report)
            # Crash-injection site: every segment file for this
            # directory is verified and in place; the local manifest
            # still commits the previous generation.
            FAULTS.hit("replication.pull.pre_commit")
            SegmentDirectory(dirpath).write_manifest(
                next_id=remote["next_id"],
                last_change_id=remote.get("last_change_id", 0),
                segments=remote["segments"])
            report.dirs_updated.append(name or ".")
        report.local_generation = min(cursors, default=0)
        if self._index is not None and report.dirs_updated:
            report.changed = self._index.reopen_from_disk()
        elif report.dirs_updated:
            report.changed = True
        return report

    def _check_layout(self, manifest: dict) -> None:
        local_shards = detect_shard_count(self._root)
        if manifest["layout"] == "sharded":
            if (self._root / "MANIFEST.json").exists():
                raise IndexError_(
                    f"{self._root} is a flat segment directory; cannot "
                    f"replicate a sharded primary into it")
            if local_shards is None:
                _write_shards_marker(self._root / SHARDS_NAME,
                                     manifest["shards"])
            elif local_shards != manifest["shards"]:
                raise IndexError_(
                    f"{self._root} has {local_shards} shard(s) but the "
                    f"primary has {manifest['shards']}; doc-id routing "
                    f"would diverge")
        elif local_shards is not None:
            raise IndexError_(
                f"{self._root} is a sharded layout; cannot replicate a "
                f"flat primary into it")

    def _dir_current(self, dirpath: Path, remote: dict) -> bool:
        """True when the local committed manifest already matches."""
        directory = SegmentDirectory(dirpath)
        if not directory.manifest_path.exists():
            return False
        try:
            local = directory.read_manifest()
        except SchemrError:
            return False  # torn local manifest: re-pull and recommit
        return (local.get("last_change_id", 0)
                == remote.get("last_change_id", 0)
                and local["next_id"] == remote["next_id"]
                and _entries_key(local["segments"])
                == _entries_key(remote["segments"]))

    def _pull_segment(self, dirname: str, segment: dict, dirpath: Path,
                      report: SyncReport) -> None:
        path = dirpath / segment["file"]
        if path.exists() and path.stat().st_size == segment["bytes"]:
            # Immutable and was CRC-verified when it first landed
            # (either by a previous pull or by the primary's writer).
            return
        tmp = path.with_suffix(path.suffix + ".tmp")
        offset = tmp.stat().st_size if tmp.exists() else 0
        if offset > segment["bytes"]:
            tmp.unlink()  # stale tmp from an older generation's file
            offset = 0
        if offset < segment["bytes"]:
            with open(tmp, "ab") as handle:
                for block in self._source.segment_chunks(
                        dirname, segment["file"], offset):
                    handle.write(block)
                    # Crash-injection site: a torn pull leaves a
                    # partial ``.tmp`` the next cycle resumes from.
                    FAULTS.hit("replication.pull.chunk")
                handle.flush()
                os.fsync(handle.fileno())
        size = tmp.stat().st_size
        if size != segment["bytes"] or file_crc32(tmp) != segment["crc32"]:
            tmp.unlink()
            raise ServiceError(
                f"pulled segment {segment['file']} failed verification "
                f"(got {size} bytes; expected {segment['bytes']}); "
                f"discarded for re-pull")
        # Crash-injection site: the segment is verified and durable
        # under its tmp name but not yet visible at its final path.
        FAULTS.hit("replication.pull.pre_rename")
        tmp.replace(path)
        report.pulled_segments += 1
        report.pulled_bytes += segment["bytes"]

    # -- poll loop ---------------------------------------------------------

    def run(self) -> None:
        """Poll until :meth:`stop`; errors are counted, never fatal."""
        while not self._stop.is_set():
            try:
                self.sync_once()
            except SchemrError as exc:
                logger.warning("replica sync failed: %s", exc)
            self._stop.wait(self._poll_seconds)

    def start(self) -> None:
        """Run the poll loop on a daemon thread."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self.run,
                                        name="schemr-replica-sync",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
            self._thread = None


def _entries_key(segments: list[dict]) -> list[tuple]:
    return [(entry["file"], tuple(sorted(entry.get("deleted", ()))),
             entry.get("bytes"), entry.get("crc32"))
            for entry in segments]
