"""Where a replica pulls from: HTTP primary or local directory.

Both sources speak the same tiny protocol the
:class:`~repro.replication.replica.ReplicaSyncer` consumes:

* ``fetch_manifest()`` — the primary's replication manifest
  (:mod:`repro.replication.manifest`), describing committed state only;
* ``segment_chunks(dirname, filename, offset)`` — the bytes of one
  immutable segment file from ``offset`` onward, streamed in chunks so
  an interrupted pull resumes from its partial ``.tmp`` instead of
  restarting.

:class:`HttpSource` is production (``/replication/*`` endpoints with a
``Range`` header); :class:`DirectorySource` serves the same protocol
straight off a local segment directory — it powers ``schemr replicate``
between paths, the crash-injection recovery sweep (no sockets, fully
deterministic), and the server side of the manifest endpoint.

Segment files are immutable and content-addressed by the manifest's
``bytes``/``crc32``, so a source never needs conditional requests:
whatever arrives is verified against the manifest before commit.

:class:`SegmentVanished` is the one retriable protocol error: the
primary merged between our manifest fetch and segment pull and the
file is gone.  The syncer refetches the manifest and replans.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from pathlib import Path
from typing import Iterator

from repro.errors import SchemrError, ServiceError
from repro.replication.manifest import (
    build_replication_manifest,
    valid_segment_ref,
)

#: Stream granularity for segment pulls; also the resume granularity —
#: a torn pull wastes at most one chunk.
CHUNK_BYTES = 1 << 20


class SegmentVanished(SchemrError):
    """The primary no longer has this segment (merged away mid-pull).

    Not an error condition — the syncer refetches the manifest and
    pulls the post-merge state instead.
    """


class DirectorySource:
    """The replication protocol served from a local segment directory."""

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)

    def fetch_manifest(self) -> dict:
        return build_replication_manifest(self._root)

    def segment_chunks(self, dirname: str, filename: str,
                       offset: int = 0) -> Iterator[bytes]:
        if not valid_segment_ref(dirname, filename):
            raise ServiceError(
                f"invalid segment reference {dirname!r}/{filename!r}")
        path = self._root / dirname / filename if dirname \
            else self._root / filename
        try:
            handle = open(path, "rb")
        except FileNotFoundError as exc:
            raise SegmentVanished(f"{path} is gone (merged away)") from exc
        with handle:
            handle.seek(offset)
            while True:
                block = handle.read(CHUNK_BYTES)
                if not block:
                    return
                yield block

    def close(self) -> None:
        pass


class HttpSource:
    """The replication protocol over a primary's ``/replication/*``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout

    def fetch_manifest(self) -> dict:
        url = f"{self._base_url}/replication/manifest"
        try:
            with urllib.request.urlopen(
                    url, timeout=self._timeout) as response:
                payload = response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", errors="replace")
            raise ServiceError(
                f"primary returned {exc.code} for /replication/manifest: "
                f"{detail}", status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach primary at {url}: {exc.reason}") from exc
        try:
            return json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"primary sent malformed manifest JSON: {exc}") from exc

    def segment_chunks(self, dirname: str, filename: str,
                       offset: int = 0) -> Iterator[bytes]:
        if not valid_segment_ref(dirname, filename):
            raise ServiceError(
                f"invalid segment reference {dirname!r}/{filename!r}")
        name = f"{dirname}/{filename}" if dirname else filename
        url = f"{self._base_url}/replication/segment/{name}"
        request = urllib.request.Request(url)
        if offset:
            request.add_header("Range", f"bytes={offset}-")
        try:
            response = urllib.request.urlopen(request,
                                              timeout=self._timeout)
        except urllib.error.HTTPError as exc:
            exc.read()
            if exc.code == 404:
                raise SegmentVanished(
                    f"primary no longer has {name} (merged away)") from exc
            raise ServiceError(
                f"primary returned {exc.code} for segment {name}",
                status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach primary at {url}: {exc.reason}") from exc
        with response:
            if offset and response.status != 206:
                # The primary ignored the Range header; the caller asked
                # for a suffix, so skip what it already has.
                skip = offset
                while skip > 0:
                    block = response.read(min(CHUNK_BYTES, skip))
                    if not block:
                        return
                    skip -= len(block)
            while True:
                block = response.read(CHUNK_BYTES)
                if not block:
                    return
                yield block

    def close(self) -> None:
        pass
