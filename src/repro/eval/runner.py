"""The experiment runner: query sets through an engine, metrics out."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.engine import SchemrEngine
from repro.corpus.groundtruth import GroundTruthQuery
from repro.errors import SchemrError
from repro.eval.metrics import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)


@dataclass(slots=True)
class EvaluationReport:
    """Mean metrics over one query set for one engine configuration."""

    label: str
    query_count: int
    precision_at_5: float
    precision_at_10: float
    recall_at_10: float
    mrr: float
    map_score: float
    ndcg_at_10: float

    def row(self) -> str:
        """One fixed-width report line (header via :meth:`header`)."""
        return (f"{self.label:<24} {self.query_count:>4} "
                f"{self.precision_at_5:>7.3f} {self.precision_at_10:>7.3f} "
                f"{self.recall_at_10:>7.3f} {self.mrr:>7.3f} "
                f"{self.map_score:>7.3f} {self.ndcg_at_10:>8.3f}")

    @staticmethod
    def header() -> str:
        return (f"{'configuration':<24} {'q':>4} {'P@5':>7} {'P@10':>7} "
                f"{'R@10':>7} {'MRR':>7} {'MAP':>7} {'NDCG@10':>8}")


#: (keywords, top_n) -> ranked schema ids, best first.
RankingFunction = Callable[[list[str], int], list[int]]


def evaluate_ranker(rank: RankingFunction,
                    queries: list[GroundTruthQuery],
                    label: str = "ranker",
                    top_n: int = 10,
                    exact_only: bool = True) -> EvaluationReport:
    """Evaluate any ranking function (baselines included).

    ``rank(keywords, top_n)`` must return schema ids, best first.
    ``exact_only`` scores against grade-2 (same template) ids for the
    binary metrics; NDCG always uses the full grade map.
    """
    if not queries:
        raise SchemrError("cannot evaluate an empty query set")
    p5 = p10 = r10 = mrr = ap = ndcg = 0.0
    for query in queries:
        ranking = rank(query.keywords, top_n)
        relevant = query.exact_ids if exact_only else query.relevant_ids
        p5 += precision_at_k(ranking, relevant, 5)
        p10 += precision_at_k(ranking, relevant, 10)
        r10 += recall_at_k(ranking, relevant, 10)
        mrr += reciprocal_rank(ranking, relevant)
        ap += average_precision(ranking, relevant)
        ndcg += ndcg_at_k(ranking, query.relevance, 10)
    n = len(queries)
    return EvaluationReport(
        label=label,
        query_count=n,
        precision_at_5=p5 / n,
        precision_at_10=p10 / n,
        recall_at_10=r10 / n,
        mrr=mrr / n,
        map_score=ap / n,
        ndcg_at_10=ndcg / n,
    )


def evaluate_engine(engine: SchemrEngine,
                    queries: list[GroundTruthQuery],
                    label: str = "engine",
                    top_n: int = 10,
                    exact_only: bool = True) -> EvaluationReport:
    """Run every query through the full engine and average the metrics."""

    def rank(keywords: list[str], n: int) -> list[int]:
        return [result.schema_id
                for result in engine.search(keywords=keywords, top_n=n)]

    return evaluate_ranker(rank, queries, label=label, top_n=top_n,
                           exact_only=exact_only)
