"""Standard ranked-retrieval metrics.

All functions take ``ranking`` — the returned ids, best first — plus
either a relevant-id set (binary metrics) or a grade map (NDCG).  They
are defensive about the degenerate cases (empty ranking, no relevant
ids) because the benches sweep configurations that can produce both.
"""

from __future__ import annotations

import math


def precision_at_k(ranking: list[int], relevant: set[int], k: int) -> float:
    """Fraction of the top k that is relevant."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not ranking:
        return 0.0
    top = ranking[:k]
    return sum(1 for doc in top if doc in relevant) / k


def recall_at_k(ranking: list[int], relevant: set[int], k: int) -> float:
    """Fraction of the relevant set found in the top k."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not relevant:
        return 0.0
    top = ranking[:k]
    return sum(1 for doc in top if doc in relevant) / len(relevant)


def reciprocal_rank(ranking: list[int], relevant: set[int]) -> float:
    """1/rank of the first relevant result; 0 when none appears."""
    for i, doc in enumerate(ranking, start=1):
        if doc in relevant:
            return 1.0 / i
    return 0.0


def average_precision(ranking: list[int], relevant: set[int]) -> float:
    """AP over the full ranking (for MAP)."""
    if not relevant:
        return 0.0
    hits = 0
    total = 0.0
    for i, doc in enumerate(ranking, start=1):
        if doc in relevant:
            hits += 1
            total += hits / i
    return total / len(relevant)


def ndcg_at_k(ranking: list[int], grades: dict[int, int], k: int) -> float:
    """Normalized discounted cumulative gain with graded relevance.

    Gain is ``2^grade - 1``; the ideal ordering is computed from the
    grade map.  Returns 0 when no positive grades exist.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    dcg = 0.0
    for i, doc in enumerate(ranking[:k], start=1):
        grade = grades.get(doc, 0)
        if grade > 0:
            dcg += (2 ** grade - 1) / math.log2(i + 1)
    ideal_grades = sorted((g for g in grades.values() if g > 0),
                          reverse=True)[:k]
    idcg = sum((2 ** grade - 1) / math.log2(i + 1)
               for i, grade in enumerate(ideal_grades, start=1))
    if idcg == 0.0:
        return 0.0
    return dcg / idcg
