"""Statistical significance for configuration comparisons.

The E2/E3 benches compare engine configurations on modest query samples;
a difference in mean MRR can be noise.  This module provides the two
standard paired tests for IR system comparison:

* :func:`paired_bootstrap` — bootstrap resampling of per-query score
  differences (Sakai's recommendation for IR evaluation);
* :func:`wilcoxon_signed_rank` — the classic nonparametric paired test
  (via scipy when available, exact small-sample fallback otherwise).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SchemrError


@dataclass(frozen=True, slots=True)
class ComparisonResult:
    """Outcome of comparing system A against system B, paired by query."""

    mean_a: float
    mean_b: float
    delta: float
    p_value: float
    method: str

    @property
    def significant(self) -> bool:
        """Conventional alpha = 0.05."""
        return self.p_value < 0.05

    def summary(self) -> str:
        marker = "*" if self.significant else " "
        return (f"A={self.mean_a:.4f} B={self.mean_b:.4f} "
                f"Δ={self.delta:+.4f} p={self.p_value:.4f}{marker} "
                f"({self.method})")


def _validate(scores_a: list[float], scores_b: list[float]) -> None:
    if len(scores_a) != len(scores_b):
        raise SchemrError(
            f"paired comparison needs equal-length score lists, got "
            f"{len(scores_a)} and {len(scores_b)}")
    if len(scores_a) < 2:
        raise SchemrError("need at least two paired observations")


def paired_bootstrap(scores_a: list[float], scores_b: list[float],
                     iterations: int = 10_000,
                     seed: int = 1) -> ComparisonResult:
    """Two-sided paired bootstrap test on per-query score differences.

    Resamples the query set with replacement ``iterations`` times and
    counts how often the resampled mean difference contradicts the
    observed sign.  p-values are the usual two-sided estimate with
    add-one smoothing.
    """
    _validate(scores_a, scores_b)
    differences = [a - b for a, b in zip(scores_a, scores_b)]
    n = len(differences)
    observed = sum(differences) / n
    if all(d == 0 for d in differences):
        return ComparisonResult(
            mean_a=sum(scores_a) / n, mean_b=sum(scores_b) / n,
            delta=0.0, p_value=1.0, method="paired-bootstrap")
    rng = random.Random(seed)
    contradictions = 0
    for _ in range(iterations):
        resampled = [differences[rng.randrange(n)] for _ in range(n)]
        mean = sum(resampled) / n
        # Shift to the null (zero-mean) world: count samples at least as
        # extreme on the opposite side of the observed effect.
        if observed > 0:
            contradictions += mean <= 0
        else:
            contradictions += mean >= 0
    p_one_sided = (contradictions + 1) / (iterations + 1)
    return ComparisonResult(
        mean_a=sum(scores_a) / n,
        mean_b=sum(scores_b) / n,
        delta=observed,
        p_value=min(1.0, 2.0 * p_one_sided),
        method="paired-bootstrap",
    )


def wilcoxon_signed_rank(scores_a: list[float],
                         scores_b: list[float]) -> ComparisonResult:
    """Two-sided Wilcoxon signed-rank test on paired scores.

    Ties (zero differences) are dropped per standard practice; when
    every pair ties the result is p = 1.  Uses scipy when importable.
    """
    _validate(scores_a, scores_b)
    n = len(scores_a)
    mean_a = sum(scores_a) / n
    mean_b = sum(scores_b) / n
    differences = [a - b for a, b in zip(scores_a, scores_b)
                   if a != b]
    if not differences:
        return ComparisonResult(mean_a=mean_a, mean_b=mean_b, delta=0.0,
                                p_value=1.0, method="wilcoxon")
    try:
        from scipy import stats
        statistic = stats.wilcoxon([a for a, b in zip(scores_a, scores_b)],
                                   [b for a, b in zip(scores_a, scores_b)],
                                   zero_method="wilcox")
        p_value = float(statistic.pvalue)
    except ImportError:  # pragma: no cover - scipy is a test dependency
        # Exact sign-test fallback: binomial on the sign of differences.
        import math
        positives = sum(1 for d in differences if d > 0)
        m = len(differences)
        tail = sum(math.comb(m, k) for k in
                   range(min(positives, m - positives) + 1)) / 2 ** m
        p_value = min(1.0, 2.0 * tail)
    return ComparisonResult(
        mean_a=mean_a, mean_b=mean_b,
        delta=mean_a - mean_b,
        p_value=p_value,
        method="wilcoxon",
    )


def per_query_scores(rank_fn, queries, metric, top_n: int = 10,
                     exact_only: bool = True) -> list[float]:
    """Per-query metric values for one ranking function.

    ``rank_fn(keywords, top_n) -> ranked ids``; ``metric(ranking,
    relevant) -> float``.  Returns one score per query, aligned with the
    query list so two systems' outputs can be paired.
    """
    scores = []
    for query in queries:
        ranking = rank_fn(query.keywords, top_n)
        relevant = query.exact_ids if exact_only else query.relevant_ids
        scores.append(metric(ranking, relevant))
    return scores
