"""Evaluation: IR quality metrics and the experiment runner."""

from repro.eval.metrics import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.eval.runner import EvaluationReport, evaluate_engine, evaluate_ranker
from repro.eval.significance import (
    ComparisonResult,
    paired_bootstrap,
    per_query_scores,
    wilcoxon_signed_rank,
)

__all__ = [
    "ComparisonResult",
    "EvaluationReport",
    "paired_bootstrap",
    "per_query_scores",
    "wilcoxon_signed_rank",
    "average_precision",
    "evaluate_engine",
    "evaluate_ranker",
    "ndcg_at_k",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
]
