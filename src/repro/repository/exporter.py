"""Schema exporters: the model back to DDL and XSD text.

"Integrating Schemr with schema import and export functionality gives
users motivation to build metadata repositories."  These exporters close
the loop with the parsers: ``parse_ddl(export_ddl(s))`` reconstructs the
same structure (entity names, attributes, types, nullability, primary
and foreign keys), which the round-trip tests assert.
"""

from __future__ import annotations

import re

from repro.model.elements import Attribute, Entity
from repro.model.schema import Schema

_BARE_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

#: SQL keywords that must be quoted even when they look bare.
_RESERVED = frozenset({
    "case", "order", "table", "select", "from", "where", "group", "index",
    "key", "primary", "foreign", "references", "not", "null", "unique",
    "check", "default", "create", "constraint", "user",
})


def _quote_identifier(name: str) -> str:
    if _BARE_IDENTIFIER.match(name) and name.lower() not in _RESERVED:
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def _column_ddl(attribute: Attribute) -> str:
    parts = [_quote_identifier(attribute.name)]
    if attribute.data_type:
        parts.append(attribute.data_type)
    if attribute.primary_key:
        parts.append("PRIMARY KEY")
    elif not attribute.nullable:
        parts.append("NOT NULL")
    return " ".join(parts)


def export_ddl(schema: Schema) -> str:
    """Render a schema as executable CREATE TABLE statements.

    Tables are emitted in stored order; table-level FOREIGN KEY clauses
    are attached to their source tables.  Multi-column primary keys are
    emitted per-column (the model tracks the flag per attribute).
    """
    fks_by_source: dict[str, list[str]] = {}
    for fk in schema.foreign_keys:
        clause = (f"FOREIGN KEY ({_quote_identifier(fk.source_attribute)}) "
                  f"REFERENCES {_quote_identifier(fk.target_entity)}"
                  f"({_quote_identifier(fk.target_attribute)})")
        fks_by_source.setdefault(fk.source_entity, []).append(clause)

    statements: list[str] = []
    if schema.description:
        statements.append(f"-- {schema.description}")
    for entity in schema.entities.values():
        lines = [_column_ddl(attr) for attr in entity.attributes]
        lines.extend(fks_by_source.get(entity.name, []))
        body = ",\n  ".join(lines)
        comment = f"-- {entity.description}\n" if entity.description else ""
        statements.append(
            f"{comment}CREATE TABLE {_quote_identifier(entity.name)} (\n"
            f"  {body}\n);")
    return "\n\n".join(statements) + "\n"


_XSD_TYPES = {
    "numeric": "xs:decimal",
    "temporal": "xs:date",
    "boolean": "xs:boolean",
    "binary": "xs:base64Binary",
    "identifier": "xs:ID",
}


def _xsd_type(attribute: Attribute) -> str:
    from repro.matching.datatype import type_family
    family = type_family(attribute.data_type)
    if family is None:
        return "xs:string"
    return _XSD_TYPES.get(family, "xs:string")


def _xml_escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def export_xsd(schema: Schema) -> str:
    """Render a schema as an XSD document.

    Each entity becomes a top-level element with an anonymous complex
    type; attributes become leaf elements typed by their SQL type's
    family.  Foreign-key structure cannot be expressed hierarchically
    without duplicating entities, so FK edges are recorded as
    ``xs:annotation/xs:appinfo`` entries that :func:`repro.parsers.xsd`
    consumers can read back.
    """
    lines = ['<?xml version="1.0" encoding="UTF-8"?>',
             '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">']
    if schema.foreign_keys:
        lines.append("  <xs:annotation><xs:appinfo>")
        for fk in schema.foreign_keys:
            lines.append(
                f'    <foreignKey source="{_xml_escape(fk.source_entity)}.'
                f'{_xml_escape(fk.source_attribute)}" '
                f'target="{_xml_escape(fk.target_entity)}.'
                f'{_xml_escape(fk.target_attribute)}"/>')
        lines.append("  </xs:appinfo></xs:annotation>")
    for entity in schema.entities.values():
        lines.append(f'  <xs:element name="{_xml_escape(entity.name)}">')
        lines.append("    <xs:complexType>")
        if entity.description:
            lines.append("      <xs:annotation>")
            lines.append(f"        <xs:documentation>"
                         f"{_xml_escape(entity.description)}"
                         f"</xs:documentation>")
            lines.append("      </xs:annotation>")
        lines.append("      <xs:sequence>")
        for attr in entity.attributes:
            min_occurs = "" if not attr.nullable else ' minOccurs="0"'
            lines.append(
                f'        <xs:element name="{_xml_escape(attr.name)}" '
                f'type="{_xsd_type(attr)}"{min_occurs}/>')
        lines.append("      </xs:sequence>")
        lines.append("    </xs:complexType>")
        lines.append("  </xs:element>")
    lines.append("</xs:schema>")
    return "\n".join(lines) + "\n"


def export_entity_ddl(entity: Entity) -> str:
    """One entity as a standalone CREATE TABLE (for fragment pasting)."""
    single = Schema(name=entity.name, entities={entity.name: entity})
    return export_ddl(single)
