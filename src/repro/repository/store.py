"""SQLite-backed schema repository.

Schemas are stored as validated JSON payloads with searchable metadata
columns, and every mutation is appended to a change log so the offline
indexer can refresh incrementally.  The repository is the integration
point of the whole system: it owns the inverted index (via
:class:`~repro.repository.indexer.RepositoryIndexer`) and hands out
ready-to-use :class:`~repro.core.engine.SchemrEngine` instances.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Iterator

from repro.core.config import SchemrConfig
from repro.core.engine import SchemrEngine
from repro.errors import RepositoryError, SchemaError
from repro.matching.ensemble import MatcherEnsemble
from repro.matching.profile import ProfileStore
from repro.model.schema import Schema
from repro.parsers.ddl import parse_ddl
from repro.parsers.webtable import schema_from_webtable
from repro.parsers.xsd import parse_xsd

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS schemas (
    schema_id   INTEGER PRIMARY KEY AUTOINCREMENT,
    name        TEXT NOT NULL,
    description TEXT NOT NULL DEFAULT '',
    source      TEXT NOT NULL DEFAULT '',
    payload     TEXT NOT NULL,
    created_at  REAL NOT NULL,
    updated_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS changelog (
    change_id   INTEGER PRIMARY KEY AUTOINCREMENT,
    schema_id   INTEGER NOT NULL,
    op          TEXT NOT NULL CHECK (op IN ('add', 'update', 'delete')),
    changed_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS search_history (
    entry_id    INTEGER PRIMARY KEY AUTOINCREMENT,
    query_terms TEXT NOT NULL,
    schema_id   INTEGER NOT NULL,
    relevant    INTEGER NOT NULL,
    features    TEXT NOT NULL DEFAULT '{}',
    searched_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS ratings (
    rating_id   INTEGER PRIMARY KEY AUTOINCREMENT,
    schema_id   INTEGER NOT NULL,
    user        TEXT NOT NULL,
    stars       INTEGER NOT NULL CHECK (stars BETWEEN 1 AND 5),
    rated_at    REAL NOT NULL,
    UNIQUE (schema_id, user)
);
CREATE TABLE IF NOT EXISTS comments (
    comment_id  INTEGER PRIMARY KEY AUTOINCREMENT,
    schema_id   INTEGER NOT NULL,
    user        TEXT NOT NULL,
    body        TEXT NOT NULL,
    commented_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS usage_stats (
    schema_id   INTEGER PRIMARY KEY,
    impressions INTEGER NOT NULL DEFAULT 0,
    clicks      INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_changelog_change ON changelog (change_id);
CREATE INDEX IF NOT EXISTS idx_history_schema ON search_history (schema_id);
"""


class SchemaRepository:
    """Durable store of schemas plus the system integration points."""

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._path = str(path)
        # The HTTP service and the scheduled indexer touch the repository
        # from worker threads; Python's sqlite3 is compiled serialized
        # (threadsafety == 3), so sharing one connection is safe, and the
        # lock below keeps multi-statement operations atomic.
        self._conn = sqlite3.connect(self._path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._lock = threading.RLock()
        self._conn.executescript(_SCHEMA_SQL)
        self._conn.commit()
        self._indexer: "RepositoryIndexer | None" = None
        self._profile_store: ProfileStore | None = None

    @classmethod
    def in_memory(cls) -> "SchemaRepository":
        """A throwaway repository for tests, examples and benches."""
        return cls(":memory:")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SchemaRepository":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- schema CRUD -------------------------------------------------------

    def add_schema(self, schema: Schema) -> int:
        """Store a schema; returns the assigned id (also set on the object)."""
        now = time.time()
        payload = json.dumps(schema.to_dict())
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO schemas (name, description, source, payload, "
                "created_at, updated_at) VALUES (?, ?, ?, ?, ?, ?)",
                (schema.name, schema.description, schema.source, payload,
                 now, now))
            schema_id = cursor.lastrowid
            assert schema_id is not None
            schema.schema_id = schema_id
            # Rewrite payload so the stored copy knows its own id.
            self._conn.execute(
                "UPDATE schemas SET payload = ? WHERE schema_id = ?",
                (json.dumps(schema.to_dict()), schema_id))
            self._log_change(schema_id, "add", now)
            self._conn.commit()
        return schema_id

    def update_schema(self, schema: Schema) -> None:
        """Replace a stored schema (id must be set and present)."""
        if schema.schema_id is None:
            raise RepositoryError("schema has no id; use add_schema")
        now = time.time()
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE schemas SET name = ?, description = ?, source = ?, "
                "payload = ?, updated_at = ? WHERE schema_id = ?",
                (schema.name, schema.description, schema.source,
                 json.dumps(schema.to_dict()), now, schema.schema_id))
            if cursor.rowcount == 0:
                raise RepositoryError(
                    f"schema {schema.schema_id} is not in the repository")
            self._log_change(schema.schema_id, "update", now)
            self._conn.commit()
        if self._profile_store is not None:
            self._profile_store.invalidate(schema.schema_id)

    def delete_schema(self, schema_id: int) -> None:
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM schemas WHERE schema_id = ?", (schema_id,))
            if cursor.rowcount == 0:
                raise RepositoryError(
                    f"schema {schema_id} is not in the repository")
            self._log_change(schema_id, "delete", time.time())
            self._conn.commit()
        if self._profile_store is not None:
            self._profile_store.invalidate(schema_id)

    def get_schema(self, schema_id: int) -> Schema:
        row = self._conn.execute(
            "SELECT payload FROM schemas WHERE schema_id = ?",
            (schema_id,)).fetchone()
        if row is None:
            raise RepositoryError(
                f"schema {schema_id} is not in the repository")
        try:
            return Schema.from_dict(json.loads(row["payload"]))
        except (json.JSONDecodeError, SchemaError) as exc:
            raise RepositoryError(
                f"stored payload of schema {schema_id} is corrupt: "
                f"{exc}") from exc

    def has_schema(self, schema_id: int) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM schemas WHERE schema_id = ?",
            (schema_id,)).fetchone()
        return row is not None

    def iter_schemas(self) -> Iterator[Schema]:
        """All schemas, id order.  Streams rather than materializing."""
        cursor = self._conn.execute(
            "SELECT payload FROM schemas ORDER BY schema_id")
        for row in cursor:
            yield Schema.from_dict(json.loads(row["payload"]))

    def list_schema_ids(self) -> list[int]:
        cursor = self._conn.execute(
            "SELECT schema_id FROM schemas ORDER BY schema_id")
        return [row["schema_id"] for row in cursor]

    @property
    def schema_count(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) AS n FROM schemas")
        return int(row.fetchone()["n"])

    def _log_change(self, schema_id: int, op: str, when: float) -> None:
        self._conn.execute(
            "INSERT INTO changelog (schema_id, op, changed_at) "
            "VALUES (?, ?, ?)", (schema_id, op, when))

    def changes_since(self, change_id: int) -> list[tuple[int, int, str]]:
        """(change_id, schema_id, op) rows after ``change_id``."""
        cursor = self._conn.execute(
            "SELECT change_id, schema_id, op FROM changelog "
            "WHERE change_id > ? ORDER BY change_id", (change_id,))
        return [(row["change_id"], row["schema_id"], row["op"])
                for row in cursor]

    # -- imports -----------------------------------------------------------

    def import_ddl(self, text: str, name: str = "ddl_schema",
                   description: str = "") -> int:
        """Parse DDL text and store the schema; returns its id."""
        schema = parse_ddl(text, schema_name=name)
        schema.description = description
        return self.add_schema(schema)

    def import_xsd(self, text: str, name: str = "xsd_schema",
                   description: str = "") -> int:
        schema = parse_xsd(text, schema_name=name)
        schema.description = description
        return self.add_schema(schema)

    def import_webtable(self, title: str, columns: list[str],
                        description: str = "") -> int:
        schema = schema_from_webtable(title, columns,
                                      description=description)
        return self.add_schema(schema)

    # -- search integration --------------------------------------------

    def profile_store(self, capacity: int = 1024) -> ProfileStore:
        """The repository's (lazily created) match-profile cache.

        A read-through LRU over this repository: serving ``get_schema``
        without the per-call JSON parse and ``get_profile`` with the
        precomputed match artifacts.  Kept in sync by the CRUD methods
        (invalidate) and the indexer refresh (eager rebuild).
        """
        if self._profile_store is None:
            self._profile_store = ProfileStore(self, capacity=capacity)
        return self._profile_store

    def indexer(self) -> "RepositoryIndexer":
        """The repository's (lazily created) offline indexer."""
        from repro.repository.indexer import RepositoryIndexer
        if self._indexer is None:
            self._indexer = RepositoryIndexer(
                self, profile_store=self.profile_store())
        return self._indexer

    def reindex(self) -> int:
        """Refresh the text index from the change log; returns the number
        of index operations applied."""
        return self.indexer().refresh()

    def engine(self, ensemble: MatcherEnsemble | None = None,
               config: SchemrConfig | None = None) -> SchemrEngine:
        """A search engine over this repository's current index.

        Refreshes the index first so results never trail the stored
        schemas.  The engine's telemetry facade is shared with the
        indexer, so refresh batches and search latency land in one
        metrics registry.
        """
        from repro.telemetry import Telemetry
        config = config or SchemrConfig()
        telemetry = Telemetry.from_config(config)
        indexer = self.indexer()
        indexer.telemetry = telemetry
        indexer.refresh()
        engine = SchemrEngine(index=indexer.index,
                              source=self.profile_store(),
                              ensemble=ensemble, config=config,
                              telemetry=telemetry)
        # The facade was created solely for this engine; its close()
        # should own the history sink's lifecycle.
        engine._owns_telemetry = True
        return engine

    # -- history / collaboration (thin wrappers; logic in submodules) ---

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection, for the submodules that extend the
        repository (history, collaboration).  Treat as internal."""
        return self._conn
