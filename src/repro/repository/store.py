"""SQLite-backed schema repository.

Schemas are stored as validated JSON payloads with searchable metadata
columns, and every mutation is appended to a change log so the offline
indexer can refresh incrementally.  The repository is the integration
point of the whole system: it owns the inverted index (via
:class:`~repro.repository.indexer.RepositoryIndexer`) and hands out
ready-to-use :class:`~repro.core.engine.SchemrEngine` instances.
"""

from __future__ import annotations

import json
import logging
import sqlite3
import threading
import time
from pathlib import Path
from typing import Callable, Iterator, TypeVar

from repro.core.config import SchemrConfig
from repro.core.engine import SchemrEngine
from repro.errors import RepositoryError, SchemaError, ServiceError
from repro.matching.ensemble import MatcherEnsemble
from repro.matching.profile import ProfileStore
from repro.model.schema import Schema
from repro.parsers.ddl import parse_ddl
from repro.parsers.webtable import schema_from_webtable
from repro.parsers.xsd import parse_xsd
from repro.resilience.faults import FAULTS
from repro.resilience.retry import RetryPolicy, retry_transient

logger = logging.getLogger(__name__)

_T = TypeVar("_T")

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS schemas (
    schema_id   INTEGER PRIMARY KEY AUTOINCREMENT,
    name        TEXT NOT NULL,
    description TEXT NOT NULL DEFAULT '',
    source      TEXT NOT NULL DEFAULT '',
    payload     TEXT NOT NULL,
    created_at  REAL NOT NULL,
    updated_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS changelog (
    change_id   INTEGER PRIMARY KEY AUTOINCREMENT,
    schema_id   INTEGER NOT NULL,
    op          TEXT NOT NULL CHECK (op IN ('add', 'update', 'delete')),
    changed_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS search_history (
    entry_id    INTEGER PRIMARY KEY AUTOINCREMENT,
    query_terms TEXT NOT NULL,
    schema_id   INTEGER NOT NULL,
    relevant    INTEGER NOT NULL,
    features    TEXT NOT NULL DEFAULT '{}',
    searched_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS ratings (
    rating_id   INTEGER PRIMARY KEY AUTOINCREMENT,
    schema_id   INTEGER NOT NULL,
    user        TEXT NOT NULL,
    stars       INTEGER NOT NULL CHECK (stars BETWEEN 1 AND 5),
    rated_at    REAL NOT NULL,
    UNIQUE (schema_id, user)
);
CREATE TABLE IF NOT EXISTS comments (
    comment_id  INTEGER PRIMARY KEY AUTOINCREMENT,
    schema_id   INTEGER NOT NULL,
    user        TEXT NOT NULL,
    body        TEXT NOT NULL,
    commented_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS usage_stats (
    schema_id   INTEGER PRIMARY KEY,
    impressions INTEGER NOT NULL DEFAULT 0,
    clicks      INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_changelog_change ON changelog (change_id);
CREATE INDEX IF NOT EXISTS idx_history_schema ON search_history (schema_id);
"""


class SchemaRepository:
    """Durable store of schemas plus the system integration points."""

    def __init__(self, path: str | Path = ":memory:", *,
                 busy_timeout_seconds: float = 5.0,
                 retry_policy: RetryPolicy | None = None) -> None:
        self._path = str(path)
        # The HTTP service and the scheduled indexer touch the repository
        # from worker threads; Python's sqlite3 is compiled serialized
        # (threadsafety == 3), so sharing one connection is safe, and the
        # lock below keeps multi-statement operations atomic.
        self._conn = sqlite3.connect(self._path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._lock = threading.RLock()
        # Concurrent reader/writer traffic (a second process, an online
        # backup) should queue, not instantly raise "database is
        # locked": busy_timeout makes sqlite wait for the lock, and WAL
        # lets readers proceed under a writer.  WAL needs a real file —
        # in-memory databases report "memory" and that is fine.
        self._conn.execute(
            f"PRAGMA busy_timeout = {int(busy_timeout_seconds * 1000)}")
        if self._path != ":memory:":
            try:
                self._conn.execute("PRAGMA journal_mode=WAL")
            except sqlite3.OperationalError as exc:  # pragma: no cover
                # Network filesystems can refuse WAL; the repository
                # still works in the default rollback mode.
                logger.warning("could not enable WAL mode: %s", exc)
        #: Backoff policy for transient "database is locked" errors that
        #: survive busy_timeout (e.g. a writer in another process
        #: holding the lock past it).
        self._retry_policy = retry_policy or RetryPolicy()
        self._retry_count = 0
        self._indexer: "RepositoryIndexer | None" = None
        self._profile_store: ProfileStore | None = None
        self._with_retry(self._init_tables)

    def _init_tables(self) -> None:
        self._conn.executescript(_SCHEMA_SQL)
        self._conn.commit()

    def _with_retry(self, fn: Callable[[], _T]) -> _T:
        """Run a sqlite operation, retrying transient lock errors.

        Rolls back before each retry so a failure mid-transaction
        cannot leave half a multi-statement operation behind (each
        retried ``fn`` is written to be idempotent from a clean
        transaction).
        """
        def before_retry(attempt: int, exc: BaseException) -> None:
            self._retry_count += 1
            try:
                self._conn.rollback()
            except sqlite3.Error:  # pragma: no cover - best effort
                pass
        return retry_transient(fn, self._retry_policy,
                               on_retry=before_retry)

    @property
    def retry_count(self) -> int:
        """Transient-lock retries performed (telemetry feed)."""
        return self._retry_count

    @classmethod
    def in_memory(cls) -> "SchemaRepository":
        """A throwaway repository for tests, examples and benches."""
        return cls(":memory:")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SchemaRepository":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- schema CRUD -------------------------------------------------------

    def add_schema(self, schema: Schema) -> int:
        """Store a schema; returns the assigned id (also set on the object)."""
        now = time.time()
        payload = json.dumps(schema.to_dict())

        def insert() -> int:
            with self._lock:
                FAULTS.hit("store.add_schema")
                cursor = self._conn.execute(
                    "INSERT INTO schemas (name, description, source, "
                    "payload, created_at, updated_at) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (schema.name, schema.description, schema.source,
                     payload, now, now))
                schema_id = cursor.lastrowid
                assert schema_id is not None
                schema.schema_id = schema_id
                # Rewrite payload so the stored copy knows its own id.
                self._conn.execute(
                    "UPDATE schemas SET payload = ? WHERE schema_id = ?",
                    (json.dumps(schema.to_dict()), schema_id))
                self._log_change(schema_id, "add", now)
                self._conn.commit()
                return schema_id

        return self._with_retry(insert)

    def update_schema(self, schema: Schema) -> None:
        """Replace a stored schema (id must be set and present)."""
        if schema.schema_id is None:
            raise RepositoryError("schema has no id; use add_schema")
        now = time.time()

        def update() -> None:
            with self._lock:
                cursor = self._conn.execute(
                    "UPDATE schemas SET name = ?, description = ?, "
                    "source = ?, payload = ?, updated_at = ? "
                    "WHERE schema_id = ?",
                    (schema.name, schema.description, schema.source,
                     json.dumps(schema.to_dict()), now, schema.schema_id))
                if cursor.rowcount == 0:
                    raise RepositoryError(
                        f"schema {schema.schema_id} is not in the "
                        "repository")
                self._log_change(schema.schema_id, "update", now)
                self._conn.commit()

        self._with_retry(update)
        if self._profile_store is not None:
            self._profile_store.invalidate(schema.schema_id)

    def delete_schema(self, schema_id: int) -> None:
        def delete() -> None:
            with self._lock:
                cursor = self._conn.execute(
                    "DELETE FROM schemas WHERE schema_id = ?", (schema_id,))
                if cursor.rowcount == 0:
                    raise RepositoryError(
                        f"schema {schema_id} is not in the repository")
                self._log_change(schema_id, "delete", time.time())
                self._conn.commit()

        self._with_retry(delete)
        if self._profile_store is not None:
            self._profile_store.invalidate(schema_id)

    def get_schema(self, schema_id: int) -> Schema:
        def fetch():
            FAULTS.hit("store.get_schema")
            return self._conn.execute(
                "SELECT payload FROM schemas WHERE schema_id = ?",
                (schema_id,)).fetchone()

        row = self._with_retry(fetch)
        if row is None:
            raise RepositoryError(
                f"schema {schema_id} is not in the repository")
        try:
            return Schema.from_dict(json.loads(row["payload"]))
        except (json.JSONDecodeError, SchemaError) as exc:
            raise RepositoryError(
                f"stored payload of schema {schema_id} is corrupt: "
                f"{exc}") from exc

    def has_schema(self, schema_id: int) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM schemas WHERE schema_id = ?",
            (schema_id,)).fetchone()
        return row is not None

    def iter_schemas(self, skip_corrupt: bool = False) -> Iterator[Schema]:
        """All schemas, id order.  Streams rather than materializing.

        A corrupt stored payload raises :class:`RepositoryError` naming
        the offending row; with ``skip_corrupt`` it is logged and the
        iteration continues — bulk consumers (index rebuild, export)
        should not lose the whole repository to one bad row.
        """
        FAULTS.hit("store.iter_schemas")
        cursor = self._conn.execute(
            "SELECT schema_id, payload FROM schemas ORDER BY schema_id")
        for row in cursor:
            try:
                yield Schema.from_dict(json.loads(row["payload"]))
            except (json.JSONDecodeError, SchemaError, ValueError) as exc:
                if skip_corrupt:
                    logger.warning(
                        "skipping corrupt payload of schema %d: %s",
                        row["schema_id"], exc)
                    continue
                raise RepositoryError(
                    f"stored payload of schema {row['schema_id']} is "
                    f"corrupt: {exc}") from exc

    def list_schema_ids(self) -> list[int]:
        cursor = self._conn.execute(
            "SELECT schema_id FROM schemas ORDER BY schema_id")
        return [row["schema_id"] for row in cursor]

    @property
    def schema_count(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) AS n FROM schemas")
        return int(row.fetchone()["n"])

    def _log_change(self, schema_id: int, op: str, when: float) -> None:
        self._conn.execute(
            "INSERT INTO changelog (schema_id, op, changed_at) "
            "VALUES (?, ?, ?)", (schema_id, op, when))

    def changes_since(self, change_id: int) -> list[tuple[int, int, str]]:
        """(change_id, schema_id, op) rows after ``change_id``."""
        def fetch() -> list[tuple[int, int, str]]:
            FAULTS.hit("store.changes_since")
            cursor = self._conn.execute(
                "SELECT change_id, schema_id, op FROM changelog "
                "WHERE change_id > ? ORDER BY change_id", (change_id,))
            return [(row["change_id"], row["schema_id"], row["op"])
                    for row in cursor]

        return self._with_retry(fetch)

    # -- imports -----------------------------------------------------------

    def import_ddl(self, text: str, name: str = "ddl_schema",
                   description: str = "") -> int:
        """Parse DDL text and store the schema; returns its id."""
        schema = parse_ddl(text, schema_name=name)
        schema.description = description
        return self.add_schema(schema)

    def import_xsd(self, text: str, name: str = "xsd_schema",
                   description: str = "") -> int:
        schema = parse_xsd(text, schema_name=name)
        schema.description = description
        return self.add_schema(schema)

    def import_webtable(self, title: str, columns: list[str],
                        description: str = "") -> int:
        schema = schema_from_webtable(title, columns,
                                      description=description)
        return self.add_schema(schema)

    # -- search integration --------------------------------------------

    def profile_store(self, capacity: int = 1024) -> ProfileStore:
        """The repository's (lazily created) match-profile cache.

        A read-through LRU over this repository: serving ``get_schema``
        without the per-call JSON parse and ``get_profile`` with the
        precomputed match artifacts.  Kept in sync by the CRUD methods
        (invalidate) and the indexer refresh (eager rebuild).
        """
        if self._profile_store is None:
            self._profile_store = ProfileStore(self, capacity=capacity)
        return self._profile_store

    def indexer(self, segment_dir: str | None = None,
                merge_policy: str = "tiered",
                shards: int | None = None) -> "RepositoryIndexer":
        """The repository's (lazily created) offline indexer.

        ``segment_dir`` puts the first-created indexer in durable
        segment mode: the index is served from mmapped on-disk segments
        (millisecond cold start) with refreshes flushed and merged
        through the directory's manifest.  An explicit ``shards``
        (including 1) makes that directory a doc-id-sharded layout (see
        :mod:`repro.index.segments.sharded`).  The arguments only
        matter on the creating call; later calls return the existing
        indexer.
        """
        from repro.repository.indexer import RepositoryIndexer
        if self._indexer is None:
            self._indexer = RepositoryIndexer(
                self, profile_store=self.profile_store(),
                segment_dir=segment_dir, merge_policy=merge_policy,
                shards=shards)
        return self._indexer

    def reindex(self) -> int:
        """Refresh the text index from the change log; returns the number
        of index operations applied."""
        return self.indexer().refresh()

    def engine(self, ensemble: MatcherEnsemble | None = None,
               config: SchemrConfig | None = None) -> SchemrEngine:
        """A search engine over this repository's current index.

        Refreshes the index first so results never trail the stored
        schemas.  The engine's telemetry facade is shared with the
        indexer, so refresh batches and search latency land in one
        metrics registry.
        """
        from repro.telemetry import Telemetry
        config = config or SchemrConfig()
        if config.shards > 1:
            raise ServiceError(
                f"config requests {config.shards} shards; build a "
                "repro.sharding.ShardedEngine (or serve with --shards) "
                "instead of the in-process engine")
        telemetry = Telemetry.from_config(config)
        indexer = self.indexer(segment_dir=config.segment_dir,
                               merge_policy=config.merge_policy)
        indexer.telemetry = telemetry
        indexer.refresh()
        engine = SchemrEngine(index=indexer.index,
                              source=self.profile_store(),
                              ensemble=ensemble, config=config,
                              telemetry=telemetry)
        # The facade was created solely for this engine; its close()
        # should own the history sink's lifecycle.
        engine._owns_telemetry = True
        return engine

    # -- history / collaboration (thin wrappers; logic in submodules) ---

    @property
    def path(self) -> str:
        """The database path (``":memory:"`` for in-memory stores).

        Sharded serving needs this: each worker process opens its own
        connection to the same file.
        """
        return self._path

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection, for the submodules that extend the
        repository (history, collaboration).  Treat as internal."""
        return self._conn
