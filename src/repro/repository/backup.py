"""Repository backup and maintenance (SQLite online backup API)."""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import RepositoryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.repository.store import SchemaRepository


def backup_repository(repository: "SchemaRepository",
                      destination: str | Path) -> int:
    """Online backup of the repository database to ``destination``.

    Safe while the repository is in use (SQLite's backup API snapshots
    consistently).  Returns the number of schemas in the backup.
    Refuses to clobber an existing file — backups must be explicit about
    overwriting.
    """
    destination = Path(destination)
    if destination.exists():
        raise RepositoryError(
            f"backup destination {destination} already exists")
    target = sqlite3.connect(destination)
    try:
        with target:
            repository.connection.backup(target)
        row = target.execute("SELECT COUNT(*) AS n FROM schemas").fetchone()
        return int(row[0])
    finally:
        target.close()


def restore_repository(source: str | Path,
                       destination: str | Path) -> "SchemaRepository":
    """Open a backup as a working repository at ``destination``.

    Copies the backup file so the original stays pristine, then opens
    it through the normal constructor (which validates/migrates the
    schema objects lazily on access).
    """
    from repro.repository.store import SchemaRepository
    source = Path(source)
    destination = Path(destination)
    if not source.exists():
        raise RepositoryError(f"backup {source} does not exist")
    if destination.exists():
        raise RepositoryError(
            f"restore destination {destination} already exists")
    destination.write_bytes(source.read_bytes())
    return SchemaRepository(destination)


def vacuum_repository(repository: "SchemaRepository") -> None:
    """Reclaim space after bulk deletions."""
    repository.connection.execute("VACUUM")
    repository.connection.commit()
