"""The offline text indexer.

"At scheduled intervals, an offline Lucene Text Indexer flattens schemas
from the Schema Repository to construct or update the document index."

:class:`RepositoryIndexer` consumes the repository change log: each
:meth:`refresh` applies only the adds/updates/deletes recorded since the
previous refresh, so a 30k-schema repository is not re-flattened when
one schema changes.  :meth:`run_scheduled` loops refresh-sleep-refresh
for deployments that want the paper's interval behaviour literally.
"""

from __future__ import annotations

import logging
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.errors import IndexError_
from repro.index.documents import document_from_schema
from repro.index.inverted import InvertedIndex
from repro.index.segments import (
    SegmentedIndex,
    ShardedSegmentIndex,
    make_merge_policy,
    open_segment_index,
)
from repro.index.store import load_index, save_index
from repro.matching.profile import ProfileStore
from repro.resilience.faults import FAULTS
from repro.telemetry.metrics import DEFAULT_COUNT_BUCKETS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.repository.store import SchemaRepository
    from repro.telemetry import Telemetry

logger = logging.getLogger(__name__)


class RepositoryIndexer:
    """Keeps an :class:`InvertedIndex` in sync with a repository.

    When a :class:`~repro.matching.profile.ProfileStore` is attached,
    every refresh also keeps match profiles in step with the changelog:
    deletes invalidate, adds/updates rebuild eagerly (the schema is
    already in hand), so queries never pay the profile build.
    """

    def __init__(self, repository: "SchemaRepository",
                 profile_store: ProfileStore | None = None,
                 segment_dir: str | Path | None = None,
                 merge_policy: str = "tiered",
                 shards: int | None = None) -> None:
        self._repository = repository
        self._profile_store = profile_store
        self._merge_policy = make_merge_policy(merge_policy)
        if segment_dir is not None:
            # Durable mode: the index lives in a segment directory.
            # Opening is O(segment count); the manifest's change-log
            # cursor tells us which repository changes the on-disk
            # state already reflects, so refresh replays only the gap.
            # With ``shards`` > 1 (or an existing SHARDS.json layout)
            # the directory is doc-id-sharded and every flush/merge
            # routes per shard.
            self._index: InvertedIndex | SegmentedIndex | \
                ShardedSegmentIndex = open_segment_index(
                    segment_dir, shards=shards, create=True, sweep=True)
            self._last_change_id = self._index.last_change_id
        else:
            if shards is not None and shards > 1:
                raise IndexError_(
                    "a sharded index requires a segment directory; "
                    "pass segment_dir alongside shards")
            self._index = InvertedIndex()
            self._last_change_id = 0
        self._stop_event = threading.Event()
        self._refreshing = False
        self._consecutive_failures = 0
        #: Optional :class:`~repro.telemetry.Telemetry` to report
        #: refresh batches into; wired by ``SchemaRepository.engine()``
        #: so the indexer and the engine share one registry.
        self.telemetry: "Telemetry | None" = None

    @property
    def refreshing(self) -> bool:
        """Whether a refresh/rebuild batch is being applied right now.

        The ``/readyz`` probe reports 503 while this is set — a
        mid-rebuild index serves stale or partial rankings.
        """
        return self._refreshing

    @property
    def consecutive_failures(self) -> int:
        """Failed scheduled refreshes since the last success."""
        return self._consecutive_failures

    @property
    def index(self) -> InvertedIndex | SegmentedIndex | ShardedSegmentIndex:
        return self._index

    @property
    def last_change_id(self) -> int:
        return self._last_change_id

    def refresh(self) -> int:
        """Apply pending change-log entries; returns operations applied.

        Multiple changes to one schema within a batch collapse to the
        final state, so a schema added and deleted between refreshes
        costs nothing.
        """
        FAULTS.hit("indexer.refresh")
        changes = self._repository.changes_since(self._last_change_id)
        if not changes:
            return 0
        final_op: dict[int, str] = {}
        head_change_id = self._last_change_id
        for change_id, schema_id, op in changes:
            final_op[schema_id] = op
            head_change_id = max(head_change_id, change_id)
        applied = 0
        started = time.perf_counter()
        generation_before = self._index.generation
        logger.debug("indexer refresh: %d pending change(s)",
                     len(changes))
        # The whole batch applies under the index's mutation lock so a
        # concurrent searcher (run_scheduled in a background thread is
        # the intended deployment) never reads a half-applied refresh:
        # searches serialize against the batch, not individual postings
        # writes, and read a consistent generation-stamped snapshot.
        with self._index.lock, self._refreshing_guard():
            for schema_id, op in final_op.items():
                if op == "delete":
                    if self._profile_store is not None:
                        self._profile_store.invalidate(schema_id)
                    if self._index.has_document(schema_id):
                        self._index.remove(schema_id)
                        applied += 1
                    continue
                # add/update collapse to replace-with-current-state; the
                # schema may have been deleted after the logged change.
                if not self._repository.has_schema(schema_id):
                    if self._profile_store is not None:
                        self._profile_store.invalidate(schema_id)
                    if self._index.has_document(schema_id):
                        self._index.remove(schema_id)
                        applied += 1
                    continue
                schema = self._repository.get_schema(schema_id)
                self._index.replace(document_from_schema(schema))
                if self._profile_store is not None:
                    self._profile_store.put(schema)
                applied += 1
        # The cursor moves only after the whole batch applied: a batch
        # that raised replays from the same position next refresh.
        self._last_change_id = head_change_id
        logger.info("indexer refresh applied %d operation(s); index holds "
                    "%d document(s)", applied, self._index.document_count)
        self._commit_segments()
        self._record_refresh(applied, time.perf_counter() - started,
                             generation_before)
        return applied

    def _commit_segments(self) -> None:
        """Make a segmented index durable after a batch: flush + merge.

        Flushing seals the delta into a new immutable segment and
        records the change-log cursor in the manifest; the merge policy
        then gets a chance to fold segments (bounded per batch so one
        refresh cannot cascade forever).  Both swaps preserve the
        generation, so warm caches survive.  No-op for the in-memory
        index.
        """
        index = self._index
        if not isinstance(index, (SegmentedIndex, ShardedSegmentIndex)) \
                or index.directory is None:
            return  # in-memory, or a standalone loaded segment file
        index.flush(last_change_id=self._last_change_id)
        for _ in range(4):
            started = time.perf_counter()
            merged = index.maybe_merge(self._merge_policy)
            if not merged:
                break
            seconds = time.perf_counter() - started
            logger.info("indexer merged %d segment(s) in %.3fs "
                        "(%d live segment(s))",
                        merged, seconds, index.segment_count)
            self._record_merge(merged, seconds)

    def _record_merge(self, merged: int, seconds: float) -> None:
        telemetry = self.telemetry
        if telemetry is None or not telemetry.enabled:
            return
        m = telemetry.metrics
        m.counter("schemr_segment_merges_total",
                  "Segment merges completed").inc()
        m.counter("schemr_segment_merged_segments_total",
                  "Segments rewritten by merges").inc(merged)
        m.histogram("schemr_segment_merge_seconds",
                    "Segment merge duration").observe(seconds)

    def _record_refresh(self, applied: int, seconds: float,
                        generation_before: int) -> None:
        telemetry = self.telemetry
        if telemetry is None or not telemetry.enabled:
            return
        m = telemetry.metrics
        m.counter("schemr_indexer_refreshes_total",
                  "Indexer refresh batches applied").inc()
        m.counter("schemr_indexer_ops_applied_total",
                  "Index operations applied by refreshes").inc(applied)
        m.histogram("schemr_indexer_refresh_seconds",
                    "Refresh batch duration").observe(seconds)
        m.histogram("schemr_indexer_batch_size",
                    "Operations per refresh batch",
                    buckets=DEFAULT_COUNT_BUCKETS).observe(applied)
        if self._index.generation != generation_before:
            m.counter("schemr_indexer_generation_bumps_total",
                      "Refreshes that moved the index generation").inc()

    @contextmanager
    def _refreshing_guard(self) -> Iterator[None]:
        self._refreshing = True
        try:
            yield
        finally:
            self._refreshing = False

    def run_scheduled(self, interval_seconds: float,
                      max_refreshes: int | None = None) -> int:
        """Refresh on an interval until :meth:`stop` (or max_refreshes).

        Returns the total operations applied.  Meant to run in a
        background thread; the unit tests drive it with a small
        ``max_refreshes`` instead of sleeping forever.

        A failed refresh (store locked past the retry budget, corrupt
        row) is logged and counted, and the loop waits for the next
        interval instead of dying — the change-log cursor only advances
        on success, so nothing is lost.
        """
        total = 0
        refreshes = 0
        while not self._stop_event.is_set():
            try:
                total += self.refresh()
            except Exception as exc:
                self._consecutive_failures += 1
                logger.error(
                    "scheduled refresh failed (%d consecutive): %s",
                    self._consecutive_failures, exc)
                self._record_refresh_failure()
            else:
                self._consecutive_failures = 0
            refreshes += 1
            if max_refreshes is not None and refreshes >= max_refreshes:
                break
            if self._stop_event.wait(interval_seconds):
                break
        return total

    def _record_refresh_failure(self) -> None:
        telemetry = self.telemetry
        if telemetry is None or not telemetry.enabled:
            return
        telemetry.metrics.counter(
            "schemr_indexer_refresh_failures_total",
            "Scheduled refreshes that raised").inc()

    def stop(self) -> None:
        """Signal :meth:`run_scheduled` to exit."""
        self._stop_event.set()

    # -- persistence ---------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the current index segment to disk."""
        save_index(self._index, path)

    def load(self, path: str | Path) -> None:
        """Replace the in-memory index with a persisted segment.

        The change-log cursor advances to the repository's current head:
        the segment is assumed to be a snapshot of the repository as it
        is now, so subsequent refreshes only replay *future* changes.
        Call :meth:`rebuild` instead when the snapshot's provenance is
        unknown.  Loading a *segment directory* whose manifest recorded
        a change-log cursor resumes from that cursor instead, replaying
        exactly the changes the on-disk state has not seen.
        """
        loaded = load_index(path)
        self._index = loaded
        if isinstance(loaded, SegmentedIndex) and loaded.last_change_id:
            self._last_change_id = loaded.last_change_id
            return
        changes = self._repository.changes_since(self._last_change_id)
        if changes:
            self._last_change_id = changes[-1][0]

    def rebuild(self) -> int:
        """Drop the index (and profile cache) and re-flatten every
        stored schema.

        Rows whose stored payload no longer parses are skipped (and
        logged by the repository) rather than aborting the rebuild: one
        corrupt schema must not take the other 30k offline.
        """
        count = 0
        with self._index.lock, self._refreshing_guard():
            self._index.clear()
            if self._profile_store is not None:
                self._profile_store.clear()
            for schema in self._repository.iter_schemas(skip_corrupt=True):
                self._index.add(document_from_schema(schema))
                if self._profile_store is not None:
                    self._profile_store.put(schema)
                count += 1
        changes = self._repository.changes_since(self._last_change_id)
        if changes:
            self._last_change_id = changes[-1][0]
        self._commit_segments()
        return count
