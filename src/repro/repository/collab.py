"""Collaboration features the paper plans for the public deployment.

"...collaboration functionality that provides usage statistics and
comments on schemas would improve schema search results" / "mechanisms
for users to leave ratings and comments on schemas".

Ratings are one-per-user-per-schema (re-rating overwrites); comments
accumulate; usage statistics count impressions (schema shown in a
result list) and clicks (schema opened for drill-in).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import RepositoryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.repository.store import SchemaRepository


@dataclass(frozen=True, slots=True)
class Rating:
    schema_id: int
    user: str
    stars: int


@dataclass(frozen=True, slots=True)
class Comment:
    comment_id: int
    schema_id: int
    user: str
    body: str
    commented_at: float


@dataclass(frozen=True, slots=True)
class UsageStats:
    schema_id: int
    impressions: int
    clicks: int

    @property
    def click_through_rate(self) -> float:
        if self.impressions == 0:
            return 0.0
        return self.clicks / self.impressions


def _require_schema(repository: "SchemaRepository", schema_id: int) -> None:
    if not repository.has_schema(schema_id):
        raise RepositoryError(f"schema {schema_id} is not in the repository")


def rate_schema(repository: "SchemaRepository", schema_id: int,
                user: str, stars: int) -> None:
    """Record (or overwrite) one user's star rating."""
    _require_schema(repository, schema_id)
    if not 1 <= stars <= 5:
        raise RepositoryError(f"stars must be 1..5, got {stars}")
    if not user.strip():
        raise RepositoryError("user must be non-empty")
    repository.connection.execute(
        "INSERT INTO ratings (schema_id, user, stars, rated_at) "
        "VALUES (?, ?, ?, ?) "
        "ON CONFLICT (schema_id, user) DO UPDATE SET stars = excluded.stars, "
        "rated_at = excluded.rated_at",
        (schema_id, user, stars, time.time()))
    repository.connection.commit()


def average_rating(repository: "SchemaRepository",
                   schema_id: int) -> float | None:
    """Mean stars, or None when unrated."""
    _require_schema(repository, schema_id)
    row = repository.connection.execute(
        "SELECT AVG(stars) AS avg_stars FROM ratings WHERE schema_id = ?",
        (schema_id,)).fetchone()
    return None if row["avg_stars"] is None else float(row["avg_stars"])


def add_comment(repository: "SchemaRepository", schema_id: int,
                user: str, body: str) -> int:
    """Append a comment; returns its id."""
    _require_schema(repository, schema_id)
    if not body.strip():
        raise RepositoryError("comment body must be non-empty")
    cursor = repository.connection.execute(
        "INSERT INTO comments (schema_id, user, body, commented_at) "
        "VALUES (?, ?, ?, ?)", (schema_id, user, body, time.time()))
    repository.connection.commit()
    comment_id = cursor.lastrowid
    assert comment_id is not None
    return comment_id


def comments_for(repository: "SchemaRepository",
                 schema_id: int) -> list[Comment]:
    _require_schema(repository, schema_id)
    rows = repository.connection.execute(
        "SELECT comment_id, schema_id, user, body, commented_at "
        "FROM comments WHERE schema_id = ? ORDER BY comment_id",
        (schema_id,)).fetchall()
    return [Comment(row["comment_id"], row["schema_id"], row["user"],
                    row["body"], row["commented_at"]) for row in rows]


def record_impressions(repository: "SchemaRepository",
                       schema_ids: list[int]) -> None:
    """Count each schema as shown once in a result list."""
    for schema_id in schema_ids:
        repository.connection.execute(
            "INSERT INTO usage_stats (schema_id, impressions, clicks) "
            "VALUES (?, 1, 0) "
            "ON CONFLICT (schema_id) DO UPDATE SET "
            "impressions = impressions + 1", (schema_id,))
    repository.connection.commit()


def record_click(repository: "SchemaRepository", schema_id: int) -> None:
    """Count one drill-in click."""
    repository.connection.execute(
        "INSERT INTO usage_stats (schema_id, impressions, clicks) "
        "VALUES (?, 0, 1) "
        "ON CONFLICT (schema_id) DO UPDATE SET clicks = clicks + 1",
        (schema_id,))
    repository.connection.commit()


def usage_stats(repository: "SchemaRepository",
                schema_id: int) -> UsageStats:
    row = repository.connection.execute(
        "SELECT impressions, clicks FROM usage_stats WHERE schema_id = ?",
        (schema_id,)).fetchone()
    if row is None:
        return UsageStats(schema_id=schema_id, impressions=0, clicks=0)
    return UsageStats(schema_id=schema_id, impressions=row["impressions"],
                      clicks=row["clicks"])
