"""Search history: the meta-learner's training data.

"As Schemr is utilized in practice, we can record search histories to
create a training set of search-term to schema-fragment matches."

Each entry records the query, the schema shown, whether the user judged
it relevant (clicked / marked), and the per-matcher feature scores at
the time of the search — exactly what
:class:`~repro.matching.learner.WeightLearner` consumes.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import RepositoryError
from repro.matching.learner import TrainingExample

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.repository.store import SchemaRepository


@dataclass(frozen=True, slots=True)
class HistoryEntry:
    """One recorded (query, schema, judgement) event."""

    entry_id: int
    query_terms: str
    schema_id: int
    relevant: bool
    features: dict[str, float]
    searched_at: float


def record_search(repository: "SchemaRepository", query_terms: str,
                  schema_id: int, relevant: bool,
                  features: dict[str, float] | None = None) -> int:
    """Append one history entry; returns its id."""
    if not query_terms.strip():
        raise RepositoryError("query_terms must be non-empty")
    if not repository.has_schema(schema_id):
        raise RepositoryError(
            f"schema {schema_id} is not in the repository")
    cursor = repository.connection.execute(
        "INSERT INTO search_history (query_terms, schema_id, relevant, "
        "features, searched_at) VALUES (?, ?, ?, ?, ?)",
        (query_terms, schema_id, int(relevant),
         json.dumps(features or {}), time.time()))
    repository.connection.commit()
    entry_id = cursor.lastrowid
    assert entry_id is not None
    return entry_id


def load_history(repository: "SchemaRepository",
                 limit: int | None = None) -> list[HistoryEntry]:
    """History entries, oldest first."""
    sql = ("SELECT entry_id, query_terms, schema_id, relevant, features, "
           "searched_at FROM search_history ORDER BY entry_id")
    if limit is not None:
        sql += f" LIMIT {int(limit)}"
    rows = repository.connection.execute(sql).fetchall()
    return [
        HistoryEntry(
            entry_id=row["entry_id"],
            query_terms=row["query_terms"],
            schema_id=row["schema_id"],
            relevant=bool(row["relevant"]),
            features=json.loads(row["features"]),
            searched_at=row["searched_at"],
        )
        for row in rows
    ]


def build_training_set(repository: "SchemaRepository",
                       limit: int | None = None) -> list[TrainingExample]:
    """History -> learner examples (entries without features are skipped:
    there is nothing for the learner to weigh)."""
    examples = []
    for entry in load_history(repository, limit=limit):
        if entry.features:
            examples.append(TrainingExample(features=entry.features,
                                            relevant=entry.relevant))
    return examples
