"""The schema repository: Schemr's storage substrate.

The original system sits on Yggdrasil, OpenII's schema repository; this
package provides the equivalent on SQLite: durable schema storage with
a change log, an offline indexer that refreshes the text index "at
scheduled intervals" from that change log, recorded search history (the
meta-learner's training data), and the collaborative features the paper
plans (ratings, comments, usage statistics).
"""

from repro.repository.collab import (
    Comment,
    Rating,
    UsageStats,
    add_comment,
    average_rating,
    comments_for,
    rate_schema,
    record_click,
    record_impressions,
    usage_stats,
)
from repro.repository.history import (
    HistoryEntry,
    build_training_set,
    load_history,
    record_search,
)
from repro.repository.exporter import export_ddl, export_entity_ddl, export_xsd
from repro.repository.indexer import RepositoryIndexer
from repro.repository.store import SchemaRepository

__all__ = [
    "export_ddl",
    "export_entity_ddl",
    "export_xsd",
    "Comment",
    "HistoryEntry",
    "Rating",
    "RepositoryIndexer",
    "SchemaRepository",
    "UsageStats",
    "add_comment",
    "average_rating",
    "build_training_set",
    "comments_for",
    "load_history",
    "rate_schema",
    "record_click",
    "record_impressions",
    "record_search",
    "usage_stats",
]
