"""Generation-aware LRU cache for phase-1 retrieval results.

Repeated queries are the norm at repository scale: a user pages through
results (same analyzed terms, same candidate pool, a different offset —
the engine re-runs phase 1 identically every page), dashboards poll the
same saved searches, and the benchmark harness replays query sets.  The
cache makes all of these near-free.

Invalidation is by *generation*: every cache key embeds the
:attr:`~repro.index.inverted.InvertedIndex.generation` the result was
computed at, so a key built after the indexer refreshes simply cannot
hit an entry computed before it.  Stale entries need no eager purge for
correctness — they are unreachable — but :meth:`evict_stale` drops them
in one sweep so a churning index does not waste capacity on dead keys.

Values are lists of frozen :class:`~repro.index.searcher.IndexHit`
objects; :meth:`get` hands back a fresh list each time so a caller that
mutates its result list cannot corrupt the cached one.

The cache is shared between concurrent searches (the HTTP service runs
one engine) and the background indexer's ``evict_stale`` sweeps, so
every operation runs under one lock — an ``OrderedDict``'s
``move_to_end`` + ``popitem`` pair is not atomic under free-threaded
interleavings, and the hit/miss counters feed the telemetry gauges.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Sequence

#: A cache key: (analyzed terms, top_n, index generation).
QueryKey = tuple[tuple[str, ...], int, int]


class QueryCache:
    """LRU map from (terms, top_n, generation) to ranked hits."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, list] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._stale_evictions = 0

    @staticmethod
    def make_key(terms: Sequence[str], top_n: int,
                 generation: int) -> QueryKey:
        return (tuple(terms), top_n, generation)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    @property
    def evictions(self) -> int:
        """Entries dropped to stay within capacity (LRU overflow)."""
        with self._lock:
            return self._evictions

    @property
    def stale_evictions(self) -> int:
        """Entries dropped by :meth:`evict_stale` generation sweeps."""
        with self._lock:
            return self._stale_evictions

    def get(self, key: Hashable) -> list | None:
        """The cached ranking for ``key`` (a fresh list), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return list(entry)

    def put(self, key: Hashable, hits: Sequence) -> None:
        """Store a ranking, evicting the least recently used overflow."""
        value = list(hits)
        with self._lock:
            entries = self._entries
            entries[key] = value
            entries.move_to_end(key)
            while len(entries) > self._capacity:
                entries.popitem(last=False)
                self._evictions += 1

    def evict_stale(self, generation: int) -> int:
        """Drop entries keyed to any generation but ``generation``.

        Returns the number of entries removed.  Purely a capacity
        optimization — stale keys can never be looked up again.
        """
        with self._lock:
            dead = [key for key in self._entries
                    if isinstance(key, tuple) and len(key) == 3
                    and key[2] != generation]
            for key in dead:
                del self._entries[key]
            self._stale_evictions += len(dead)
            return len(dead)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries
