"""A from-scratch inverted index standing in for Apache Lucene.

The paper stores each schema as a *document* — title, summary, ID, and a
flattened representation of every element — in "an inverted index [of] a
term dictionary of frequency data, proximity data, and normalization
factors, providing a fast and scalable filter for relevant candidate
schemas".  This package provides exactly that:

* :class:`~repro.index.documents.Document` — the indexed unit;
* :class:`~repro.index.inverted.InvertedIndex` — term dictionary with
  postings (doc -> frequency + positions), document store, length norms,
  add/remove/replace;
* :class:`~repro.index.searcher.IndexSearcher` — Lucene-classic TF/IDF
  scoring with the paper's coordination factor, top-n heap retrieval;
* :mod:`~repro.index.segments` — immutable on-disk segments loaded via
  ``mmap`` with zero-copy reads, plus :class:`SegmentedIndex`, the
  segments-and-delta composite that makes cold start O(segment count)
  instead of O(corpus);
* :mod:`~repro.index.store` — persistence routed through the segment
  format (with a read-only legacy JSONL path) so the offline indexer
  can restart "at scheduled intervals" without a rebuild from nothing.
"""

from repro.index.cache import QueryCache
from repro.index.documents import Document, document_from_schema
from repro.index.fuzzy import TrigramIndex
from repro.index.suggest import PrefixSuggester
from repro.index.inverted import IndexSnapshot, InvertedIndex
from repro.index.postings import Posting, PostingsList
from repro.index.scoring import TfIdfScorer
from repro.index.searcher import IndexHit, IndexSearcher
from repro.index.segments import (
    MmapSegment,
    SegmentDirectory,
    SegmentedIndex,
    TieredMergePolicy,
    make_merge_policy,
    write_segment,
)
from repro.index.store import load_index, save_index

__all__ = [
    "Document",
    "PrefixSuggester",
    "QueryCache",
    "TrigramIndex",
    "IndexHit",
    "IndexSearcher",
    "IndexSnapshot",
    "InvertedIndex",
    "MmapSegment",
    "Posting",
    "PostingsList",
    "SegmentDirectory",
    "SegmentedIndex",
    "TfIdfScorer",
    "TieredMergePolicy",
    "document_from_schema",
    "load_index",
    "make_merge_policy",
    "save_index",
    "write_segment",
]
