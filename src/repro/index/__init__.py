"""A from-scratch inverted index standing in for Apache Lucene.

The paper stores each schema as a *document* — title, summary, ID, and a
flattened representation of every element — in "an inverted index [of] a
term dictionary of frequency data, proximity data, and normalization
factors, providing a fast and scalable filter for relevant candidate
schemas".  This package provides exactly that:

* :class:`~repro.index.documents.Document` — the indexed unit;
* :class:`~repro.index.inverted.InvertedIndex` — term dictionary with
  postings (doc -> frequency + positions), document store, length norms,
  add/remove/replace;
* :class:`~repro.index.searcher.IndexSearcher` — Lucene-classic TF/IDF
  scoring with the paper's coordination factor, top-n heap retrieval;
* :mod:`~repro.index.store` — JSON-lines persistence so the offline
  indexer can refresh the index "at scheduled intervals" without a
  rebuild from nothing.
"""

from repro.index.cache import QueryCache
from repro.index.documents import Document, document_from_schema
from repro.index.fuzzy import TrigramIndex
from repro.index.suggest import PrefixSuggester
from repro.index.inverted import IndexSnapshot, InvertedIndex
from repro.index.postings import Posting, PostingsList
from repro.index.scoring import TfIdfScorer
from repro.index.searcher import IndexHit, IndexSearcher
from repro.index.store import load_index, save_index

__all__ = [
    "Document",
    "PrefixSuggester",
    "QueryCache",
    "TrigramIndex",
    "IndexHit",
    "IndexSearcher",
    "IndexSnapshot",
    "InvertedIndex",
    "Posting",
    "PostingsList",
    "TfIdfScorer",
    "document_from_schema",
    "load_index",
    "save_index",
]
