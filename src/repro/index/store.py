"""Index persistence, routed through the binary segment format.

:func:`save_index` serializes any index (in-memory or segmented) into
one immutable segment file — the mmap layout of
:mod:`repro.index.segments.format` — written atomically via
write-temp-then-rename.  :func:`load_index` sniffs what it is given:

* a *segment directory* (``MANIFEST.json`` present) opens as a
  multi-segment :class:`~repro.index.segments.SegmentedIndex`;
* a *segment file* (magic ``SCHMRSEG``) opens as a single-segment
  ``SegmentedIndex`` — O(1) in corpus size, no postings rebuild;
* a *legacy JSON-lines file* (format 1, the pre-segment layout) loads
  through the old rebuild-postings path with a
  :class:`DeprecationWarning` — read-only compatibility; re-saving
  writes the segment format.

The legacy path is deprecated because rebuild-on-load is linear in
total tokens, which is exactly the cold-start cost the segment format
exists to eliminate.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

from repro.errors import IndexError_
from repro.index.documents import Document
from repro.index.inverted import InvertedIndex
from repro.index.segments import MAGIC, SegmentedIndex, write_segment
from repro.index.segments.directory import MANIFEST_NAME

#: Version of the *legacy* JSON-lines layout still accepted on read.
LEGACY_FORMAT_VERSION = 1
FORMAT_VERSION = LEGACY_FORMAT_VERSION


def save_index(index, path: str | Path) -> None:
    """Write ``index`` to ``path`` as one segment file, atomically.

    Accepts anything speaking the index read protocol —
    ``InvertedIndex`` and ``SegmentedIndex`` both qualify (saving a
    segmented index folds its delta and drops tombstones).
    """
    write_segment(path, index)


def load_index(path: str | Path) -> InvertedIndex | SegmentedIndex:
    """Load what :func:`save_index` (or an indexer flush) produced.

    Returns a :class:`SegmentedIndex` for segment files and segment
    directories; legacy JSON-lines files rebuild into an
    :class:`InvertedIndex` (deprecated, see module docstring).
    """
    path = Path(path)
    if path.is_dir():
        if not (path / MANIFEST_NAME).exists():
            raise IndexError_(
                f"index directory {path} has no {MANIFEST_NAME}")
        return SegmentedIndex.open(path)
    if not path.exists():
        raise IndexError_(f"index file {path} does not exist")
    with open(path, "rb") as handle:
        head = handle.read(len(MAGIC))
    if head == MAGIC:
        return SegmentedIndex.from_segment_file(path)
    return _load_legacy_jsonl(path)


def _load_legacy_jsonl(path: Path) -> InvertedIndex:
    """Rebuild an in-memory index from the pre-segment JSONL layout."""
    index = InvertedIndex()
    with open(path, encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise IndexError_(f"index file {path} is empty")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise IndexError_(
                f"index file {path} has a corrupt header") from exc
        if header.get("format") != LEGACY_FORMAT_VERSION:
            raise IndexError_(
                f"index file {path} has unsupported format "
                f"{header.get('format')!r}; expected "
                f"{LEGACY_FORMAT_VERSION}")
        warnings.warn(
            f"index file {path} uses the legacy JSON-lines layout; "
            "loading rebuilds postings (slow). Re-save to migrate to "
            "the mmap segment format.",
            DeprecationWarning, stacklevel=3)
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                document = Document(
                    doc_id=record["doc_id"],
                    title=record["title"],
                    summary=record.get("summary", ""),
                    terms=list(record["terms"]),
                )
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise IndexError_(
                    f"index file {path} is corrupt at line "
                    f"{line_number}") from exc
            index.add(document)
    expected = header.get("documents")
    if expected is not None and expected != index.document_count:
        raise IndexError_(
            f"index file {path} is truncated: header says {expected} "
            f"documents, found {index.document_count}")
    return index
