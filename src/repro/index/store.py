"""Index persistence: JSON-lines segments on disk.

Format: line 1 is a header (format version, document count, term count);
every following line is one document (id, title, summary, analyzed
terms).  Postings are rebuilt on load — at repository scale (tens of
thousands of schema documents) a rebuild is linear in total tokens and
far cheaper than maintaining a mutable on-disk postings format, while
the stored analyzed terms keep load independent of analyzer changes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import IndexError_
from repro.index.documents import Document
from repro.index.inverted import InvertedIndex

FORMAT_VERSION = 1


def save_index(index: InvertedIndex, path: str | Path) -> None:
    """Write the index to ``path`` atomically (write-then-rename)."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    header = {
        "format": FORMAT_VERSION,
        "documents": index.document_count,
        "terms": index.term_count,
        # Informational: the mutation generation the segment was cut at.
        # Loading always rebuilds packed postings from the stored term
        # streams, so the loaded index starts its own generation line.
        "generation": index.generation,
    }
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for document in index.documents():
            record = {
                "doc_id": document.doc_id,
                "title": document.title,
                "summary": document.summary,
                "terms": document.terms,
            }
            handle.write(json.dumps(record) + "\n")
    tmp.replace(path)


def load_index(path: str | Path) -> InvertedIndex:
    """Read an index written by :func:`save_index`, validating the header."""
    path = Path(path)
    if not path.exists():
        raise IndexError_(f"index file {path} does not exist")
    index = InvertedIndex()
    with open(path, encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise IndexError_(f"index file {path} is empty")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise IndexError_(f"index file {path} has a corrupt header") from exc
        if header.get("format") != FORMAT_VERSION:
            raise IndexError_(
                f"index file {path} has unsupported format "
                f"{header.get('format')!r}; expected {FORMAT_VERSION}")
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                document = Document(
                    doc_id=record["doc_id"],
                    title=record["title"],
                    summary=record.get("summary", ""),
                    terms=list(record["terms"]),
                )
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise IndexError_(
                    f"index file {path} is corrupt at line {line_number}") from exc
            index.add(document)
    expected = header.get("documents")
    if expected is not None and expected != index.document_count:
        raise IndexError_(
            f"index file {path} is truncated: header says {expected} "
            f"documents, found {index.document_count}")
    return index
