"""Merge machinery: multi-source postings views and merge policies.

Two concerns live here.  :func:`merge_postings` combines one term's
postings across several sources (mmapped segments and the in-memory
delta) while filtering tombstoned documents — the single-source,
no-tombstone case passes the source's zero-copy view straight through.
:class:`TieredMergePolicy` decides *when* segments should be rewritten:
segments are bucketed into size tiers (powers of ``tier_factor`` over a
floor) and a tier that collects more than ``max_per_tier`` members gets
merged, so write amplification stays logarithmic in corpus size while
the segment count stays bounded.  A segment whose tombstones exceed
``max_dead_fraction`` is rewritten regardless, which is how deleted
postings eventually leave the disk.
"""

from __future__ import annotations

import bisect
from array import array
from dataclasses import dataclass
from typing import Iterator

from repro.errors import IndexError_
from repro.index.documents import Document
from repro.index.postings import Posting


class MergedPostings:
    """One term's postings merged across sources, tombstones applied.

    Presents the same read API as
    :class:`~repro.index.postings.PostingsList`.  The doc-id and
    frequency columns are materialized packed arrays; positions resolve
    lazily through the contributing source postings.
    """

    __slots__ = ("term", "_doc_ids", "_freqs", "_sources",
                 "_collection_frequency", "_max_frequency")

    def __init__(self, term: str, doc_ids: array, freqs: array,
                 sources: list) -> None:
        self.term = term
        self._doc_ids = doc_ids
        self._freqs = freqs
        self._sources = sources
        self._collection_frequency = sum(freqs)
        self._max_frequency = max(freqs, default=0)

    @property
    def document_frequency(self) -> int:
        return len(self._doc_ids)

    @property
    def collection_frequency(self) -> int:
        return self._collection_frequency

    @property
    def max_frequency(self) -> int:
        return self._max_frequency

    def doc_ids_array(self) -> array:
        return self._doc_ids

    def frequencies_array(self) -> array:
        return self._freqs

    @property
    def postings(self) -> list[Posting]:
        return [source.get(doc_id)
                for doc_id, source in zip(self._doc_ids, self._sources)]

    def _find(self, doc_id: int) -> int | None:
        ids = self._doc_ids
        i = bisect.bisect_left(ids, doc_id)
        if i < len(ids) and ids[i] == doc_id:
            return i
        return None

    def get(self, doc_id: int) -> Posting | None:
        i = self._find(doc_id)
        if i is None:
            return None
        return self._sources[i].get(doc_id)

    def frequency(self, doc_id: int) -> int:
        i = self._find(doc_id)
        return 0 if i is None else self._freqs[i]

    def doc_ids(self) -> list[int]:
        return list(self._doc_ids)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.postings)

    def __len__(self) -> int:
        return len(self._doc_ids)

    def __bool__(self) -> bool:
        return len(self._doc_ids) > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MergedPostings(term={self.term!r}, df={len(self._doc_ids)})"


def merge_postings(term: str, sources: list[tuple[object, set[int]]]):
    """Combine one term's postings across ``(postings, kill_set)`` pairs.

    ``kill_set`` holds the tombstoned doc ids *known to occur in that
    source's postings* (callers pre-filter, so probing cost is paid once
    per term, not per read).  Returns the single source unchanged when
    no merging or filtering is needed — that path keeps the mmapped
    zero-copy columns on the hot path — else a :class:`MergedPostings`,
    or ``None`` when nothing survives.
    """
    live = [(postings, kill) for postings, kill in sources if postings]
    if not live:
        return None
    if len(live) == 1 and not live[0][1]:
        return live[0][0]
    entries = []
    for postings, kill in live:
        ids = postings.doc_ids_array()
        freqs = postings.frequencies_array()
        if kill:
            entries.extend(
                (doc_id, freqs[i], postings)
                for i, doc_id in enumerate(ids) if doc_id not in kill)
        else:
            entries.extend(
                (doc_id, freqs[i], postings)
                for i, doc_id in enumerate(ids))
    if not entries:
        return None
    entries.sort(key=lambda entry: entry[0])
    doc_ids = array("q", (entry[0] for entry in entries))
    freqs = array("q", (entry[1] for entry in entries))
    return MergedPostings(term, doc_ids, freqs,
                          [entry[2] for entry in entries])


class CompactionView:
    """A read-only, tombstone-filtered union of segments for rewriting.

    Speaks exactly the slice of the index protocol
    :func:`~repro.index.segments.format.write_segment` consumes
    (``vocabulary`` / ``postings`` / ``documents`` / ``norm`` /
    ``document_count``), so merging K segments into one is just
    ``write_segment(path, CompactionView(segments, dead))``.
    """

    def __init__(self, segments: list, dead: list[set[int]]) -> None:
        self._segments = segments
        self._dead = dead

    @property
    def document_count(self) -> int:
        return sum(seg.document_count - len(dead)
                   for seg, dead in zip(self._segments, self._dead))

    def vocabulary(self) -> Iterator[str]:
        seen: set[str] = set()
        for segment in self._segments:
            for term in segment.vocabulary():
                if term not in seen:
                    seen.add(term)
                    yield term

    def postings(self, term: str):
        sources = []
        for segment, dead in zip(self._segments, self._dead):
            postings = segment.postings(term)
            if postings is None:
                continue
            kill = ({doc_id for doc_id in dead if postings.frequency(doc_id)}
                    if dead else set())
            sources.append((postings, kill))
        return merge_postings(term, sources)

    def documents(self) -> Iterator[Document]:
        for segment, dead in zip(self._segments, self._dead):
            for doc_id in segment.doc_ids():
                if doc_id not in dead:
                    yield segment.document(doc_id)

    def norm(self, doc_id: int) -> float:
        for segment, dead in zip(self._segments, self._dead):
            if doc_id not in dead and segment.has_document(doc_id):
                return segment.norm(doc_id)
        raise IndexError_(f"document {doc_id} is not indexed")


@dataclass(frozen=True)
class TieredMergePolicy:
    """Merge when any size tier collects too many segments.

    A segment's tier is ``floor(log_{tier_factor}(live_docs /
    floor_docs))`` clamped at zero: tier 0 holds everything up to
    ``floor_docs`` live documents, tier 1 up to ``floor_docs *
    tier_factor``, and so on.  The smallest overfull tier merges first —
    exactly the Lucene TieredMergePolicy shape, sized down to this
    codebase.
    """

    max_per_tier: int = 4
    tier_factor: int = 10
    floor_docs: int = 1024
    max_dead_fraction: float = 0.3

    def select(self, live_sizes: list[int],
               dead_counts: list[int]) -> list[int] | None:
        """Indices of segments to merge next, or None when healthy."""
        for i, (live, dead) in enumerate(zip(live_sizes, dead_counts)):
            total = live + dead
            if total and dead / total > self.max_dead_fraction:
                return [i]
        tiers: dict[int, list[int]] = {}
        for i, live in enumerate(live_sizes):
            tier = 0
            size = max(live, 1)
            while size > self.floor_docs:
                size //= self.tier_factor
                tier += 1
            tiers.setdefault(tier, []).append(i)
        for tier in sorted(tiers):
            members = tiers[tier]
            if len(members) > self.max_per_tier:
                return sorted(members)
        return None


@dataclass(frozen=True)
class NoMergePolicy:
    """Never merge — segments accumulate until an explicit compaction."""

    def select(self, live_sizes: list[int],
               dead_counts: list[int]) -> list[int] | None:
        return None


MERGE_POLICIES = ("tiered", "none")


def make_merge_policy(name: str):
    """Resolve a ``--merge-policy`` flag value to a policy object."""
    if name == "tiered":
        return TieredMergePolicy()
    if name == "none":
        return NoMergePolicy()
    raise IndexError_(
        f"unknown merge policy {name!r}; expected one of "
        f"{', '.join(MERGE_POLICIES)}")
