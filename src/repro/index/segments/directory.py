"""Segment directories: a manifest plus immutable segment files.

A segment directory is the durable form of a
:class:`~repro.index.segments.segmented.SegmentedIndex`::

    <dir>/MANIFEST.json     which segments are live, their tombstones
    <dir>/seg_00000001.seg  immutable segment files (format.py layout)

The manifest is the single commit point.  Every state change — a delta
flush, a merge, a rebuild — first writes any new segment file, then
writes ``MANIFEST.json.tmp`` and renames it over the manifest.  A crash
at any point leaves either the old manifest (pointing at the old, still
present segment files) or the new one; half-written segment files are
never referenced and get swept on the next commit.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import IndexError_

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = 1
_SEGMENT_GLOB = "seg_*.seg"


class SegmentDirectory:
    """Filesystem half of the segmented index: naming, manifest, sweep."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    @property
    def manifest_path(self) -> Path:
        return self.path / MANIFEST_NAME

    @classmethod
    def open(cls, path: str | Path, create: bool = False
             ) -> "SegmentDirectory":
        """Open (or, with ``create``, initialize) a segment directory."""
        directory = cls(path)
        if directory.manifest_path.exists():
            return directory
        if not create:
            raise IndexError_(
                f"segment directory {directory.path} has no "
                f"{MANIFEST_NAME}")
        directory.path.mkdir(parents=True, exist_ok=True)
        directory.write_manifest(next_id=1, last_change_id=0, segments=[])
        return directory

    def segment_path(self, segment_id: int) -> Path:
        return self.path / f"seg_{segment_id:08d}.seg"

    def read_manifest(self) -> dict:
        """Parse and validate ``MANIFEST.json``."""
        try:
            raw = self.manifest_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise IndexError_(
                f"segment directory {self.path} has no readable "
                f"{MANIFEST_NAME}: {exc}") from exc
        try:
            manifest = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise IndexError_(
                f"{self.manifest_path} is corrupt: {exc}") from exc
        if manifest.get("format") != MANIFEST_FORMAT:
            raise IndexError_(
                f"{self.manifest_path} has unsupported format "
                f"{manifest.get('format')!r}; expected {MANIFEST_FORMAT}")
        for key in ("next_id", "segments"):
            if key not in manifest:
                raise IndexError_(
                    f"{self.manifest_path} is corrupt: missing {key!r}")
        return manifest

    def write_manifest(self, next_id: int, last_change_id: int,
                       segments: list[dict]) -> None:
        """Commit a new directory state atomically (tmp + rename).

        ``segments`` entries are ``{"file": name, "deleted": [ids]}``.
        After the rename, any ``seg_*.seg`` file the new manifest does
        not reference is an orphan (from a merge, a rebuild, or a crash
        mid-flush) and is unlinked best-effort.
        """
        manifest = {
            "format": MANIFEST_FORMAT,
            "next_id": next_id,
            "last_change_id": last_change_id,
            "segments": segments,
        }
        tmp = self.manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(self.manifest_path)
        self._sweep_orphans({entry["file"] for entry in segments})

    def _sweep_orphans(self, referenced: set[str]) -> None:
        for stray in self.path.glob(_SEGMENT_GLOB):
            if stray.name not in referenced:
                try:
                    stray.unlink()
                except OSError:  # pragma: no cover - unlink race
                    pass  # an open reader on another platform; harmless
        for tmp in self.path.glob("*.seg.tmp"):
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - unlink race
                pass
