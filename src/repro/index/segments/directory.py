"""Segment directories: a manifest plus immutable segment files.

A segment directory is the durable form of a
:class:`~repro.index.segments.segmented.SegmentedIndex`::

    <dir>/MANIFEST.json     which segments are live, their tombstones
    <dir>/seg_00000001.seg  immutable segment files (format.py layout)

The manifest is the single commit point.  Every state change — a delta
flush, a merge, a rebuild, a replica pull — first writes any new
segment file, then writes ``MANIFEST.json.tmp`` and renames it over the
manifest.  A crash at any point leaves either the old manifest
(pointing at the old, still present segment files) or the new one;
half-written segment files are never referenced and get swept on the
next commit or on a sweep-enabled open (the single-writer startup
path).

Manifest entries record each segment's ``bytes`` and ``crc32``
alongside the tombstones, so replicas can verify pulled files and
``schemr verify-index`` can re-check a directory end to end.  Older
manifests without those fields still open; the checksums are
recomputed lazily where needed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import IndexError_, SegmentDirectoryError
from repro.resilience.faults import FAULTS

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = 1
_SEGMENT_GLOB = "seg_*.seg"

#: The operator-facing recovery line for a torn control file.  The
#: atomic tmp+fsync+rename commit discipline means the library never
#: produces one; seeing it implies a disk fault or outside interference.
RECOVERY_HINT = ("recover by restoring this directory from a replica "
                 "(`schemr replicate`) or re-indexing from the "
                 "repository (`schemr index --segment-dir`)")


class SegmentDirectory:
    """Filesystem half of the segmented index: naming, manifest, sweep."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    @property
    def manifest_path(self) -> Path:
        return self.path / MANIFEST_NAME

    @classmethod
    def open(cls, path: str | Path, create: bool = False,
             sweep: bool = False) -> "SegmentDirectory":
        """Open (or, with ``create``, initialize) a segment directory.

        ``sweep`` runs the startup orphan sweep: leftover ``*.tmp``
        files and segment files the committed manifest does not
        reference (debris of a crash mid-flush, mid-merge, or
        mid-pull) are unlinked before anything else reads the
        directory.  Only the single writer — the indexer, or a replica
        syncer — may sweep; a read-only opener (a shard worker
        mmapping the directory while the writer commits) must not,
        because a freshly renamed segment is unreferenced for the
        instant before its manifest lands.
        """
        directory = cls(path)
        if directory.manifest_path.exists():
            if sweep:
                manifest = directory.read_manifest()
                directory._sweep_orphans(
                    {entry["file"] for entry in manifest["segments"]})
            return directory
        if not create:
            raise IndexError_(
                f"segment directory {directory.path} has no "
                f"{MANIFEST_NAME}")
        directory.path.mkdir(parents=True, exist_ok=True)
        directory.write_manifest(next_id=1, last_change_id=0, segments=[])
        return directory

    def segment_path(self, segment_id: int) -> Path:
        return self.path / f"seg_{segment_id:08d}.seg"

    def read_manifest(self) -> dict:
        """Parse and validate ``MANIFEST.json``."""
        try:
            raw = self.manifest_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise IndexError_(
                f"segment directory {self.path} has no readable "
                f"{MANIFEST_NAME}: {exc}") from exc
        try:
            manifest = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SegmentDirectoryError(
                f"{self.manifest_path} is truncated or torn at "
                f"line {exc.lineno}, column {exc.colno}: {exc.msg}",
                path=str(self.manifest_path),
                hint=RECOVERY_HINT) from exc
        if manifest.get("format") != MANIFEST_FORMAT:
            raise IndexError_(
                f"{self.manifest_path} has unsupported format "
                f"{manifest.get('format')!r}; expected {MANIFEST_FORMAT}")
        for key in ("next_id", "segments"):
            if key not in manifest:
                raise SegmentDirectoryError(
                    f"{self.manifest_path} is corrupt: missing {key!r}",
                    path=str(self.manifest_path),
                    hint=RECOVERY_HINT)
        return manifest

    def write_manifest(self, next_id: int, last_change_id: int,
                       segments: list[dict]) -> None:
        """Commit a new directory state atomically (tmp + rename).

        ``segments`` entries are ``{"file": name, "deleted": [ids],
        "bytes": n, "crc32": n}``.  After the rename, any ``seg_*.seg``
        file the new manifest does not reference is an orphan (from a
        merge, a rebuild, or a crash mid-flush) and is unlinked
        best-effort.
        """
        manifest = {
            "format": MANIFEST_FORMAT,
            "next_id": next_id,
            "last_change_id": last_change_id,
            "segments": segments,
        }
        tmp = self.manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        # Crash-injection site: the new manifest is durable under its
        # tmp name; the committed state is still the old manifest.
        FAULTS.hit("segments.manifest.pre_rename")
        tmp.replace(self.manifest_path)
        # Crash-injection site: the commit landed but the orphan sweep
        # has not run — stale segment files linger until the next
        # commit or sweep-enabled open.
        FAULTS.hit("segments.manifest.post_rename")
        self._sweep_orphans({entry["file"] for entry in segments})

    def _sweep_orphans(self, referenced: set[str]) -> None:
        for stray in self.path.glob(_SEGMENT_GLOB):
            if stray.name not in referenced:
                try:
                    stray.unlink()
                except OSError:  # pragma: no cover - unlink race
                    pass  # an open reader on another platform; harmless
        for tmp in self.path.glob("*.tmp"):
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - unlink race
                pass
