"""Doc-id-sharded segment layouts: N segment directories, one index.

A *sharded* segment directory partitions the corpus by document id::

    <dir>/SHARDS.json             {"format": 1, "shards": N}
    <dir>/shard_0000/             a normal segment directory
    <dir>/shard_0000/MANIFEST.json
    <dir>/shard_0000/seg_*.seg
    <dir>/shard_0001/...

Document ``d`` lives in shard ``d % N`` (:func:`shard_of`) — with the
repository's sequential ids this is round-robin assignment, so shards
stay balanced as the corpus grows and a streamed 100k build lands in
its final sharded layout directly, no single-segment rewrite.

:class:`ShardedSegmentIndex` is the single-process face of that layout:
the full :class:`~repro.index.inverted.InvertedIndex` protocol over N
:class:`~repro.index.segments.segmented.SegmentedIndex` handles.
Mutations route by id; reads merge.  Because shards partition the
document space, every merged statistic is exact — ``postings`` merges
per-shard columns into one doc-id-sorted view (no kill sets needed:
each shard already filtered its tombstones), ``document_frequency`` and
``document_count`` are sums, and ``snapshot()`` unions the per-shard
norms.  A searcher over the union therefore scores byte-identically to
a searcher over one flat index holding the same documents, which the
golden-equivalence suite asserts.

Generation semantics are inherited by summation: the union generation
is the sum of the shard generations, so any mutation moves it and
flushes/merges (which leave shard generations alone) do not — the same
cache contract as :class:`SegmentedIndex`.

The same layout is what :mod:`repro.sharding` workers open one shard
of, each in its own process, for scatter-gather serving.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Iterator

from repro.errors import IndexError_, SegmentDirectoryError
from repro.index.documents import Document
from repro.index.inverted import IndexSnapshot
from repro.index.segments.directory import MANIFEST_NAME, RECOVERY_HINT
from repro.index.segments.merge import merge_postings
from repro.index.segments.segmented import SegmentedIndex

SHARDS_NAME = "SHARDS.json"
SHARDS_FORMAT = 1


def shard_of(doc_id: int, shard_count: int) -> int:
    """The shard holding ``doc_id``: round-robin over sequential ids."""
    return doc_id % shard_count


def shard_dir_name(shard_id: int) -> str:
    return f"shard_{shard_id:04d}"


def detect_shard_count(path: str | Path) -> int | None:
    """The shard count of an existing sharded layout, else None."""
    marker = Path(path) / SHARDS_NAME
    if not marker.exists():
        return None
    return _read_shards_marker(marker)


def _read_shards_marker(marker: Path) -> int:
    try:
        raw = marker.read_text(encoding="utf-8")
    except OSError as exc:
        raise IndexError_(f"{marker} is unreadable: {exc}") from exc
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise SegmentDirectoryError(
            f"{marker} is truncated or torn at line {exc.lineno}, "
            f"column {exc.colno}: {exc.msg}",
            path=str(marker), hint=RECOVERY_HINT) from exc
    if data.get("format") != SHARDS_FORMAT:
        raise IndexError_(
            f"{marker} has unsupported format {data.get('format')!r}; "
            f"expected {SHARDS_FORMAT}")
    count = data.get("shards")
    if not isinstance(count, int) or count < 1:
        raise IndexError_(f"{marker} has invalid shard count {count!r}")
    return count


def _write_shards_marker(marker: Path, shard_count: int) -> None:
    tmp = marker.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump({"format": SHARDS_FORMAT, "shards": shard_count}, handle,
                  indent=1)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(marker)


def open_segment_index(path: str | Path, shards: int | None = None,
                       create: bool = False, sweep: bool = False
                       ) -> "SegmentedIndex | ShardedSegmentIndex":
    """Open a segment directory, sharded or flat, detecting the layout.

    An existing layout wins: a ``SHARDS.json`` root opens sharded (and
    a conflicting ``shards`` request is an error, as is asking for
    shards on an existing flat directory — neither is silently
    rewritten).  On a fresh directory an explicit ``shards`` count
    creates a sharded layout — including ``shards=1``, which is a
    worker-pool layout with one shard, not a flat directory — while
    ``shards=None`` creates flat.

    ``sweep`` clears crash debris (orphan segments, ``*.tmp`` files)
    on open; only the directory's single writer may pass it.
    """
    root = Path(path)
    if (root / SHARDS_NAME).exists():
        return ShardedSegmentIndex.open(root, shards=shards, sweep=sweep)
    if (root / MANIFEST_NAME).exists():
        if shards is not None:
            raise IndexError_(
                f"{root} is an existing single-segment directory; "
                f"cannot open it with {shards} shard(s) (rebuild into "
                "a fresh directory instead)")
        return SegmentedIndex.open(root, create=create, sweep=sweep)
    if shards is not None:
        return ShardedSegmentIndex.open(root, shards=shards, create=create,
                                        sweep=sweep)
    return SegmentedIndex.open(root, create=create, sweep=sweep)


class ShardRoot:
    """The filesystem root of a sharded layout (directory-protocol stub).

    Exists so ``index.directory is None`` keeps meaning "nowhere to
    flush" across flat and sharded indexes.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    @property
    def marker_path(self) -> Path:
        return self.path / SHARDS_NAME


class ShardedSegmentIndex:
    """The ``InvertedIndex`` protocol over N doc-id-partitioned shards."""

    def __init__(self, root: ShardRoot,
                 shards: list[SegmentedIndex]) -> None:
        self._root = root
        self._shards = shards
        self._lock = threading.RLock()
        self._memo_generation = -1
        self._postings_memo: dict[str, object] = {}
        self._snapshot: IndexSnapshot | None = None
        self._vocab: list[str] | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path, shards: int | None = None,
             create: bool = False, sweep: bool = False
             ) -> "ShardedSegmentIndex":
        """Open (or, with ``create``, initialize) a sharded layout.

        ``shards`` is required to create and validated against the
        ``SHARDS.json`` marker on reopen — a layout's shard count is
        fixed for life because :func:`shard_of` routing depends on it.
        """
        root = Path(path)
        marker = root / SHARDS_NAME
        if marker.exists():
            count = _read_shards_marker(marker)
            if shards is not None and shards != count:
                raise IndexError_(
                    f"{root} was created with {count} shard(s); cannot "
                    f"reopen with {shards} (the doc-id routing would "
                    "change)")
        else:
            if not create:
                raise IndexError_(f"{root} has no {SHARDS_NAME}")
            if shards is None or shards < 1:
                raise IndexError_(
                    f"a positive shard count is required to create a "
                    f"sharded layout, got {shards!r}")
            if (root / MANIFEST_NAME).exists():
                raise IndexError_(
                    f"{root} is an existing single-segment directory; "
                    "refusing to overlay a sharded layout on it")
            root.mkdir(parents=True, exist_ok=True)
            _write_shards_marker(marker, shards)
            count = shards
        handles = [
            SegmentedIndex.open(root / shard_dir_name(i), create=True,
                                sweep=sweep)
            for i in range(count)
        ]
        return cls(ShardRoot(root), handles)

    # -- shard accessors ---------------------------------------------------

    @property
    def shard_count(self) -> int:  # lint: unlocked (set once in the constructor)
        return len(self._shards)

    def shard(self, shard_id: int) -> SegmentedIndex:
        """The shard's own index handle (single-process access)."""
        return self._shards[shard_id]

    @property
    def shard_dirs(self) -> list[Path]:
        """Per-shard segment directory paths, in shard order."""
        return [self._root.path / shard_dir_name(i)
                for i in range(len(self._shards))]

    def shard_for(self, doc_id: int) -> SegmentedIndex:
        return self._shards[shard_of(doc_id, len(self._shards))]

    # -- concurrency / invalidation ---------------------------------------

    @property
    def generation(self) -> int:  # lint: unlocked (sum of GIL-atomic shard reads; mirrors SegmentedIndex.generation)
        """Sum of shard generations: moves on any mutation, never on a
        flush or merge — the cache-invalidation contract readers rely
        on."""
        return sum(shard.generation for shard in self._shards)

    @property
    def lock(self) -> threading.RLock:
        """The union's mutation lock (ordered before any shard lock)."""
        return self._lock

    @property
    def directory(self) -> ShardRoot:  # lint: unlocked (set once in the constructor)
        """The sharded layout root (never None: sharded layouts are
        always directory-backed)."""
        return self._root

    def _memos(self) -> dict[str, object]:  # lint: unlocked (caller holds the lock)
        """The postings memo for the current generation.  Lock held."""
        generation = self.generation
        if generation != self._memo_generation:
            self._postings_memo = {}
            self._snapshot = None
            self._vocab = None
            self._memo_generation = generation
        return self._postings_memo

    # -- mutation ----------------------------------------------------------

    def add(self, document: Document) -> None:
        with self._lock:
            self.shard_for(document.doc_id).add(document)

    def remove(self, doc_id: int) -> None:
        with self._lock:
            self.shard_for(doc_id).remove(doc_id)

    def replace(self, document: Document) -> None:
        with self._lock:
            self.shard_for(document.doc_id).replace(document)

    def clear(self) -> None:
        with self._lock:
            for shard in self._shards:
                shard.clear()

    # -- statistics --------------------------------------------------------

    @property
    def document_count(self) -> int:
        with self._lock:
            return sum(shard.document_count for shard in self._shards)

    @property
    def term_count(self) -> int:
        with self._lock:
            return len(self._vocabulary_list())

    def has_document(self, doc_id: int) -> bool:
        with self._lock:
            return self.shard_for(doc_id).has_document(doc_id)

    def document(self, doc_id: int) -> Document:
        with self._lock:
            return self.shard_for(doc_id).document(doc_id)

    def documents(self) -> Iterator[Document]:
        with self._lock:
            out: list[Document] = []
            for shard in self._shards:
                out.extend(shard.documents())
            return iter(out)

    def postings(self, term: str):
        """Merged live postings for ``term`` across shards, or None.

        Shards partition the doc-id space, so the merge is a pure
        doc-id-ordered union of already-tombstone-filtered per-shard
        views — kill sets stay empty and the single-source case passes
        through zero-copy.  Memoized per generation.
        """
        with self._lock:
            memo = self._memos()
            try:
                return memo[term]
            except KeyError:
                pass
            sources = []
            for shard in self._shards:
                postings = shard.postings(term)
                if postings is not None:
                    sources.append((postings, set()))
            merged = merge_postings(term, sources)
            memo[term] = merged
            return merged

    def document_frequency(self, term: str) -> int:
        postings = self.postings(term)
        return 0 if postings is None else len(postings)

    def norm(self, doc_id: int) -> float:
        with self._lock:
            return self.shard_for(doc_id).norm(doc_id)

    def snapshot(self) -> IndexSnapshot:
        """The scorer-facing statistics view, cached per generation.

        Unions the per-shard norms; identical in shape and values to a
        flat index holding the same documents.
        """
        with self._lock:
            self._memos()
            snap = self._snapshot
            if snap is None:
                norms: dict[int, float] = {}
                for shard in self._shards:
                    norms.update(shard.snapshot().norms)
                snap = IndexSnapshot(
                    generation=self._memo_generation,
                    document_count=len(norms),
                    norms=norms,
                    max_norm=max(norms.values(), default=0.0),
                    max_doc_id=max(norms, default=-1),
                )
                self._snapshot = snap
            return snap

    def _vocabulary_list(self) -> list[str]:  # lint: unlocked (caller holds the lock)
        self._memos()
        vocab = self._vocab
        if vocab is None:
            seen: set[str] = set()
            for shard in self._shards:
                seen.update(shard.vocabulary())
            vocab = self._vocab = sorted(seen)
        return vocab

    def vocabulary(self) -> Iterator[str]:
        with self._lock:
            return iter(self._vocabulary_list())

    def __len__(self) -> int:
        return self.document_count

    def __contains__(self, doc_id: object) -> bool:
        return isinstance(doc_id, int) and self.has_document(doc_id)

    # -- segment lifecycle -------------------------------------------------

    @property
    def segment_count(self) -> int:
        with self._lock:
            return sum(shard.segment_count for shard in self._shards)

    @property
    def mmap_bytes(self) -> int:
        with self._lock:
            return sum(shard.mmap_bytes for shard in self._shards)

    @property
    def delta_document_count(self) -> int:
        with self._lock:
            return sum(shard.delta_document_count
                       for shard in self._shards)

    @property
    def deleted_count(self) -> int:
        with self._lock:
            return sum(shard.deleted_count for shard in self._shards)

    @property
    def last_change_id(self) -> int:
        """The change-log cursor the whole layout durably reflects.

        The minimum across shards: after a crash between per-shard
        commits, replaying from the laggiest shard's cursor re-applies
        a suffix of changes to the others, which is idempotent
        (replace/remove collapse to current state).
        """
        with self._lock:
            return min((shard.last_change_id for shard in self._shards),
                       default=0)

    def flush(self, last_change_id: int | None = None) -> bool:
        """Flush every shard's delta; returns True if any shard wrote.

        All shards commit the same change-log cursor, so on a clean
        flush :attr:`last_change_id` advances atomically from the
        reader's point of view.
        """
        with self._lock:
            wrote = False
            for shard in self._shards:
                if shard.flush(last_change_id=last_change_id):
                    wrote = True
            return wrote

    def maybe_merge(self, policy) -> int:
        """Offer each shard one policy-selected merge; returns total
        segments merged across shards."""
        with self._lock:
            return sum(shard.maybe_merge(policy)
                       for shard in self._shards)

    def reopen_from_disk(self) -> bool:
        """Re-read every shard's committed manifest and swap in place.

        The replica hot-swap for sharded layouts: each shard reopens
        independently (reusing already-open maps), and the union's
        generation-keyed memos invalidate automatically iff any shard's
        logical content moved, because the union generation is the sum
        of shard generations.  Returns True when any shard changed.
        """
        with self._lock:
            changed = False
            for shard in self._shards:
                if shard.reopen_from_disk():
                    changed = True
            return changed

    def __repr__(self) -> str:  # pragma: no cover - debug aid  # lint: unlocked (debug repr; torn reads acceptable)
        return (f"ShardedSegmentIndex(shards={len(self._shards)}, "
                f"documents={self.document_count})")
