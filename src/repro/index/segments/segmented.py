"""The segmented index: mmapped immutable segments + an in-memory delta.

:class:`SegmentedIndex` presents the full
:class:`~repro.index.inverted.InvertedIndex` protocol — mutations,
statistics, ``snapshot()``, the mutation ``lock`` and ``generation`` —
over a Lucene-style composite:

* zero or more immutable :class:`~repro.index.segments.format.MmapSegment`
  files, opened in O(1) and read zero-copy;
* one small in-memory delta (a plain ``InvertedIndex``) absorbing live
  mutations;
* per-segment tombstone sets hiding deleted segment documents until a
  merge rewrites them away.

Generation semantics are the contract that keeps every cache honest:
**mutations bump the generation, segment swaps do not.**  A flush moves
delta documents into a new immutable segment and a merge rewrites
segments without tombstones — both change the physical layout while
provably preserving every ranking, score, and statistic, so the
:class:`~repro.index.cache.QueryCache`, the trigram vocabulary, and any
handed-out :class:`~repro.index.inverted.IndexSnapshot` stay valid and
stay *warm* across swaps.  Readers that memoized postings views against
the pre-swap layout keep serving identical values; the swapped-out
objects stay alive exactly as long as someone references them.

Single-writer discipline matches the rest of the codebase: the
repository indexer is the only mutator/swapper, searches serialize
against it through ``lock``, and every compound operation (flush,
merge, clear) runs under that lock.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterator

from repro.errors import IndexError_
from repro.index.documents import Document
from repro.index.inverted import IndexSnapshot, InvertedIndex
from repro.index.segments.directory import SegmentDirectory
from repro.index.segments.format import MmapSegment, file_crc32, write_segment
from repro.index.segments.merge import CompactionView, merge_postings
from repro.resilience.faults import FAULTS

#: Bound on the per-generation decoded-document memo (cleared
#: wholesale when full, and on every mutation).
_DOC_MEMO_MAX = 8192


def _entry_meta(entry: dict) -> dict | None:
    """Checksum metadata from a manifest entry, or None for legacy
    manifests that predate per-segment checksums."""
    if "bytes" in entry and "crc32" in entry:
        return {"bytes": entry["bytes"], "crc32": entry["crc32"]}
    return None


def _file_meta(path: Path) -> dict:
    return {"bytes": path.stat().st_size, "crc32": file_crc32(path)}


class SegmentedIndex:
    """An inverted index served from immutable mmapped segments."""

    def __init__(self, directory: SegmentDirectory | None = None) -> None:
        self._directory = directory
        self._segments: list[MmapSegment] = []
        self._deleted: list[set[int]] = []
        # Parallel to _segments: {"bytes", "crc32"} per file, straight
        # from the manifest; None for legacy entries, computed lazily at
        # the next commit so cold open stays O(segment count).
        self._seg_meta: list[dict | None] = []
        self._delta = InvertedIndex()
        self._live_seg_docs = 0
        self._generation = 0
        self._lock = threading.RLock()
        self._snapshot: IndexSnapshot | None = None
        self._postings_memo: dict[str, object] = {}
        self._doc_memo: dict[int, Document] = {}
        self._vocab: list[str] | None = None
        self._next_id = 1
        self._last_change_id = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path, create: bool = False,
             sweep: bool = False) -> "SegmentedIndex":
        """Open a segment directory; O(segment count), not corpus size.

        ``sweep`` forwards to :meth:`SegmentDirectory.open` — writers
        (the indexer, a replica syncer) pass True to clear crash debris
        on startup; read-only openers (shard workers) must not.
        """
        directory = SegmentDirectory.open(path, create=create, sweep=sweep)
        manifest = directory.read_manifest()
        index = cls(directory=directory)
        for entry in manifest["segments"]:
            segment = MmapSegment(directory.path / entry["file"])
            index._segments.append(segment)
            index._deleted.append(set(entry.get("deleted", ())))
            index._seg_meta.append(_entry_meta(entry))
        index._live_seg_docs = sum(
            segment.document_count - len(dead)
            for segment, dead in zip(index._segments, index._deleted))
        index._next_id = manifest["next_id"]
        index._last_change_id = manifest.get("last_change_id", 0)
        return index

    @classmethod
    def from_segment_file(cls, path: str | Path) -> "SegmentedIndex":
        """Wrap a single standalone segment file (no directory).

        The result is fully mutable in memory — changes land in the
        delta — but cannot :meth:`flush`; persist with ``save_index``.
        """
        index = cls(directory=None)
        segment = MmapSegment(path)
        index._segments.append(segment)
        index._deleted.append(set())
        index._seg_meta.append(None)
        index._live_seg_docs = segment.document_count
        return index

    # -- concurrency / invalidation ---------------------------------------

    @property
    def generation(self) -> int:  # lint: unlocked (GIL-atomic int read; mirrors InvertedIndex.generation)
        """Bumped on every mutation; **unchanged** by flushes and
        merges, which preserve rankings by construction."""
        return self._generation

    @property
    def lock(self) -> threading.RLock:
        """The mutation lock (re-entrant, shared with all readers)."""
        return self._lock

    @property
    def directory(self) -> SegmentDirectory | None:  # lint: unlocked (set once in the constructor)
        """The backing directory, or None for a standalone segment
        file (mutable in memory, but unable to :meth:`flush`)."""
        return self._directory

    def _bump(self) -> None:  # lint: unlocked (caller holds the lock; every mutator wraps this)
        """Invalidate generation-scoped caches after a mutation.

        Callers hold the lock (every mutator does).
        """
        self._generation += 1
        self._postings_memo.clear()
        self._doc_memo.clear()
        self._vocab = None

    # -- mutation ----------------------------------------------------------

    def add(self, document: Document) -> None:
        with self._lock:
            if self.has_document(document.doc_id):
                raise IndexError_(
                    f"document {document.doc_id} already indexed; "
                    "use replace()")
            self._delta.add(document)
            self._bump()

    def remove(self, doc_id: int) -> None:
        with self._lock:
            if self._delta.has_document(doc_id):
                self._delta.remove(doc_id)
            else:
                i = self._live_segment_index(doc_id)
                if i is None:
                    raise IndexError_(f"document {doc_id} is not indexed")
                self._deleted[i].add(doc_id)
                self._live_seg_docs -= 1
            self._bump()

    def replace(self, document: Document) -> None:
        with self._lock:
            if self.has_document(document.doc_id):
                self.remove(document.doc_id)
            self.add(document)

    def clear(self) -> None:
        with self._lock:
            for segment in self._segments:
                segment.close()
            self._segments = []
            self._deleted = []
            self._seg_meta = []
            self._live_seg_docs = 0
            self._delta.clear()
            self._bump()

    # -- statistics --------------------------------------------------------

    @property
    def document_count(self) -> int:
        with self._lock:
            return self._live_seg_docs + self._delta.document_count

    @property
    def term_count(self) -> int:
        with self._lock:
            return len(self._vocabulary_list())

    def _live_segment_index(self, doc_id: int) -> int | None:  # lint: unlocked (caller holds the lock)
        """Index of the segment holding the *live* copy of ``doc_id``.

        Newest-first: a replaced document leaves a tombstoned copy in an
        older segment and a live copy in a newer one.  Callers hold the
        lock.
        """
        for i in range(len(self._segments) - 1, -1, -1):
            if (doc_id not in self._deleted[i]
                    and self._segments[i].has_document(doc_id)):
                return i
        return None

    def has_document(self, doc_id: int) -> bool:
        with self._lock:
            return (self._delta.has_document(doc_id)
                    or self._live_segment_index(doc_id) is not None)

    def document(self, doc_id: int) -> Document:
        with self._lock:
            document = self._doc_memo.get(doc_id)
            if document is not None:
                return document
            if self._delta.has_document(doc_id):
                document = self._delta.document(doc_id)
            else:
                i = self._live_segment_index(doc_id)
                if i is None:
                    raise IndexError_(f"document {doc_id} is not indexed")
                document = self._segments[i].document(doc_id)
            # Result pages hit the same documents query after query;
            # skipping the per-segment probes on repeats keeps warm
            # latency at parity with the in-memory index.
            if len(self._doc_memo) >= _DOC_MEMO_MAX:
                self._doc_memo.clear()
            self._doc_memo[doc_id] = document
            return document

    def documents(self) -> Iterator[Document]:
        with self._lock:
            out = list(self._delta.documents())
            for segment, dead in zip(self._segments, self._deleted):
                for doc_id in segment.doc_ids():
                    if doc_id not in dead:
                        out.append(segment.document(doc_id))
            return iter(out)

    def postings(self, term: str):
        """Merged live postings for ``term``, or None.

        Memoized per generation: the common single-source case hands
        back the segment's zero-copy columns (or the delta's live
        ``PostingsList``) untouched; only terms split across sources or
        touched by tombstones materialize a merged view.
        """
        with self._lock:
            try:
                return self._postings_memo[term]
            except KeyError:
                pass
            sources = []
            for segment, dead in zip(self._segments, self._deleted):
                postings = segment.postings(term)
                if postings is None:
                    continue
                kill = ({doc_id for doc_id in dead
                         if postings.frequency(doc_id)}
                        if dead else set())
                sources.append((postings, kill))
            delta_postings = self._delta.postings(term)
            if delta_postings is not None:
                sources.append((delta_postings, set()))
            merged = merge_postings(term, sources)
            self._postings_memo[term] = merged
            return merged

    def document_frequency(self, term: str) -> int:
        postings = self.postings(term)
        return 0 if postings is None else len(postings)

    def norm(self, doc_id: int) -> float:
        with self._lock:
            if self._delta.has_document(doc_id):
                return self._delta.norm(doc_id)
            i = self._live_segment_index(doc_id)
            if i is None:
                raise IndexError_(f"document {doc_id} is not indexed")
            return self._segments[i].norm(doc_id)

    def snapshot(self) -> IndexSnapshot:
        """The scorer-facing statistics view, cached per generation.

        Identical in shape and values to what an in-memory
        ``InvertedIndex`` holding the same documents would produce — the
        golden-equivalence suite asserts exactly that.
        """
        with self._lock:
            snap = self._snapshot
            if snap is None or snap.generation != self._generation:
                norms: dict[int, float] = {}
                for segment, dead in zip(self._segments, self._deleted):
                    if dead:
                        for doc_id, norm in segment.norm_items():
                            if doc_id not in dead:
                                norms[doc_id] = norm
                    else:
                        norms.update(segment.norm_items())
                norms.update(self._delta.snapshot().norms)
                snap = IndexSnapshot(
                    generation=self._generation,
                    document_count=len(norms),
                    norms=norms,
                    max_norm=max(norms.values(), default=0.0),
                    max_doc_id=max(norms, default=-1),
                )
                self._snapshot = snap
            return snap

    def _vocabulary_list(self) -> list[str]:  # lint: unlocked (caller holds the lock)
        """Live terms, sorted; cached per generation.  Lock held."""
        vocab = self._vocab
        if vocab is None:
            seen = set(self._delta.vocabulary())
            any_dead = any(self._deleted)
            for segment in self._segments:
                for term in segment.vocabulary():
                    if term in seen:
                        continue
                    # With tombstones in play a segment term may have no
                    # live documents left; a dead term must not leak
                    # into fuzzy suggestion or compaction.
                    if any_dead and not self.postings(term):
                        continue
                    seen.add(term)
            vocab = self._vocab = sorted(seen)
        return vocab

    def vocabulary(self) -> Iterator[str]:
        with self._lock:
            return iter(self._vocabulary_list())

    def __len__(self) -> int:
        return self.document_count

    def __contains__(self, doc_id: object) -> bool:
        return isinstance(doc_id, int) and self.has_document(doc_id)

    # -- segment lifecycle: flush, merge, commit ---------------------------

    @property
    def segment_count(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def mmap_bytes(self) -> int:
        """Total bytes currently memory-mapped across live segments."""
        with self._lock:
            return sum(segment.size_bytes for segment in self._segments)

    @property
    def delta_document_count(self) -> int:
        """Documents still in the in-memory delta (flushed to zero)."""
        with self._lock:
            return self._delta.document_count

    @property
    def deleted_count(self) -> int:
        """Tombstoned segment documents awaiting a merge."""
        with self._lock:
            return sum(len(dead) for dead in self._deleted)

    @property
    def last_change_id(self) -> int:
        """The repository change-log cursor recorded at the last commit."""
        with self._lock:
            return self._last_change_id

    def flush(self, last_change_id: int | None = None) -> bool:
        """Seal the delta into a new on-disk segment and commit.

        Returns True when a segment was written.  The commit (manifest
        rewrite) always happens so tombstones and the change cursor are
        durable.  **The generation does not move**: the post-swap index
        answers every query identically, so warm caches stay valid.
        """
        with self._lock:
            if self._directory is None:
                raise IndexError_(
                    "index has no segment directory; cannot flush")
            if last_change_id is not None:
                self._last_change_id = last_change_id
            wrote = False
            if self._delta.document_count:
                segment_id = self._next_id
                self._next_id += 1
                seg_path = self._directory.segment_path(segment_id)
                write_segment(seg_path, self._delta)
                segment = MmapSegment(seg_path)
                self._segments.append(segment)
                self._deleted.append(set())
                self._seg_meta.append(_file_meta(seg_path))
                self._live_seg_docs += segment.document_count
                self._delta = InvertedIndex()
                wrote = True
            # Crash-injection site: the new segment file is durable but
            # the manifest still points at the pre-flush state.
            FAULTS.hit("segments.flush.pre_commit")
            self._commit()
            return wrote

    def maybe_merge(self, policy) -> int:
        """Run at most one policy-selected merge; returns segments merged.

        The selected segments are rewritten into one (tombstoned
        documents dropped for good), the manifest commits the swap, and
        the old files are closed and swept.  Like :meth:`flush`, the
        generation is untouched — a merge is a physical rewrite with an
        identical logical index on both sides.
        """
        with self._lock:
            if self._directory is None:
                return 0
            live = [segment.document_count - len(dead)
                    for segment, dead in zip(self._segments, self._deleted)]
            dead_counts = [len(dead) for dead in self._deleted]
            picks = policy.select(live, dead_counts)
            if not picks:
                return 0
            chosen = [self._segments[i] for i in picks]
            dead = [set(self._deleted[i]) for i in picks]
            view = CompactionView(chosen, dead)
            merged_segment = None
            merged_meta = None
            if view.document_count:
                segment_id = self._next_id
                self._next_id += 1
                seg_path = self._directory.segment_path(segment_id)
                write_segment(seg_path, view)
                merged_segment = MmapSegment(seg_path)
                try:
                    merged_meta = _file_meta(seg_path)
                except BaseException:
                    merged_segment.close()
                    raise
            picked = set(picks)
            segments: list[MmapSegment] = []
            deleted: list[set[int]] = []
            metas: list[dict | None] = []
            for i, (segment, tombs) in enumerate(
                    zip(self._segments, self._deleted)):
                if i not in picked:
                    segments.append(segment)
                    deleted.append(tombs)
                    metas.append(self._seg_meta[i])
            if merged_segment is not None:
                segments.append(merged_segment)
                deleted.append(set())
                metas.append(merged_meta)
            self._segments = segments
            self._deleted = deleted
            self._seg_meta = metas
            self._live_seg_docs = sum(
                segment.document_count - len(tombs)
                for segment, tombs in zip(segments, deleted))
            # Crash-injection site: the merged segment is durable, its
            # inputs still referenced by the committed manifest.
            FAULTS.hit("segments.merge.pre_commit")
            self._commit()
            for segment in chosen:
                segment.close()
            return len(chosen)

    def _commit(self) -> None:  # lint: unlocked (caller holds the lock)
        """Rewrite the manifest from current state.  Lock held.

        Legacy segments opened from a pre-checksum manifest get their
        ``bytes``/``crc32`` computed here, once, so every committed
        manifest is replication- and verify-ready.
        """
        entries = []
        for i, (segment, dead) in enumerate(
                zip(self._segments, self._deleted)):
            meta = self._seg_meta[i]
            if meta is None:
                meta = self._seg_meta[i] = _file_meta(segment.path)
            entries.append({"file": segment.path.name,
                            "deleted": sorted(dead),
                            "bytes": meta["bytes"],
                            "crc32": meta["crc32"]})
        self._directory.write_manifest(
            next_id=self._next_id,
            last_change_id=self._last_change_id,
            segments=entries)

    def reopen_from_disk(self) -> bool:
        """Re-read the committed manifest and swap in its segments.

        The replica's hot-swap: after a pull commits a new manifest
        locally, this adopts it in place.  Segments already open are
        reused (their maps, and every memoized view over them, stay
        warm); vanished segments are closed best-effort.  Requires an
        empty delta — a follower never takes local writes, and a swap
        under buffered mutations would silently drop them.

        Returns True when logical content changed (the manifest's
        ``last_change_id`` moved, so the generation bumps and
        generation-keyed caches invalidate) and False for a physical-only
        swap — the primary merged, rankings are identical by
        construction, and warm caches survive per the PR 6 contract.
        """
        with self._lock:
            if self._directory is None:
                raise IndexError_(
                    "index has no segment directory; cannot reopen")
            if self._delta.document_count:
                raise IndexError_(
                    "reopen_from_disk requires an empty delta; this "
                    "index holds local writes")
            manifest = self._directory.read_manifest()
            open_by_name = {segment.path.name: i
                            for i, segment in enumerate(self._segments)}
            segments: list[MmapSegment] = []
            deleted: list[set[int]] = []
            metas: list[dict | None] = []
            reused: set[int] = set()
            for entry in manifest["segments"]:
                i = open_by_name.get(entry["file"])
                if i is None:
                    segments.append(MmapSegment(
                        self._directory.path / entry["file"]))
                else:
                    segments.append(self._segments[i])
                    reused.add(i)
                deleted.append(set(entry.get("deleted", ())))
                metas.append(_entry_meta(entry))
            dropped = [segment for i, segment in enumerate(self._segments)
                       if i not in reused]
            changed = (manifest.get("last_change_id", 0)
                       != self._last_change_id)
            self._segments = segments
            self._deleted = deleted
            self._seg_meta = metas
            self._live_seg_docs = sum(
                segment.document_count - len(dead)
                for segment, dead in zip(segments, deleted))
            self._next_id = manifest["next_id"]
            self._last_change_id = manifest.get("last_change_id", 0)
            if changed:
                self._bump()
            for segment in dropped:
                segment.close()
            return changed

    def __repr__(self) -> str:  # pragma: no cover - debug aid  # lint: unlocked (debug repr; torn reads acceptable)
        return (f"SegmentedIndex(segments={len(self._segments)}, "
                f"delta={self._delta.document_count}, "
                f"deleted={sum(len(d) for d in self._deleted)})")
