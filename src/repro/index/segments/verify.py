"""Offline integrity checking for segment directories.

:func:`verify_directory` is the operator-facing half of the crash
harness (``schemr verify-index``): it walks a flat or sharded layout
and re-checks everything the reader normally trusts — control-file
JSON, per-segment header CRCs, the manifest's recorded ``bytes`` and
``crc32`` against the actual files, section offset monotonicity, sorted
term and doc-id columns, document record bounds, tombstone membership,
and (for sharded layouts) doc-id routing.  Findings come back as a
:class:`VerifyReport` of per-file problems and warnings rather than an
exception, so one torn file does not hide the rest of the picture.

The distinction between the two buckets is recoverability: a *problem*
means committed state cannot be trusted (exit non-zero); a *warning* is
crash debris — orphan segments, leftover ``*.tmp`` files — that the
next sweep-enabled open or commit cleans up on its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from struct import error as struct_error

from repro.errors import SchemrError
from repro.index.segments.directory import SegmentDirectory
from repro.index.segments.format import MmapSegment, file_crc32
from repro.index.segments.sharded import (
    SHARDS_NAME,
    _read_shards_marker,
    shard_dir_name,
    shard_of,
)


@dataclass
class VerifyReport:
    """Outcome of a directory walk: per-file problems and warnings."""

    root: str
    problems: list[tuple[str, str]] = field(default_factory=list)
    warnings: list[tuple[str, str]] = field(default_factory=list)
    segments_checked: int = 0
    documents_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def problem(self, path: Path | str, message: str) -> None:
        self.problems.append((str(path), message))

    def warning(self, path: Path | str, message: str) -> None:
        self.warnings.append((str(path), message))

    def lines(self) -> list[str]:
        """The per-file report, problems first."""
        out = []
        for path, message in self.problems:
            out.append(f"PROBLEM  {path}: {message}")
        for path, message in self.warnings:
            out.append(f"warning  {path}: {message}")
        out.append(
            f"{'FAIL' if self.problems else 'OK'}  {self.root}: "
            f"{self.segments_checked} segment(s), "
            f"{self.documents_checked} document(s), "
            f"{len(self.problems)} problem(s), "
            f"{len(self.warnings)} warning(s)")
        return out


def verify_segment_file(path: str | Path,
                        report: VerifyReport | None = None,
                        shard: tuple[int, int] | None = None
                        ) -> VerifyReport:
    """Deep-check one segment file; findings append to ``report``.

    ``shard`` is ``(shard_id, shard_count)`` when the segment belongs
    to a sharded layout, enabling the doc-id routing check.
    """
    path = Path(path)
    if report is None:
        report = VerifyReport(root=str(path))
    try:
        segment = MmapSegment(path)
    except SchemrError as exc:
        report.problem(path, str(exc))
        return report
    try:
        _check_segment(segment, path, report, shard)
    finally:
        segment.close()
    report.segments_checked += 1
    return report


def _check_segment(segment: MmapSegment, path: Path,
                   report: VerifyReport,
                   shard: tuple[int, int] | None) -> None:
    # Offset columns must be non-decreasing; a violation means the
    # header CRC protected a coherent header over incoherent sections
    # (targeted corruption) or a writer bug.
    for name, column in (("tstr_off", segment._tstr_off),
                         ("post_off", segment._post_off),
                         ("pos_off", segment._pos_off),
                         ("doc_off", segment._doc_off)):
        previous = 0
        for value in column:
            if value < previous:
                report.problem(path, f"{name} offsets are not monotonic")
                return
            previous = value
    # The term dictionary must be strictly sorted — binary search
    # correctness depends on it.
    previous_term = b""
    for i in range(segment.term_count):
        t0, t1 = segment._tstr_off[i], segment._tstr_off[i + 1]
        blob = bytes(segment._term_bytes[t0:t1])
        if i and blob <= previous_term:
            report.problem(path, f"term dictionary unsorted at ordinal {i}")
            return
        previous_term = blob
    # Per-term postings columns: doc ids strictly increasing,
    # frequencies positive and consistent with the positions extents.
    for i in range(segment.term_count):
        p0, p1 = segment._post_off[i], segment._post_off[i + 1]
        ids = segment._doc_ids_blob[p0:p1]
        freqs = segment._freqs_blob[p0:p1]
        previous_id = -1
        total = 0
        for j in range(len(ids)):
            if ids[j] <= previous_id:
                report.problem(
                    path, f"postings doc ids unsorted for term ordinal {i}")
                return
            previous_id = ids[j]
            if freqs[j] <= 0:
                report.problem(
                    path,
                    f"non-positive frequency for term ordinal {i}")
                return
            total += freqs[j]
        if total != segment._pos_off[i + 1] - segment._pos_off[i]:
            report.problem(
                path,
                f"positions extent disagrees with frequencies for "
                f"term ordinal {i}")
            return
    # Document store: sorted ids, routing (sharded layouts), and every
    # record must decode within bounds.
    previous_id = -1
    for i in range(segment.document_count):
        doc_id = segment._norm_ids[i]
        if doc_id <= previous_id:
            report.problem(path, f"document ids unsorted at index {i}")
            return
        previous_id = doc_id
        if shard is not None and shard_of(doc_id, shard[1]) != shard[0]:
            report.problem(
                path,
                f"document {doc_id} routed to shard "
                f"{shard_of(doc_id, shard[1])} but stored in shard "
                f"{shard[0]}")
            return
        try:
            segment._decode_document(i)
        except (ValueError, struct_error, IndexError) as exc:
            report.problem(
                path, f"document record {i} does not decode: {exc}")
            return
        report.documents_checked += 1


def _verify_flat(path: Path, report: VerifyReport,
                 shard: tuple[int, int] | None = None) -> None:
    directory = SegmentDirectory(path)
    try:
        manifest = directory.read_manifest()
    except SchemrError as exc:
        report.problem(directory.manifest_path, str(exc))
        return
    referenced = set()
    for entry in manifest["segments"]:
        seg_path = path / entry["file"]
        referenced.add(entry["file"])
        if not seg_path.exists():
            report.problem(
                seg_path, "referenced by the manifest but missing")
            continue
        actual_bytes = seg_path.stat().st_size
        if "bytes" in entry and entry["bytes"] != actual_bytes:
            report.problem(
                seg_path,
                f"manifest records {entry['bytes']} bytes, file has "
                f"{actual_bytes}")
            continue
        if "crc32" in entry and entry["crc32"] != file_crc32(seg_path):
            report.problem(
                seg_path,
                "manifest crc32 does not match the file contents")
            continue
        before = len(report.problems)
        verify_segment_file(seg_path, report, shard=shard)
        if len(report.problems) > before:
            continue
        # Tombstones must name documents the segment actually holds.
        segment = MmapSegment(seg_path)
        try:
            for doc_id in entry.get("deleted", ()):
                if not segment.has_document(doc_id):
                    report.problem(
                        seg_path,
                        f"tombstone for absent document {doc_id}")
                    break
        finally:
            segment.close()
    for stray in sorted(path.glob("seg_*.seg")):
        if stray.name not in referenced:
            report.warning(stray, "orphan segment (not in the manifest); "
                                  "a sweep-enabled open removes it")
    for tmp in sorted(path.glob("*.tmp")):
        report.warning(tmp, "leftover temp file from an interrupted "
                            "write; a sweep-enabled open removes it")


def verify_directory(path: str | Path) -> VerifyReport:
    """Walk a segment directory — flat or sharded — and re-check it."""
    root = Path(path)
    report = VerifyReport(root=str(root))
    marker = root / SHARDS_NAME
    if not marker.exists():
        if not (root / "MANIFEST.json").exists():
            report.problem(root, "not a segment directory (no "
                                 "MANIFEST.json or SHARDS.json)")
            return report
        _verify_flat(root, report)
        return report
    try:
        count = _read_shards_marker(marker)
    except SchemrError as exc:
        report.problem(marker, str(exc))
        return report
    for shard_id in range(count):
        shard_path = root / shard_dir_name(shard_id)
        if not shard_path.is_dir():
            report.problem(
                shard_path,
                f"{SHARDS_NAME} declares {count} shard(s) but this "
                f"one is missing")
            continue
        _verify_flat(shard_path, report, shard=(shard_id, count))
    return report
