"""The immutable on-disk segment format and its mmap reader.

One segment file holds a complete, self-contained slice of the index:
term dictionary, packed postings columns, positions, length norms, and
the document store.  The layout is columnar and 8-byte aligned so the
reader can expose every numeric section as a zero-copy
``memoryview.cast`` over the ``mmap`` — opening a segment parses a
fixed-size header and builds a handful of views; no postings are
materialized until a query touches them.

File layout (all integers little-endian)::

    header      magic, version, crc32(header), counts, section offsets
    tstr_off    (T+1) x u64   offsets into term_bytes (terms sorted)
    term_bytes  concatenated UTF-8 term strings
    post_off    (T+1) x u64   cumulative document frequency per term
    pos_off     (T+1) x u64   cumulative collection frequency per term
    max_freqs   T x i64       per-term max document frequency
    doc_ids     P x i64       postings doc-id columns, term-major
    freqs       P x i64       parallel frequency columns
    positions   C x i64       term-major, doc-major position streams
    norm_ids    D x i64       sorted doc ids
    norms       D x f64       parallel length norms
    doc_off     (D+1) x u64   offsets into doc_blob
    doc_blob    per-doc packed records (title, summary, term ordinals)

where ``T`` = term count, ``D`` = document count, ``P`` = total
postings (sum of df) and ``C`` = total positions (sum of cf).  A
document's token stream is stored as i32 *ordinals* into the sorted
term dictionary, so the document store shares the dictionary's string
storage and round-trips exactly.

Writing goes through a temp file renamed into place
(:func:`write_segment`), so a crash mid-write never leaves a partial
segment where a reader could find it.  The header records the total
file length; the reader verifies it (plus a header CRC) and raises
:class:`~repro.errors.IndexError_` on any mismatch.
"""

from __future__ import annotations

import bisect
import mmap
import os
import struct
import zlib
from array import array
from pathlib import Path
from typing import Iterator

from repro.errors import IndexError_
from repro.index.documents import Document
from repro.index.postings import Posting
from repro.resilience.faults import FAULTS

MAGIC = b"SCHMRSEG"
FORMAT_VERSION = 1

#: Header: magic, version, crc32, doc_count, term_count, total_postings,
#: total_positions, file_length, then the 12 section offsets.
_SECTIONS = 12
_HEADER = struct.Struct("<8sII5Q" + "Q" * _SECTIONS)
#: CRC covers everything after the crc field itself.
_CRC_OFFSET = 16

#: Decoded-document cache bound per segment: enough to keep every
#: realistic result page warm, small enough to stay out of the way of
#: the mmap memory model (the cache is dropped wholesale when full).
_DOC_CACHE_MAX = 8192

_U64 = struct.Struct("<Q")
_DOC_REC = struct.Struct("<III")  # title_len, summary_len, term_count


def _align8(n: int) -> int:
    return (n + 7) & ~7


def file_crc32(path: str | Path, chunk_bytes: int = 1 << 20) -> int:
    """CRC32 of a whole file, streamed (replication/verify checksums).

    The manifest records this per segment at commit time; replicas
    verify pulled files against it and ``schemr verify-index`` re-checks
    it on demand, so corruption anywhere in the pipeline — torn local
    write, truncated download, bit rot — is named, never silent.
    """
    crc = 0
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_bytes)
            if not block:
                return crc
            crc = zlib.crc32(block, crc)


def _column_bytes(column) -> bytes:
    """Raw little-endian bytes of a packed i64 column.

    Accepts both the in-memory ``array('q')`` columns and the
    zero-copy memoryviews a mapped segment hands out.
    """
    if isinstance(column, memoryview):
        return bytes(column)
    return column.tobytes()


class _SectionWriter:
    """Sequential section writer: tracks offsets, pads to alignment."""

    def __init__(self, handle) -> None:
        self._handle = handle
        self._pos = _HEADER.size
        handle.write(b"\0" * _HEADER.size)
        self.offsets: list[int] = []

    def begin(self) -> None:
        pad = _align8(self._pos) - self._pos
        if pad:
            self._handle.write(b"\0" * pad)
            self._pos += pad
        self.offsets.append(self._pos)

    def write(self, data: bytes) -> None:
        self._handle.write(data)
        self._pos += len(data)

    @property
    def length(self) -> int:
        return self._pos


def write_segment(path: str | Path, index) -> None:
    """Serialize ``index`` into one segment file at ``path``, atomically.

    ``index`` is anything speaking the read side of the
    :class:`~repro.index.inverted.InvertedIndex` protocol
    (``vocabulary`` / ``postings`` / ``documents`` / ``norm``) — the
    live in-memory index, a delta, or a :class:`SegmentedIndex` being
    compacted.  The write happens to ``<path>.tmp`` which is fsynced
    and renamed into place.
    """
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")

    # One pass over the term dictionary gathers every postings-derived
    # column.  Sources like a compaction view materialize a merged
    # postings object per call, so ``index.postings`` is called exactly
    # once per term.  Terms whose live postings are empty (every
    # occurrence tombstoned) are dropped from the dictionary.
    terms = []
    post_off = array("Q", [0])
    pos_off = array("Q", [0])
    max_freqs = array("q")
    doc_ids_buf = bytearray()
    freqs_buf = bytearray()
    positions_buf = array("q")
    total_postings = 0
    total_positions = 0
    for term in sorted(index.vocabulary()):
        postings = index.postings(term)
        if not postings:
            continue
        terms.append(term)
        total_postings += len(postings)
        doc_ids_buf += _column_bytes(postings.doc_ids_array())
        freqs_buf += _column_bytes(postings.frequencies_array())
        max_freqs.append(postings.max_frequency)
        for posting in postings.postings:
            positions_buf.extend(posting.positions)
        total_positions = len(positions_buf)
        post_off.append(total_postings)
        pos_off.append(total_positions)
    ordinals = {term: i for i, term in enumerate(terms)}
    term_blobs = [term.encode("utf-8") for term in terms]

    with open(tmp, "wb") as handle:
        w = _SectionWriter(handle)

        # Term dictionary: string offsets + bytes.
        w.begin()
        offset = 0
        chunks = []
        for blob in term_blobs:
            chunks.append(_U64.pack(offset))
            offset += len(blob)
        chunks.append(_U64.pack(offset))
        w.write(b"".join(chunks))
        w.begin()
        w.write(b"".join(term_blobs))

        # Per-term postings metadata: cumulative df / cf, max freq.
        w.begin()
        w.write(post_off.tobytes())
        w.begin()
        w.write(pos_off.tobytes())
        w.begin()
        w.write(max_freqs.tobytes())

        # Packed postings columns, term-major; then positions,
        # term-major and doc-major (doc order = postings order, so
        # per-doc slices are recoverable from the freqs).
        w.begin()
        w.write(bytes(doc_ids_buf))
        w.begin()
        w.write(bytes(freqs_buf))
        w.begin()
        w.write(positions_buf.tobytes())
        # Crash-injection site: a failure here leaves a torn ``.tmp``
        # with real postings bytes but no norms, doc store, or header —
        # the shape a power cut mid-write produces.  The tmp is never
        # renamed, so no reader can find it; the recovery sweep unlinks
        # it on the next commit or sweep-enabled open.
        FAULTS.hit("segments.write.torn")

        # Norms + document store, doc-id order.
        documents = sorted(index.documents(), key=lambda d: d.doc_id)
        w.begin()
        w.write(array("q", (d.doc_id for d in documents)).tobytes())
        w.begin()
        w.write(array("d", (index.norm(d.doc_id) for d in documents))
                .tobytes())
        w.begin()
        doc_records = []
        offset = 0
        chunks = []
        for document in documents:
            title = document.title.encode("utf-8")
            summary = document.summary.encode("utf-8")
            stream = array("i", (ordinals[t] for t in document.terms))
            record = (_DOC_REC.pack(len(title), len(summary),
                                    len(document.terms))
                      + title + summary + stream.tobytes())
            doc_records.append(record)
            chunks.append(_U64.pack(offset))
            offset += len(record)
        chunks.append(_U64.pack(offset))
        w.write(b"".join(chunks))
        w.begin()
        for record in doc_records:
            w.write(record)

        file_length = w.length
        header = _HEADER.pack(
            MAGIC, FORMAT_VERSION, 0, len(documents), len(terms),
            total_postings, total_positions, file_length, *w.offsets)
        crc = zlib.crc32(header[_CRC_OFFSET:])
        header = header[:12] + struct.pack("<I", crc) + header[_CRC_OFFSET:]
        handle.seek(0)
        handle.write(header)
        handle.flush()
        os.fsync(handle.fileno())
    # Crash-injection site: the segment is complete and durable under
    # its tmp name but not yet visible at ``path``.
    FAULTS.hit("segments.write.pre_rename")
    tmp.replace(path)


class SegmentPostings:
    """Read-only postings of one term inside an mmapped segment.

    Mirrors the read API of :class:`~repro.index.postings.PostingsList`;
    the doc-id and frequency columns are zero-copy ``memoryview`` slices
    of the segment file.  Position streams are decoded on demand (the
    search hot path never touches them).
    """

    __slots__ = ("term", "_doc_ids", "_freqs", "_positions",
                 "_max_frequency", "_collection_frequency")

    def __init__(self, term: str, doc_ids, freqs, positions,
                 max_frequency: int, collection_frequency: int) -> None:
        self.term = term
        self._doc_ids = doc_ids
        self._freqs = freqs
        self._positions = positions
        self._max_frequency = max_frequency
        self._collection_frequency = collection_frequency

    @property
    def document_frequency(self) -> int:
        return len(self._doc_ids)

    @property
    def collection_frequency(self) -> int:
        return self._collection_frequency

    @property
    def max_frequency(self) -> int:
        return self._max_frequency

    def doc_ids_array(self):
        """The sorted doc-id column (a zero-copy memoryview)."""
        return self._doc_ids

    def frequencies_array(self):
        return self._freqs

    def _position_slice(self, i: int) -> list[int]:
        """Positions of the ``i``-th posting (prefix-sums the freqs)."""
        start = 0
        freqs = self._freqs
        for j in range(i):
            start += freqs[j]
        return list(self._positions[start:start + freqs[i]])

    @property
    def postings(self) -> list[Posting]:
        out = []
        start = 0
        for i, doc_id in enumerate(self._doc_ids):
            freq = self._freqs[i]
            out.append(Posting(doc_id,
                               list(self._positions[start:start + freq])))
            start += freq
        return out

    def _find(self, doc_id: int) -> int | None:
        ids = self._doc_ids
        i = bisect.bisect_left(ids, doc_id)
        if i < len(ids) and ids[i] == doc_id:
            return i
        return None

    def get(self, doc_id: int) -> Posting | None:
        i = self._find(doc_id)
        if i is None:
            return None
        return Posting(doc_id, self._position_slice(i))

    def frequency(self, doc_id: int) -> int:
        i = self._find(doc_id)
        return 0 if i is None else self._freqs[i]

    def doc_ids(self) -> list[int]:
        return list(self._doc_ids)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.postings)

    def __len__(self) -> int:
        return len(self._doc_ids)

    def __bool__(self) -> bool:
        return len(self._doc_ids) > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SegmentPostings(term={self.term!r}, "
                f"df={len(self._doc_ids)})")


class MmapSegment:
    """One immutable segment, memory-mapped.

    Opening parses the fixed header and casts the numeric sections to
    typed memoryviews — O(1) in the corpus size, which is what makes
    cold start milliseconds instead of a rebuild.  All lookups are
    binary searches over the mapped columns; term and document payloads
    are decoded lazily on access.

    Readers hand out memoryview slices into the map, so the map stays
    alive as long as any view does; :meth:`close` is best-effort and
    the file is unlinked-safe on POSIX either way.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            self._file = open(self.path, "rb")
        except OSError as exc:
            raise IndexError_(f"segment {self.path} cannot be opened: "
                              f"{exc}") from exc
        try:
            self._mmap = mmap.mmap(self._file.fileno(), 0,
                                   access=mmap.ACCESS_READ)
        except (ValueError, OSError) as exc:
            self._file.close()
            raise IndexError_(f"segment {self.path} cannot be mapped: "
                              f"{exc}") from exc
        view = memoryview(self._mmap)
        if len(view) < _HEADER.size:
            raise IndexError_(f"segment {self.path} is truncated: "
                              f"no room for a header")
        fields = _HEADER.unpack_from(view, 0)
        magic, version, crc = fields[0], fields[1], fields[2]
        if magic != MAGIC:
            raise IndexError_(f"segment {self.path} has a corrupt header "
                              f"(bad magic)")
        if version != FORMAT_VERSION:
            raise IndexError_(
                f"segment {self.path} has unsupported format {version!r}; "
                f"expected {FORMAT_VERSION}")
        expected_crc = zlib.crc32(bytes(view[_CRC_OFFSET:_HEADER.size]))
        if crc != expected_crc:
            raise IndexError_(f"segment {self.path} has a corrupt header "
                              f"(checksum mismatch)")
        (self.document_count, self.term_count, self.total_postings,
         self.total_positions, file_length) = fields[3:8]
        if file_length != len(view):
            raise IndexError_(
                f"segment {self.path} is truncated: header says "
                f"{file_length} bytes, file has {len(view)}")
        offs = fields[8:8 + _SECTIONS]
        T, D = self.term_count, self.document_count
        P, C = self.total_postings, self.total_positions

        def cast(section: int, fmt: str, count: int):
            start = offs[section]
            size = struct.calcsize(fmt) * count
            return view[start:start + size].cast(fmt)

        self._tstr_off = cast(0, "Q", T + 1)
        self._term_bytes = view[offs[1]:offs[1] + self._tstr_off[T]]
        self._post_off = cast(2, "Q", T + 1)
        self._pos_off = cast(3, "Q", T + 1)
        self._max_freqs = cast(4, "q", T)
        self._doc_ids_blob = cast(5, "q", P)
        self._freqs_blob = cast(6, "q", P)
        self._positions_blob = cast(7, "q", C)
        self._norm_ids = cast(8, "q", D)
        self._norms = cast(9, "d", D)
        self._doc_off = cast(10, "Q", D + 1)
        self._doc_blob = view[offs[11]:file_length]
        self._view = view
        self._doc_cache: dict[int, Document] = {}

    # -- lifecycle ---------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """The mapped file length."""
        return len(self._view)

    @property
    def max_doc_id(self) -> int:
        return self._norm_ids[-1] if self.document_count else -1

    def close(self) -> None:
        """Release the map when no views escaped; best-effort otherwise.

        A swapped-out segment may still be referenced by an in-flight
        search's postings views; in that case the map stays alive until
        those views are garbage collected, which is safe (the file may
        already be unlinked — POSIX keeps the mapping valid).
        """
        try:
            self._view.release()
            self._mmap.close()
        except BufferError:
            pass  # exported views keep the map alive; GC will finish
        self._file.close()

    # -- term dictionary ---------------------------------------------------

    def _term_at(self, ordinal: int) -> str:
        start, end = self._tstr_off[ordinal], self._tstr_off[ordinal + 1]
        return str(self._term_bytes[start:end], "utf-8")

    def _term_ordinal(self, term: str) -> int | None:
        blob = term.encode("utf-8")
        lo, hi = 0, self.term_count
        tstr, bytes_ = self._tstr_off, self._term_bytes
        while lo < hi:
            mid = (lo + hi) // 2
            if bytes(bytes_[tstr[mid]:tstr[mid + 1]]) < blob:
                lo = mid + 1
            else:
                hi = mid
        if lo < self.term_count \
                and bytes(bytes_[tstr[lo]:tstr[lo + 1]]) == blob:
            return lo
        return None

    def vocabulary(self) -> Iterator[str]:
        return (self._term_at(i) for i in range(self.term_count))

    # -- postings ----------------------------------------------------------

    def postings(self, term: str) -> SegmentPostings | None:
        ordinal = self._term_ordinal(term)
        if ordinal is None:
            return None
        return self._postings_at(ordinal, term)

    def _postings_at(self, ordinal: int, term: str) -> SegmentPostings:
        p0, p1 = self._post_off[ordinal], self._post_off[ordinal + 1]
        c0, c1 = self._pos_off[ordinal], self._pos_off[ordinal + 1]
        return SegmentPostings(
            term,
            self._doc_ids_blob[p0:p1],
            self._freqs_blob[p0:p1],
            self._positions_blob[c0:c1],
            self._max_freqs[ordinal],
            c1 - c0,
        )

    def document_frequency(self, term: str) -> int:
        ordinal = self._term_ordinal(term)
        if ordinal is None:
            return 0
        return self._post_off[ordinal + 1] - self._post_off[ordinal]

    # -- documents and norms ----------------------------------------------

    def _doc_index(self, doc_id: int) -> int | None:
        ids = self._norm_ids
        i = bisect.bisect_left(ids, doc_id)
        if i < len(ids) and ids[i] == doc_id:
            return i
        return None

    def has_document(self, doc_id: int) -> bool:
        return self._doc_index(doc_id) is not None

    def norm(self, doc_id: int) -> float:
        i = self._doc_index(doc_id)
        if i is None:
            raise IndexError_(f"document {doc_id} is not indexed")
        return self._norms[i]

    def norm_items(self) -> Iterator[tuple[int, float]]:
        """(doc_id, norm) pairs in doc-id order (snapshot building)."""
        return zip(self._norm_ids, self._norms)

    def doc_ids(self) -> Iterator[int]:
        return iter(self._norm_ids)

    def document(self, doc_id: int) -> Document:
        i = self._doc_index(doc_id)
        if i is None:
            raise IndexError_(f"document {doc_id} is not indexed")
        return self._document_at(i)

    def _document_at(self, i: int) -> Document:
        # Result pages re-decode the same hot documents on every
        # query; a bounded cache keeps warm-path latency at parity
        # with the in-memory index without materializing the corpus.
        document = self._doc_cache.get(i)
        if document is not None:
            return document
        document = self._decode_document(i)
        if len(self._doc_cache) >= _DOC_CACHE_MAX:
            self._doc_cache.clear()
        self._doc_cache[i] = document
        return document

    def _decode_document(self, i: int) -> Document:
        blob = self._doc_blob
        offset = self._doc_off[i]
        title_len, summary_len, n_terms = _DOC_REC.unpack_from(blob, offset)
        offset += _DOC_REC.size
        title = str(blob[offset:offset + title_len], "utf-8")
        offset += title_len
        summary = str(blob[offset:offset + summary_len], "utf-8")
        offset += summary_len
        stream = array("i")
        stream.frombytes(blob[offset:offset + 4 * n_terms])
        return Document(
            doc_id=self._norm_ids[i],
            title=title,
            summary=summary,
            terms=[self._term_at(ordinal) for ordinal in stream],
        )

    def documents(self) -> Iterator[Document]:
        return (self._document_at(i) for i in range(self.document_count))

    def __len__(self) -> int:
        return self.document_count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MmapSegment({self.path.name}, docs={self.document_count}, "
                f"terms={self.term_count})")
