"""Immutable on-disk index segments with mmap zero-copy reads.

The package splits Lucene's segment model into four pieces:

* :mod:`~repro.index.segments.format` — the binary single-file segment
  layout, its writer, and the :class:`MmapSegment` reader;
* :mod:`~repro.index.segments.directory` — the manifest-committed
  segment directory (atomic swaps, crash safety, orphan sweeping);
* :mod:`~repro.index.segments.merge` — multi-source postings merging
  and the tiered merge policy;
* :mod:`~repro.index.segments.segmented` — :class:`SegmentedIndex`,
  the ``InvertedIndex``-protocol facade over segments + delta;
* :mod:`~repro.index.segments.verify` — offline integrity checking
  (``schemr verify-index``) for flat and sharded layouts.
"""

from repro.index.segments.directory import SegmentDirectory
from repro.index.segments.format import (
    FORMAT_VERSION,
    MAGIC,
    MmapSegment,
    SegmentPostings,
    file_crc32,
    write_segment,
)
from repro.index.segments.merge import (
    MERGE_POLICIES,
    CompactionView,
    MergedPostings,
    NoMergePolicy,
    TieredMergePolicy,
    make_merge_policy,
    merge_postings,
)
from repro.index.segments.segmented import SegmentedIndex
from repro.index.segments.verify import (
    VerifyReport,
    verify_directory,
    verify_segment_file,
)
from repro.index.segments.sharded import (
    SHARDS_NAME,
    ShardedSegmentIndex,
    detect_shard_count,
    open_segment_index,
    shard_dir_name,
    shard_of,
)

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "MERGE_POLICIES",
    "SHARDS_NAME",
    "CompactionView",
    "MergedPostings",
    "MmapSegment",
    "NoMergePolicy",
    "SegmentDirectory",
    "SegmentPostings",
    "SegmentedIndex",
    "ShardedSegmentIndex",
    "TieredMergePolicy",
    "VerifyReport",
    "detect_shard_count",
    "file_crc32",
    "make_merge_policy",
    "merge_postings",
    "open_segment_index",
    "shard_dir_name",
    "shard_of",
    "verify_directory",
    "verify_segment_file",
    "write_segment",
]
