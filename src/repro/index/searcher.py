"""Top-n retrieval over the inverted index (candidate extraction).

The searcher is term-at-a-time: it walks the postings of each query
term, accumulates per-document score contributions, then selects the top
n with a heap.  This is the "fast and scalable filter for relevant
candidate schemas" of phase one.

Three strategies share one scoring definition and produce *identical*
rankings and scores:

* ``naive`` — the original reference loop: per-posting view objects,
  dict-of-float accumulators, the exception-raising norm accessor.
  Kept as the golden baseline for equivalence tests and benchmarks.
* ``packed`` — the same exhaustive accumulation order, but iterating
  the packed doc-id/frequency columns of
  :class:`~repro.index.postings.PostingsList` and reading norms from a
  plain dict snapshot.
* ``pruned`` (default) — MaxScore-style dynamic pruning on top of the
  packed columns: query terms are processed in descending upper-bound
  (idf-driven max-impact) order, the current top-k threshold is
  maintained, and once no unseen document can possibly enter the top k
  the remaining postings lists are only probed for documents already in
  the accumulator.  Accumulators are dense arrays indexed by doc id.

Byte-identical scores across strategies are non-trivial because float
addition is order-sensitive.  The pruned path therefore keeps one
contribution slot per (query term group, document) and sums the slots
in ascending group order at the end — exactly the addition sequence the
exhaustive loop performs — while pruning decisions use a separate
running total with a conservative safety margin.

An optional :class:`~repro.index.fuzzy.TrigramIndex` widens recall for
query terms absent from the term dictionary (see
:mod:`repro.index.fuzzy`); each expansion's contribution is discounted
by its trigram similarity.

An optional :class:`~repro.index.cache.QueryCache` memoizes whole
rankings keyed on (analyzed terms, top_n, index generation), making
repeated and paged queries near-free and self-invalidating whenever the
indexer refreshes.
"""

from __future__ import annotations

import heapq
from array import array
from bisect import bisect_left
from dataclasses import dataclass

from repro.errors import QueryError
from repro.index.cache import QueryCache
from repro.index.fuzzy import TrigramIndex, expand_query_terms
from repro.index.inverted import InvertedIndex
from repro.index.scoring import TfIdfScorer
from repro.text.analysis import SCHEMA_ANALYZER, Analyzer

#: Pruning skips an unseen document only when its upper bound is below
#: this fraction of the current threshold.  The margin absorbs the
#: (bounded, ~1e-13 relative) drift between the running pruning total
#: and the canonical summation order; score gaps in real corpora are
#: many orders of magnitude wider, so the lost pruning power is nil.
_PRUNE_SAFETY = 1.0 - 1e-9

#: Dense accumulators are used while max_doc_id + 1 stays within this
#: factor of the document count (plus slack for tiny corpora); beyond
#: that the doc-id space is too sparse and the packed exhaustive path
#: (dict accumulators) is used instead.
_DENSE_FACTOR = 4
_DENSE_SLACK = 1024

_STRATEGIES = ("naive", "packed", "pruned")

#: Memoized ``f ** 0.5`` for small term frequencies (the common case by
#: far).  Indexing the tuple returns the exact float the power operator
#: would, so scores stay byte-identical to the reference loop.
_SQRT = tuple(f ** 0.5 for f in range(256))
_SQRT_LIMIT = len(_SQRT)


@dataclass(frozen=True, slots=True)
class IndexHit:
    """One candidate: document id, coarse score, matched-term count."""

    doc_id: int
    score: float
    matched_terms: int
    title: str = ""


@dataclass(frozen=True, slots=True)
class SearchStats:
    """How the last query was answered (telemetry input).

    ``strategy`` is the path that actually executed — a ``pruned``
    searcher falling back to the packed loop on a sparse doc-id space
    reports ``packed``.  ``docs_scored`` counts accumulator entries
    (documents that received at least one term contribution);
    ``pruned_early`` is whether MaxScore reached AND-mode and stopped
    admitting new documents.  On a cache hit nothing was scored.
    """

    strategy: str
    term_count: int
    docs_scored: int = 0
    pruned_early: bool = False
    cache_hit: bool = False


#: One query term group: the analyzed term plus weighted variants
#: (itself at weight 1, fuzzy expansions at their similarity).
_TermGroup = list[tuple[str, float]]


@dataclass(frozen=True, slots=True)
class PreparedQuery:
    """An analyzed query with its term groups and idf values pinned.

    Produced by :meth:`IndexSearcher.prepare` and consumed by
    :meth:`IndexSearcher.search_prepared`.  The point of pinning is
    distributed retrieval: a scatter-gather front prepares the query
    once against the *global* corpus statistics (document counts,
    per-term document frequencies, fuzzy expansions over the global
    vocabulary) and broadcasts the prepared form to per-shard workers,
    whose local statistics would otherwise disagree with the
    single-index scores.  Every field is a hashable tuple so a prepared
    query can key a :class:`~repro.index.cache.QueryCache` directly.
    """

    #: The analyzed query terms (one per term group).
    terms: tuple[str, ...]
    #: Per-term variant groups: ``((term, weight), ...)`` per group —
    #: the term itself at weight 1.0 plus any fuzzy expansions.
    groups: tuple[tuple[tuple[str, float], ...], ...]
    #: ``(term, idf)`` for every distinct variant term, sorted by term.
    idf: tuple[tuple[str, float], ...]

    def idf_map(self) -> dict[str, float]:
        """The pinned idf values as a lookup dict."""
        return dict(self.idf)


class IndexSearcher:
    """Executes analyzed keyword queries against an :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex,
                 analyzer: Analyzer = SCHEMA_ANALYZER,
                 use_coordination: bool = True,
                 fuzzy: TrigramIndex | None = None,
                 strategy: str = "pruned",
                 query_cache: QueryCache | None = None) -> None:
        if strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of "
                f"{_STRATEGIES}")
        self._index = index
        self._analyzer = analyzer
        self._scorer = TfIdfScorer(index, use_coordination=use_coordination)
        self._fuzzy = fuzzy
        self._strategy = strategy
        self._cache = query_cache
        self._cache_generation = index.generation
        # Dense norm column for the pruned hot loop, rebuilt lazily
        # whenever the index generation moves: (generation, array).
        self._dense_norms: tuple[int, array] | None = None
        # Overwritten per query (same lifecycle as engine.last_trace).
        self.last_stats: SearchStats | None = None

    @property
    def index(self) -> InvertedIndex:
        return self._index

    @property
    def scorer(self) -> TfIdfScorer:
        return self._scorer

    @property
    def fuzzy(self) -> TrigramIndex | None:
        return self._fuzzy

    @property
    def strategy(self) -> str:
        return self._strategy

    @property
    def query_cache(self) -> QueryCache | None:
        return self._cache

    def analyze_query(self, raw_terms: list[str]) -> list[str]:
        """Run the flattened query words through the analyzer chain.

        With fuzzy expansion enabled, known abbreviations are expanded
        first so ``ht`` reaches the index as ``height``.
        """
        if self._fuzzy is not None:
            raw_terms = expand_query_terms(raw_terms)
        return self._analyzer.analyze_all(raw_terms)

    def search(self, raw_terms: list[str], top_n: int = 10) -> list[IndexHit]:
        """Return the ``top_n`` highest-scoring candidates.

        ``raw_terms`` is the flattened query graph (keywords + fragment
        element names); analysis happens here so callers hand over raw
        user words.  Raises :class:`QueryError` when nothing survives
        analysis (an all-stopword query is unanswerable).
        """
        if top_n <= 0:
            raise QueryError(f"top_n must be positive, got {top_n}")
        terms = self.analyze_query(raw_terms)
        if not terms:
            raise QueryError(
                "query is empty after analysis; supply at least one "
                "non-stopword term")
        cache = self._cache
        if cache is None:
            return self._search_analyzed(terms, top_n)
        generation = self._index.generation
        if generation != self._cache_generation:
            cache.evict_stale(generation)
            self._cache_generation = generation
        key = QueryCache.make_key(terms, top_n, generation)
        hits = cache.get(key)
        if hits is None:
            hits = self._search_analyzed(terms, top_n)
            cache.put(key, hits)
        else:
            self.last_stats = SearchStats(
                strategy=self._strategy, term_count=len(terms),
                cache_hit=True)
        return hits

    def prepare(self, raw_terms: list[str]) -> PreparedQuery:
        """Analyze a query and pin its term groups and idf values.

        The returned :class:`PreparedQuery` reproduces this searcher's
        view of the corpus statistics; running it through
        :meth:`search_prepared` on *this* searcher returns exactly what
        :meth:`search` would, and running it on a searcher over any
        subset of the corpus scores that subset with the global
        statistics — the building block for exact sharded retrieval.
        Raises :class:`QueryError` when nothing survives analysis.
        """
        terms = self.analyze_query(raw_terms)
        if not terms:
            raise QueryError(
                "query is empty after analysis; supply at least one "
                "non-stopword term")
        with self._index.lock:
            groups = self._term_groups(terms)
            idf: dict[str, float] = {}
            for group in groups:
                for term, _weight in group:
                    if term not in idf:
                        idf[term] = self._scorer.idf(term)
        return PreparedQuery(
            terms=tuple(terms),
            groups=tuple(tuple(group) for group in groups),
            idf=tuple(sorted(idf.items())))

    def search_prepared(self, prepared: PreparedQuery,
                        top_n: int = 10) -> list[IndexHit]:
        """Return the ``top_n`` candidates for a pinned query.

        No analysis, fuzzy expansion, or idf computation happens here:
        the prepared query's groups and idf values are used verbatim,
        so the same prepared query scores identically on every index it
        runs against (documents only contribute through their local
        postings and norms, both per-document quantities).
        """
        if top_n <= 0:
            raise QueryError(f"top_n must be positive, got {top_n}")
        terms = list(prepared.terms)
        groups = [list(group) for group in prepared.groups]
        idf = prepared.idf_map()
        cache = self._cache
        if cache is None:
            return self._search_pinned(terms, groups, idf, top_n)
        generation = self._index.generation
        if generation != self._cache_generation:
            cache.evict_stale(generation)
            self._cache_generation = generation
        # Same 3-tuple shape as make_key (generation last) so
        # evict_stale sweeps prepared entries too.
        key = (prepared, top_n, generation)
        hits = cache.get(key)
        if hits is None:
            hits = self._search_pinned(terms, groups, idf, top_n)
            cache.put(key, hits)
        else:
            self.last_stats = SearchStats(
                strategy=self._strategy, term_count=len(terms),
                cache_hit=True)
        return hits

    def _search_pinned(self, terms: list[str], groups: list[_TermGroup],
                       idf: dict[str, float], top_n: int) -> list[IndexHit]:
        with self._index.lock:
            return self._dispatch(terms, groups, idf, top_n)

    def _term_groups(self, terms: list[str]) -> list[_TermGroup]:
        """Each analyzed term with its weighted variants."""
        groups: list[_TermGroup] = []
        for term in terms:
            group: _TermGroup = [(term, 1.0)]
            if (self._fuzzy is not None
                    and self._index.document_frequency(term) == 0):
                group.extend((e.term, e.similarity)
                             for e in self._fuzzy.suggest(term))
            groups.append(group)
        return groups

    def _search_analyzed(self, terms: list[str], top_n: int) -> list[IndexHit]:
        # The mutation lock makes a search atomic against a background
        # indexer refresh: readers never observe a half-applied batch.
        with self._index.lock:
            return self._dispatch(terms, self._term_groups(terms), None,
                                  top_n)

    def _dispatch(self, terms: list[str], groups: list[_TermGroup],
                  idf: dict[str, float] | None,
                  top_n: int) -> list[IndexHit]:
        """Run the configured strategy with resolved groups.

        ``idf`` is ``None`` for local queries (each term's idf comes
        from this index's statistics, exactly as before) or a pinned
        map for prepared queries.  Must be called under the index lock.
        """
        if self._strategy == "naive":
            return self._search_naive(terms, groups, idf, top_n)
        if self._strategy == "packed":
            return self._search_packed(terms, groups, idf, top_n)
        return self._search_pruned(terms, groups, idf, top_n)

    def _idf(self, term: str, idf: dict[str, float] | None) -> float:
        if idf is None:
            return self._scorer.idf(term)
        return idf.get(term, 0.0)

    # -- naive: the golden reference loop ----------------------------------

    def _search_naive(self, terms: list[str], groups: list[_TermGroup],
                      idf: dict[str, float] | None,
                      top_n: int) -> list[IndexHit]:
        # Term-at-a-time accumulation: scores[doc] = sum of per-term
        # parts; a document "matches" a query term when any variant of
        # its group hit.
        scores: dict[int, float] = {}
        matched: dict[int, int] = {}
        for group in groups:
            group_docs: set[int] = set()
            for term, weight in group:
                postings = self._index.postings(term)
                if postings is None:
                    continue
                idf_sq = self._idf(term, idf) ** 2
                for posting in postings:
                    part = (weight * (posting.frequency ** 0.5) * idf_sq
                            * self._index.norm(posting.doc_id))
                    scores[posting.doc_id] = \
                        scores.get(posting.doc_id, 0.0) + part
                    group_docs.add(posting.doc_id)
            for doc_id in group_docs:
                matched[doc_id] = matched.get(doc_id, 0) + 1
        if self._scorer.use_coordination and terms:
            total_terms = len(terms)
            for doc_id in scores:
                scores[doc_id] *= matched[doc_id] / total_terms
        self.last_stats = SearchStats(
            strategy="naive", term_count=len(terms),
            docs_scored=len(scores))
        return self._top_hits(scores.items(), matched, top_n)

    # -- packed: exhaustive over the packed columns ------------------------

    def _search_packed(self, terms: list[str], groups: list[_TermGroup],
                       idf: dict[str, float] | None,
                       top_n: int) -> list[IndexHit]:
        norms = self._index.snapshot().norms
        scores: dict[int, float] = {}
        matched: dict[int, int] = {}
        for group in groups:
            group_docs: set[int] = set()
            for term, weight in group:
                postings = self._index.postings(term)
                if postings is None:
                    continue
                idf_sq = self._idf(term, idf) ** 2
                for doc_id, freq in zip(postings.doc_ids_array(),
                                        postings.frequencies_array()):
                    part = (weight * (freq ** 0.5) * idf_sq
                            * norms[doc_id])
                    scores[doc_id] = scores.get(doc_id, 0.0) + part
                    group_docs.add(doc_id)
            for doc_id in group_docs:
                matched[doc_id] = matched.get(doc_id, 0) + 1
        if self._scorer.use_coordination and terms:
            total_terms = len(terms)
            for doc_id in scores:
                scores[doc_id] *= matched[doc_id] / total_terms
        self.last_stats = SearchStats(
            strategy="packed", term_count=len(terms),
            docs_scored=len(scores))
        return self._top_hits(scores.items(), matched, top_n)

    # -- pruned: MaxScore-style term-at-a-time -----------------------------

    def _search_pruned(self, terms: list[str], groups: list[_TermGroup],
                       idf: dict[str, float] | None,
                       top_n: int) -> list[IndexHit]:
        snapshot = self._index.snapshot()
        if snapshot.document_count == 0:
            self.last_stats = SearchStats(strategy="pruned",
                                          term_count=len(terms))
            return []
        capacity = snapshot.max_doc_id + 1
        if capacity > _DENSE_FACTOR * snapshot.document_count + _DENSE_SLACK:
            # Doc-id space too sparse for dense accumulators; the packed
            # exhaustive path is exact and still fast.
            return self._search_packed(terms, groups, idf, top_n)
        norms = self._dense_norm_column(snapshot, capacity)
        max_norm = snapshot.max_norm
        n_groups = len(groups)
        use_coordination = self._scorer.use_coordination

        # Resolve each group's variants once: (weight, idf^2, postings),
        # plus the group's score upper bound — the most any single
        # document could collect from the whole group, via the per-term
        # max-impact statistic and the corpus-wide max norm.
        resolved: list[list[tuple[float, float, object]]] = []
        group_ubs: list[float] = []
        for group in groups:
            items: list[tuple[float, float, object]] = []
            ub = 0.0
            for term, weight in group:
                postings = self._index.postings(term)
                if postings is None:
                    continue
                idf_sq = self._idf(term, idf) ** 2
                items.append((weight, idf_sq, postings))
                ub += (weight * (postings.max_frequency ** 0.5) * idf_sq
                       * max_norm)
            resolved.append(items)
            group_ubs.append(ub)

        # MaxScore ordering: highest-impact (rarest / highest idf)
        # groups first so the threshold rises before the long lists.
        order = sorted(range(n_groups),
                       key=lambda g: (-group_ubs[g], g))
        # suffix_ub[r] = best possible score from groups order[r:].
        suffix_ub = [0.0] * (n_groups + 1)
        for r in range(n_groups - 1, -1, -1):
            suffix_ub[r] = suffix_ub[r + 1] + group_ubs[order[r]]

        # Dense accumulators.  slots[g] keeps each group's contribution
        # separate so the final per-document sum can replay the
        # exhaustive addition order; running[d] is the pruning total.
        zeros = bytes(8 * capacity)
        slots = [array("d", zeros) for _ in range(n_groups)]
        running = array("d", zeros)
        matched = array("i", bytes(4 * capacity))
        touched: list[int] = []

        and_mode = False
        for rank, gi in enumerate(order):
            if not and_mode and len(touched) >= top_n:
                # Can any unseen document still reach the top k?  Its
                # best case takes every remaining group's upper bound
                # and, with coordination, at most the remaining share
                # of the query terms.
                new_doc_ub = suffix_ub[rank]
                if use_coordination:
                    new_doc_ub *= (n_groups - rank) / n_groups
                if use_coordination:
                    lower_bounds = (running[d] * matched[d] / n_groups
                                    for d in touched)
                else:
                    lower_bounds = (running[d] for d in touched)
                threshold = heapq.nlargest(top_n, lower_bounds)[-1]
                if new_doc_ub < threshold * _PRUNE_SAFETY:
                    and_mode = True
            slot = slots[gi]
            if not and_mode:
                for weight, idf_sq, postings in resolved[gi]:
                    ids = postings.doc_ids_array()
                    freqs = postings.frequencies_array()
                    # weight == 1.0 (every non-fuzzy variant) multiplies
                    # exactly to the same float, so the reference
                    # expression's leading factor can be elided.
                    unit_weight = weight == 1.0
                    for doc_id, freq in zip(ids, freqs):
                        sqrt_tf = (_SQRT[freq] if freq < _SQRT_LIMIT
                                   else freq ** 0.5)
                        if unit_weight:
                            part = sqrt_tf * idf_sq * norms[doc_id]
                        else:
                            part = (weight * sqrt_tf * idf_sq
                                    * norms[doc_id])
                        prev = slot[doc_id]
                        slot[doc_id] = prev + part
                        running[doc_id] += part
                        if prev == 0.0:
                            if matched[doc_id] == 0:
                                touched.append(doc_id)
                            matched[doc_id] += 1
            else:
                # No new accumulator entries from here on, so the
                # pruning total (`running`) is dead weight — only the
                # per-group slots and matched counts still matter.
                for weight, idf_sq, postings in resolved[gi]:
                    ids = postings.doc_ids_array()
                    freqs = postings.frequencies_array()
                    unit_weight = weight == 1.0
                    if len(touched) <= len(ids):
                        # Probe the accumulator docs against the sorted
                        # doc-id column instead of walking the list.
                        n_ids = len(ids)
                        for doc_id in touched:
                            i = bisect_left(ids, doc_id)
                            if i == n_ids or ids[i] != doc_id:
                                continue
                            freq = freqs[i]
                            sqrt_tf = (_SQRT[freq] if freq < _SQRT_LIMIT
                                       else freq ** 0.5)
                            if unit_weight:
                                part = sqrt_tf * idf_sq * norms[doc_id]
                            else:
                                part = (weight * sqrt_tf * idf_sq
                                        * norms[doc_id])
                            prev = slot[doc_id]
                            slot[doc_id] = prev + part
                            if prev == 0.0:
                                matched[doc_id] += 1
                    else:
                        for doc_id, freq in zip(ids, freqs):
                            if matched[doc_id] == 0:
                                continue
                            sqrt_tf = (_SQRT[freq] if freq < _SQRT_LIMIT
                                       else freq ** 0.5)
                            if unit_weight:
                                part = sqrt_tf * idf_sq * norms[doc_id]
                            else:
                                part = (weight * sqrt_tf * idf_sq
                                        * norms[doc_id])
                            prev = slot[doc_id]
                            slot[doc_id] = prev + part
                            if prev == 0.0:
                                matched[doc_id] += 1

        # Final scores: replay the exhaustive addition order — ascending
        # group index, skipping groups the document did not match (the
        # exhaustive loop adds nothing for those).
        def final_scores():
            for doc_id in touched:
                total = 0.0
                for g in range(n_groups):
                    part = slots[g][doc_id]
                    if part:
                        total += part
                if use_coordination:
                    total *= matched[doc_id] / n_groups
                yield doc_id, total

        self.last_stats = SearchStats(
            strategy="pruned", term_count=len(terms),
            docs_scored=len(touched), pruned_early=and_mode)
        return self._top_hits(final_scores(), matched, top_n)

    def _dense_norm_column(self, snapshot, capacity: int) -> array:
        """Norms as a doc-id-indexed array, cached per generation.

        Holds the exact floats of the norms dict (unindexed slots stay
        0.0 and are never read — postings only reference live docs), so
        the hot loop gathers with a C-level array index instead of a
        dict hash per posting.
        """
        cached = self._dense_norms
        if cached is not None and cached[0] == snapshot.generation \
                and len(cached[1]) >= capacity:
            return cached[1]
        column = array("d", bytes(8 * capacity))
        for doc_id, norm in snapshot.norms.items():
            column[doc_id] = norm
        self._dense_norms = (snapshot.generation, column)
        return column

    # -- shared tail -------------------------------------------------------

    def _top_hits(self, scored, matched, top_n: int) -> list[IndexHit]:
        best = heapq.nlargest(top_n, scored,
                              key=lambda item: (item[1], -item[0]))
        return [
            IndexHit(doc_id=doc_id, score=score,
                     matched_terms=matched[doc_id],
                     title=self._index.document(doc_id).title)
            for doc_id, score in best
        ]
