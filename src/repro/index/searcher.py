"""Top-n retrieval over the inverted index (candidate extraction).

The searcher is term-at-a-time: it walks the postings of each query
term, accumulates per-document score contributions in a dictionary, then
selects the top n with a heap.  This is the "fast and scalable filter
for relevant candidate schemas" of phase one.

An optional :class:`~repro.index.fuzzy.TrigramIndex` widens recall for
query terms absent from the term dictionary (see
:mod:`repro.index.fuzzy`); each expansion's contribution is discounted
by its trigram similarity.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import QueryError
from repro.index.fuzzy import TrigramIndex, expand_query_terms
from repro.index.inverted import InvertedIndex
from repro.index.scoring import TfIdfScorer
from repro.text.analysis import SCHEMA_ANALYZER, Analyzer


@dataclass(frozen=True, slots=True)
class IndexHit:
    """One candidate: document id, coarse score, matched-term count."""

    doc_id: int
    score: float
    matched_terms: int
    title: str = ""


#: One query term group: the analyzed term plus weighted variants
#: (itself at weight 1, fuzzy expansions at their similarity).
_TermGroup = list[tuple[str, float]]


class IndexSearcher:
    """Executes analyzed keyword queries against an :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex,
                 analyzer: Analyzer = SCHEMA_ANALYZER,
                 use_coordination: bool = True,
                 fuzzy: TrigramIndex | None = None) -> None:
        self._index = index
        self._analyzer = analyzer
        self._scorer = TfIdfScorer(index, use_coordination=use_coordination)
        self._fuzzy = fuzzy

    @property
    def index(self) -> InvertedIndex:
        return self._index

    @property
    def scorer(self) -> TfIdfScorer:
        return self._scorer

    @property
    def fuzzy(self) -> TrigramIndex | None:
        return self._fuzzy

    def analyze_query(self, raw_terms: list[str]) -> list[str]:
        """Run the flattened query words through the analyzer chain.

        With fuzzy expansion enabled, known abbreviations are expanded
        first so ``ht`` reaches the index as ``height``.
        """
        if self._fuzzy is not None:
            raw_terms = expand_query_terms(raw_terms)
        return self._analyzer.analyze_all(raw_terms)

    def search(self, raw_terms: list[str], top_n: int = 10) -> list[IndexHit]:
        """Return the ``top_n`` highest-scoring candidates.

        ``raw_terms`` is the flattened query graph (keywords + fragment
        element names); analysis happens here so callers hand over raw
        user words.  Raises :class:`QueryError` when nothing survives
        analysis (an all-stopword query is unanswerable).
        """
        if top_n <= 0:
            raise QueryError(f"top_n must be positive, got {top_n}")
        terms = self.analyze_query(raw_terms)
        if not terms:
            raise QueryError(
                "query is empty after analysis; supply at least one "
                "non-stopword term")
        return self._search_analyzed(terms, top_n)

    def _term_groups(self, terms: list[str]) -> list[_TermGroup]:
        """Each analyzed term with its weighted variants."""
        groups: list[_TermGroup] = []
        for term in terms:
            group: _TermGroup = [(term, 1.0)]
            if (self._fuzzy is not None
                    and self._index.document_frequency(term) == 0):
                group.extend((e.term, e.similarity)
                             for e in self._fuzzy.suggest(term))
            groups.append(group)
        return groups

    def _search_analyzed(self, terms: list[str], top_n: int) -> list[IndexHit]:
        # Term-at-a-time accumulation: scores[doc] = sum of per-term
        # parts; a document "matches" a query term when any variant of
        # its group hit.
        scores: dict[int, float] = {}
        matched: dict[int, int] = {}
        for group in self._term_groups(terms):
            group_docs: set[int] = set()
            for term, weight in group:
                postings = self._index.postings(term)
                if postings is None:
                    continue
                idf_sq = self._scorer.idf(term) ** 2
                for posting in postings:
                    part = (weight * (posting.frequency ** 0.5) * idf_sq
                            * self._index.norm(posting.doc_id))
                    scores[posting.doc_id] = \
                        scores.get(posting.doc_id, 0.0) + part
                    group_docs.add(posting.doc_id)
            for doc_id in group_docs:
                matched[doc_id] = matched.get(doc_id, 0) + 1
        if self._scorer.use_coordination and terms:
            total_terms = len(terms)
            for doc_id in scores:
                scores[doc_id] *= matched[doc_id] / total_terms
        best = heapq.nlargest(top_n, scores.items(),
                              key=lambda item: (item[1], -item[0]))
        return [
            IndexHit(doc_id=doc_id, score=score,
                     matched_terms=matched[doc_id],
                     title=self._index.document(doc_id).title)
            for doc_id, score in best
        ]
