"""Postings: per-term occurrence data, packed for the search hot path.

A :class:`PostingsList` maps one dictionary term to the documents it
occurs in.  The representation is array-backed: two parallel
``array('q')`` columns hold the sorted doc ids and their term
frequencies, while token positions (the index's proximity data) live
out-of-line in a dict keyed by doc id.  The searcher iterates the packed
columns directly — no per-posting object construction — and membership
tests bisect the maintained sorted doc-id view instead of rebuilding it.

Two statistics are kept up to date through add/remove so retrieval can
read them in O(1):

* ``collection_frequency`` — total occurrences across documents,
  maintained incrementally instead of re-summed per call;
* ``max_frequency`` — the largest term frequency in any document (the
  *max-impact* statistic), which upper-bounds the score contribution a
  posting can make and lets the pruned searcher skip whole lists.

:class:`Posting` remains the per-document view object for callers that
want positions; it is materialized on demand and shares the live
positions list (treat it as read-only — mutate through :meth:`add`).
"""

from __future__ import annotations

import bisect
from array import array
from dataclasses import dataclass
from typing import Iterator


@dataclass(slots=True)
class Posting:
    """Occurrences of one term in one document (materialized view)."""

    doc_id: int
    positions: list[int]

    @property
    def frequency(self) -> int:
        return len(self.positions)


class PostingsList:
    """All postings of one term, sorted by document id (packed)."""

    __slots__ = ("term", "_doc_ids", "_freqs", "_positions",
                 "_collection_frequency", "_max_frequency", "_max_stale")

    def __init__(self, term: str) -> None:
        self.term = term
        self._doc_ids: array = array("q")
        self._freqs: array = array("q")
        self._positions: dict[int, list[int]] = {}
        self._collection_frequency = 0
        self._max_frequency = 0
        self._max_stale = False

    # -- statistics --------------------------------------------------------

    @property
    def document_frequency(self) -> int:
        """Number of documents containing the term (df)."""
        return len(self._doc_ids)

    @property
    def collection_frequency(self) -> int:
        """Total occurrences across all documents (cf); O(1), cached."""
        return self._collection_frequency

    @property
    def max_frequency(self) -> int:
        """Largest per-document term frequency (the max-impact bound).

        Maintained through :meth:`add`; a removal of the current maximum
        marks the statistic stale and the next read recomputes it in one
        pass over the packed frequency column.
        """
        if self._max_stale:
            self._max_frequency = max(self._freqs, default=0)
            self._max_stale = False
        return self._max_frequency

    # -- packed views ------------------------------------------------------

    def doc_ids_array(self) -> array:
        """The sorted doc-id column itself.  Read-only by convention."""
        return self._doc_ids

    def frequencies_array(self) -> array:
        """The frequency column parallel to :meth:`doc_ids_array`."""
        return self._freqs

    @property
    def postings(self) -> list[Posting]:
        """Materialized per-document views, sorted by doc id (O(df))."""
        return [Posting(doc_id, self._positions[doc_id])
                for doc_id in self._doc_ids]

    def _find(self, doc_id: int) -> int | None:
        """Index of ``doc_id`` in the packed columns, or None.

        Bisects the maintained sorted doc-id array directly — no
        per-lookup list rebuild.
        """
        ids = self._doc_ids
        i = bisect.bisect_left(ids, doc_id)
        if i < len(ids) and ids[i] == doc_id:
            return i
        return None

    # -- mutation ----------------------------------------------------------

    def add(self, doc_id: int, position: int) -> None:
        """Record one occurrence; creates the posting on first sight.

        Appending in non-decreasing doc-id order (the bulk-indexing
        pattern) is O(1); out-of-order insertion falls back to a binary
        search plus an array insert.
        """
        ids = self._doc_ids
        n = len(ids)
        if n and ids[n - 1] == doc_id:
            i = n - 1
        elif not n or ids[n - 1] < doc_id:
            ids.append(doc_id)
            self._freqs.append(0)
            self._positions[doc_id] = []
            i = n
        else:
            i = bisect.bisect_left(ids, doc_id)
            if i == len(ids) or ids[i] != doc_id:
                ids.insert(i, doc_id)
                self._freqs.insert(i, 0)
                self._positions[doc_id] = []
        self._positions[doc_id].append(position)
        freq = self._freqs[i] + 1
        self._freqs[i] = freq
        self._collection_frequency += 1
        if not self._max_stale and freq > self._max_frequency:
            self._max_frequency = freq

    def remove_document(self, doc_id: int) -> bool:
        """Drop the posting for ``doc_id``; True when one existed."""
        i = self._find(doc_id)
        if i is None:
            return False
        freq = self._freqs[i]
        self._collection_frequency -= freq
        del self._doc_ids[i]
        del self._freqs[i]
        del self._positions[doc_id]
        if not self._max_stale and freq >= self._max_frequency:
            self._max_stale = True
        return True

    # -- lookup ------------------------------------------------------------

    def get(self, doc_id: int) -> Posting | None:
        i = self._find(doc_id)
        if i is None:
            return None
        return Posting(doc_id, self._positions[doc_id])

    def frequency(self, doc_id: int) -> int:
        """Term frequency in ``doc_id``; 0 when absent.  O(log df)."""
        i = self._find(doc_id)
        return 0 if i is None else self._freqs[i]

    def doc_ids(self) -> list[int]:
        return list(self._doc_ids)

    def __iter__(self) -> Iterator[Posting]:
        for doc_id in self._doc_ids:
            yield Posting(doc_id, self._positions[doc_id])

    def __len__(self) -> int:
        return len(self._doc_ids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"PostingsList(term={self.term!r}, "
                f"df={len(self._doc_ids)}, cf={self._collection_frequency})")
