"""Postings: per-term occurrence data.

A :class:`PostingsList` maps one dictionary term to the documents it
occurs in; each :class:`Posting` records the term frequency and the
token positions inside that document (the index's proximity data).
Postings are kept sorted by ``doc_id`` so document-at-a-time merging
stays an option for future query operators.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(slots=True)
class Posting:
    """Occurrences of one term in one document."""

    doc_id: int
    positions: list[int]

    @property
    def frequency(self) -> int:
        return len(self.positions)


@dataclass(slots=True)
class PostingsList:
    """All postings of one term, sorted by document id."""

    term: str
    postings: list[Posting] = field(default_factory=list)

    @property
    def document_frequency(self) -> int:
        """Number of documents containing the term (df)."""
        return len(self.postings)

    @property
    def collection_frequency(self) -> int:
        """Total occurrences across all documents (cf)."""
        return sum(p.frequency for p in self.postings)

    def _find(self, doc_id: int) -> int | None:
        """Index of the posting for ``doc_id``, or None."""
        ids = [p.doc_id for p in self.postings]
        i = bisect.bisect_left(ids, doc_id)
        if i < len(ids) and ids[i] == doc_id:
            return i
        return None

    def add(self, doc_id: int, position: int) -> None:
        """Record one occurrence; creates the posting on first sight.

        Appending in non-decreasing doc-id order (the bulk-indexing
        pattern) is O(1); out-of-order insertion falls back to a binary
        search.
        """
        if self.postings:
            last = self.postings[-1]
            if last.doc_id == doc_id:
                last.positions.append(position)
                return
            if last.doc_id < doc_id:
                self.postings.append(Posting(doc_id, [position]))
                return
        else:
            self.postings.append(Posting(doc_id, [position]))
            return
        i = self._find(doc_id)
        if i is not None:
            self.postings[i].positions.append(position)
            return
        ids = [p.doc_id for p in self.postings]
        self.postings.insert(bisect.bisect_left(ids, doc_id),
                             Posting(doc_id, [position]))

    def remove_document(self, doc_id: int) -> bool:
        """Drop the posting for ``doc_id``; True when one existed."""
        i = self._find(doc_id)
        if i is None:
            return False
        del self.postings[i]
        return True

    def get(self, doc_id: int) -> Posting | None:
        i = self._find(doc_id)
        return None if i is None else self.postings[i]

    def doc_ids(self) -> list[int]:
        return [p.doc_id for p in self.postings]

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.postings)

    def __len__(self) -> int:
        return len(self.postings)
