"""Fuzzy query-term expansion: a recall net under candidate extraction.

Our E2 measurement exposed a limitation of the paper's architecture:
when the *query* contains abbreviated or misspelled terms the stemmed
document index has never seen, candidate extraction returns nothing and
no amount of downstream matching can recover.  This module is the
natural extension: a character-trigram index over the term dictionary
that expands unknown query terms to their closest indexed terms, each
expansion discounted by its trigram similarity.

It is off by default (``SchemrConfig.use_fuzzy_expansion``) because it
is an extension beyond the paper; the E3 ablation quantifies its
effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.matching.normalize import expand_abbreviations

#: Padding marker so word boundaries contribute trigrams.
_PAD = "$"


def term_trigrams(term: str) -> set[str]:
    """Padded character trigrams of a term (``pat`` -> ``$pa, pat, at$``).

    Terms shorter than 2 characters have no trigram signal and yield
    the empty set.
    """
    if len(term) < 2:
        return set()
    padded = f"{_PAD}{term}{_PAD}"
    return {padded[i:i + 3] for i in range(len(padded) - 2)}


@dataclass(frozen=True, slots=True)
class Expansion:
    """One suggested replacement for an unknown query term."""

    term: str
    similarity: float


class TrigramIndex:
    """Trigram -> vocabulary-term lookup for fuzzy suggestion."""

    def __init__(self, min_similarity: float = 0.35,
                 max_suggestions: int = 3) -> None:
        if not 0.0 < min_similarity <= 1.0:
            raise ValueError(
                f"min_similarity must be in (0, 1], got {min_similarity}")
        if max_suggestions <= 0:
            raise ValueError(
                f"max_suggestions must be positive, got {max_suggestions}")
        self._min_similarity = min_similarity
        self._max_suggestions = max_suggestions
        self._by_trigram: dict[str, set[str]] = {}
        self._term_sizes: dict[str, int] = {}

    @classmethod
    def from_terms(cls, terms: Iterable[str],
                   min_similarity: float = 0.35,
                   max_suggestions: int = 3) -> "TrigramIndex":
        index = cls(min_similarity=min_similarity,
                    max_suggestions=max_suggestions)
        for term in terms:
            index.add_term(term)
        return index

    def add_term(self, term: str) -> None:
        grams = term_trigrams(term)
        if not grams:
            return
        self._term_sizes[term] = len(grams)
        for gram in grams:
            self._by_trigram.setdefault(gram, set()).add(term)

    def update_from(self, terms: Iterable[str]) -> int:
        """Add vocabulary terms not yet indexed; returns how many were new.

        The engine calls this when the inverted index's generation moves
        so fuzzy expansion sees terms introduced by an indexer refresh.
        Terms that have *left* the vocabulary are not unindexed — a
        suggestion for a now-absent term has document frequency 0 and
        contributes nothing downstream, so keeping it is harmless and
        avoids per-trigram reference counting.
        """
        sizes = self._term_sizes
        added = 0
        for term in terms:
            if term not in sizes:
                self.add_term(term)
                added += 1
        return added

    def __len__(self) -> int:
        return len(self._term_sizes)

    def __contains__(self, term: object) -> bool:
        return term in self._term_sizes

    def suggest(self, term: str) -> list[Expansion]:
        """Closest vocabulary terms by trigram Dice coefficient."""
        grams = term_trigrams(term)
        if not grams:
            return []
        overlap: dict[str, int] = {}
        for gram in grams:
            for candidate in self._by_trigram.get(gram, ()):
                overlap[candidate] = overlap.get(candidate, 0) + 1
        scored: list[Expansion] = []
        for candidate, shared in overlap.items():
            similarity = (2.0 * shared
                          / (len(grams) + self._term_sizes[candidate]))
            if similarity >= self._min_similarity and candidate != term:
                scored.append(Expansion(candidate, similarity))
        scored.sort(key=lambda e: (-e.similarity, e.term))
        return scored[: self._max_suggestions]


def expand_query_terms(raw_words: list[str]) -> list[str]:
    """Abbreviation-expand raw query words before analysis.

    ``['pat', 'ht']`` becomes ``['pat', 'height']`` — the same
    normalization table the name matcher uses, applied where it can
    still influence recall.
    """
    return expand_abbreviations([word.lower() for word in raw_words])
