"""The inverted index: term dictionary + document store + norms."""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Iterator

from repro.errors import IndexError_
from repro.index.documents import Document
from repro.index.postings import PostingsList


@dataclass(frozen=True, slots=True)
class IndexSnapshot:
    """A consistent read view of the scorer-facing statistics.

    Built under the mutation lock and stamped with the generation it was
    taken at; mutations never touch an already-handed-out snapshot, so a
    searcher can keep reading it while a background refresh rewrites the
    live index.  ``norms`` is a plain dict — the retrieval hot loop does
    ``norms[doc_id]`` instead of going through the exception-raising
    accessor.
    """

    generation: int
    document_count: int
    norms: dict[int, float]
    #: Largest norm in the corpus (upper-bounds any score contribution).
    max_norm: float
    #: Largest doc id (sizes the searcher's dense accumulators).
    max_doc_id: int


class InvertedIndex:
    """Term dictionary with postings plus a document store.

    Supports add / remove / replace so the repository's scheduled
    indexer can apply incremental updates.  All statistics the scorer
    needs (document frequency, term frequency, document count, length
    norms) are served from here.

    Every mutation bumps a monotonically increasing ``generation`` and
    runs under ``lock`` (re-entrant, so a locked batch of mutations is
    fine).  Consumers that cache derived artifacts — the query cache,
    the fuzzy vocabulary, the norms snapshot — key on the generation and
    self-invalidate when it moves.
    """

    def __init__(self) -> None:
        self._terms: dict[str, PostingsList] = {}
        self._documents: dict[int, Document] = {}
        self._norms: dict[int, float] = {}
        self._generation = 0
        self._lock = threading.RLock()
        self._snapshot: IndexSnapshot | None = None

    # -- concurrency / invalidation ---------------------------------------

    @property
    def generation(self) -> int:  # lint: unlocked (GIL-atomic int read; locking would stall cache lookups behind refresh batches)
        """Bumped on every mutation; never decreases."""
        return self._generation

    @property
    def lock(self) -> threading.RLock:
        """The mutation lock.  Hold it to batch mutations atomically or
        to read postings consistently against a concurrent refresh."""
        return self._lock

    # -- mutation ----------------------------------------------------------

    def add(self, document: Document) -> None:
        """Index a document.  Re-adding an existing id is an error; use
        :meth:`replace` for updates so stale postings are cleaned up."""
        with self._lock:
            if document.doc_id in self._documents:
                raise IndexError_(
                    f"document {document.doc_id} already indexed; "
                    "use replace()")
            self._documents[document.doc_id] = document
            for position, term in enumerate(document.terms):
                postings = self._terms.get(term)
                if postings is None:
                    postings = self._terms[term] = PostingsList(term)
                postings.add(document.doc_id, position)
            # Lucene-classic length norm: 1/sqrt(numTerms).
            length = max(document.length, 1)
            self._norms[document.doc_id] = 1.0 / math.sqrt(length)
            self._generation += 1

    def remove(self, doc_id: int) -> None:
        """Remove a document and every posting that references it."""
        with self._lock:
            document = self._documents.pop(doc_id, None)
            if document is None:
                raise IndexError_(f"document {doc_id} is not indexed")
            del self._norms[doc_id]
            dead_terms = []
            for term in set(document.terms):
                postings = self._terms[term]
                postings.remove_document(doc_id)
                if not postings:
                    dead_terms.append(term)
            for term in dead_terms:
                del self._terms[term]
            self._generation += 1

    def replace(self, document: Document) -> None:
        """Update a document in place (remove + add)."""
        with self._lock:
            if document.doc_id in self._documents:
                self.remove(document.doc_id)
            self.add(document)

    def clear(self) -> None:
        with self._lock:
            self._terms.clear()
            self._documents.clear()
            self._norms.clear()
            self._generation += 1

    # -- statistics --------------------------------------------------------

    @property
    def document_count(self) -> int:
        with self._lock:
            return len(self._documents)

    @property
    def term_count(self) -> int:
        """Size of the term dictionary."""
        with self._lock:
            return len(self._terms)

    def has_document(self, doc_id: int) -> bool:
        with self._lock:
            return doc_id in self._documents

    def document(self, doc_id: int) -> Document:
        try:
            with self._lock:
                return self._documents[doc_id]
        except KeyError:
            raise IndexError_(f"document {doc_id} is not indexed") from None

    def documents(self) -> Iterator[Document]:
        with self._lock:
            return iter(list(self._documents.values()))

    def postings(self, term: str) -> PostingsList | None:  # lint: unlocked (per-term hot-path dict read; GIL-atomic, consistency via lock/snapshot protocol above)
        """Postings for an (already analyzed) term, or None."""
        return self._terms.get(term)

    def document_frequency(self, term: str) -> int:  # lint: unlocked (per-term hot-path dict read; GIL-atomic, consistency via lock/snapshot protocol above)
        postings = self._terms.get(term)
        return 0 if postings is None else postings.document_frequency

    def norm(self, doc_id: int) -> float:  # lint: unlocked (per-doc hot-path dict read; scorers prefer snapshot().norms)
        try:
            return self._norms[doc_id]
        except KeyError:
            raise IndexError_(f"document {doc_id} is not indexed") from None

    def snapshot(self) -> IndexSnapshot:
        """The current :class:`IndexSnapshot`, cached per generation.

        The first read after a mutation copies the norms dict under the
        lock; subsequent reads at the same generation return the cached
        object, so taking a snapshot per query is effectively free.
        """
        with self._lock:
            snap = self._snapshot
            if snap is None or snap.generation != self._generation:
                norms = dict(self._norms)
                snap = IndexSnapshot(
                    generation=self._generation,
                    document_count=len(self._documents),
                    norms=norms,
                    max_norm=max(norms.values(), default=0.0),
                    max_doc_id=max(norms, default=-1),
                )
                self._snapshot = snap
            return snap

    def vocabulary(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._terms))

    def __len__(self) -> int:
        with self._lock:
            return len(self._documents)

    def __contains__(self, doc_id: object) -> bool:
        with self._lock:
            return doc_id in self._documents
