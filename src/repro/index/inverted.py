"""The inverted index: term dictionary + document store + norms."""

from __future__ import annotations

import math
from typing import Iterator

from repro.errors import IndexError_
from repro.index.documents import Document
from repro.index.postings import PostingsList


class InvertedIndex:
    """Term dictionary with postings plus a document store.

    Supports add / remove / replace so the repository's scheduled
    indexer can apply incremental updates.  All statistics the scorer
    needs (document frequency, term frequency, document count, length
    norms) are served from here.
    """

    def __init__(self) -> None:
        self._terms: dict[str, PostingsList] = {}
        self._documents: dict[int, Document] = {}
        self._norms: dict[int, float] = {}

    # -- mutation ----------------------------------------------------------

    def add(self, document: Document) -> None:
        """Index a document.  Re-adding an existing id is an error; use
        :meth:`replace` for updates so stale postings are cleaned up."""
        if document.doc_id in self._documents:
            raise IndexError_(
                f"document {document.doc_id} already indexed; use replace()")
        self._documents[document.doc_id] = document
        for position, term in enumerate(document.terms):
            postings = self._terms.get(term)
            if postings is None:
                postings = self._terms[term] = PostingsList(term)
            postings.add(document.doc_id, position)
        # Lucene-classic length norm: 1/sqrt(numTerms).
        length = max(document.length, 1)
        self._norms[document.doc_id] = 1.0 / math.sqrt(length)

    def remove(self, doc_id: int) -> None:
        """Remove a document and every posting that references it."""
        document = self._documents.pop(doc_id, None)
        if document is None:
            raise IndexError_(f"document {doc_id} is not indexed")
        del self._norms[doc_id]
        dead_terms = []
        for term in set(document.terms):
            postings = self._terms[term]
            postings.remove_document(doc_id)
            if not postings.postings:
                dead_terms.append(term)
        for term in dead_terms:
            del self._terms[term]

    def replace(self, document: Document) -> None:
        """Update a document in place (remove + add)."""
        if document.doc_id in self._documents:
            self.remove(document.doc_id)
        self.add(document)

    def clear(self) -> None:
        self._terms.clear()
        self._documents.clear()
        self._norms.clear()

    # -- statistics --------------------------------------------------------

    @property
    def document_count(self) -> int:
        return len(self._documents)

    @property
    def term_count(self) -> int:
        """Size of the term dictionary."""
        return len(self._terms)

    def has_document(self, doc_id: int) -> bool:
        return doc_id in self._documents

    def document(self, doc_id: int) -> Document:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise IndexError_(f"document {doc_id} is not indexed") from None

    def documents(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def postings(self, term: str) -> PostingsList | None:
        """Postings for an (already analyzed) term, or None."""
        return self._terms.get(term)

    def document_frequency(self, term: str) -> int:
        postings = self._terms.get(term)
        return 0 if postings is None else postings.document_frequency

    def norm(self, doc_id: int) -> float:
        try:
            return self._norms[doc_id]
        except KeyError:
            raise IndexError_(f"document {doc_id} is not indexed") from None

    def vocabulary(self) -> Iterator[str]:
        return iter(self._terms)

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._documents
