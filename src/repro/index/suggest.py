"""Prefix suggestion over the term dictionary (search-box autocomplete).

A catalog GUI wants completions as the user types.  Suggestions come
straight from the index's term dictionary ranked by document frequency,
so they always lead to non-empty result pages.  The structure is a
sorted snapshot of the vocabulary with binary-searched prefix ranges —
rebuilt from the index on demand and cheap enough to refresh with it.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.index.inverted import InvertedIndex


@dataclass(frozen=True, slots=True)
class Suggestion:
    """One completion: the indexed term and its document frequency."""

    term: str
    document_frequency: int


class PrefixSuggester:
    """Sorted-vocabulary prefix lookup."""

    def __init__(self, index: InvertedIndex) -> None:
        self._index = index
        self._terms = sorted(index.vocabulary())

    def __len__(self) -> int:
        return len(self._terms)

    def suggest(self, prefix: str, limit: int = 8) -> list[Suggestion]:
        """Terms starting with ``prefix``, most frequent first.

        The prefix is lowercased to match the analyzed vocabulary.
        Empty prefixes return nothing (completing over the whole
        dictionary is never what a search box wants).
        """
        prefix = prefix.strip().lower()
        if not prefix or limit <= 0:
            return []
        lo = bisect.bisect_left(self._terms, prefix)
        hi = bisect.bisect_right(self._terms, prefix + "￿")
        matches = self._terms[lo:hi]
        ranked = sorted(
            (Suggestion(term, self._index.document_frequency(term))
             for term in matches),
            key=lambda s: (-s.document_frequency, s.term))
        return ranked[:limit]
