"""The document model of the index.

Per the paper: "Each schema in the index is represented as a document,
for which we store a title, a summary, an ID, and a flattened
representation of each element in the schema."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IndexError_
from repro.model.schema import Schema
from repro.text.analysis import SCHEMA_ANALYZER, Analyzer


@dataclass(slots=True)
class Document:
    """One indexed schema.

    ``terms`` is the analyzed token stream (flattened element names plus
    title and summary words); positions are implicit list indices, which
    gives the index its proximity data for free.
    """

    doc_id: int
    title: str
    summary: str = ""
    terms: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.doc_id < 0:
            raise IndexError_(f"document id must be >= 0, got {self.doc_id}")

    @property
    def length(self) -> int:
        """Token count; feeds the length normalization factor."""
        return len(self.terms)


def document_from_schema(schema: Schema,
                         analyzer: Analyzer = SCHEMA_ANALYZER) -> Document:
    """Flatten a schema into its index document.

    The token stream is: title words, summary words, then every element
    name in schema order (entity name followed by its attribute names),
    all passed through ``analyzer``.  Element order is preserved so
    proximity reflects schema locality.
    """
    if schema.schema_id is None:
        raise IndexError_(
            f"schema {schema.name!r} has no schema_id; import it into a "
            "repository (or set schema_id) before indexing")
    terms = analyzer.analyze(schema.name)
    terms.extend(analyzer.analyze(schema.description))
    terms.extend(analyzer.analyze_all(schema.terms()))
    return Document(
        doc_id=schema.schema_id,
        title=schema.name,
        summary=schema.description,
        terms=terms,
    )
