"""Coarse-grain TF/IDF scoring with the paper's coordination factor.

The paper: "We use a variant of standard TF/IDF to obtain an initial
coarse-grain matching.  To preserve recall, the candidate extraction
algorithm need not match all search terms; rather, match scores are
computed independently for each search term and summed ...  A
coordination factor, defined as the number of terms matched divided by
the number of terms in the query, is multiplied into the coarse-grain
score."

The per-term formula follows Lucene's classic similarity:
``sqrt(tf) * idf^2 * norm(d)`` with ``idf = 1 + ln(N / (df + 1))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.index.inverted import InvertedIndex


@dataclass(frozen=True, slots=True)
class TfIdfScorer:
    """Scores one document against a bag of analyzed query terms.

    ``use_coordination`` exists so the ablation bench (E3) can switch
    the coordination factor off.
    """

    index: InvertedIndex
    use_coordination: bool = True

    def idf(self, term: str) -> float:
        """Inverse document frequency; 0 for unknown terms."""
        df = self.index.document_frequency(term)
        if df == 0:
            return 0.0
        n = self.index.document_count
        return 1.0 + math.log(n / (df + 1.0))

    def term_score(self, term: str, doc_id: int) -> float:
        """Independent score of one query term against one document."""
        postings = self.index.postings(term)
        if postings is None:
            return 0.0
        frequency = postings.frequency(doc_id)
        if frequency == 0:
            return 0.0
        tf_part = math.sqrt(frequency)
        return tf_part * self.idf(term) ** 2 * self.index.norm(doc_id)

    def score(self, terms: list[str], doc_id: int) -> float:
        """Summed per-term scores times the coordination factor."""
        if not terms:
            return 0.0
        total = 0.0
        matched = 0
        for term in terms:
            part = self.term_score(term, doc_id)
            if part > 0.0:
                matched += 1
            total += part
        if self.use_coordination:
            total *= matched / len(terms)
        return total

    def coordination(self, terms: list[str], doc_id: int) -> float:
        """The coordination factor alone: matched terms / query terms."""
        if not terms:
            return 0.0
        matched = sum(1 for t in terms if self.term_score(t, doc_id) > 0.0)
        return matched / len(terms)
