"""Schemr: search and visualization for schema repositories.

A faithful reproduction of *Exploring Schema Repositories with Schemr*
(Chen, Kannan, Madhavan, Halevy; SIGMOD 2009 demo / SIGMOD Record 2011).

Quick start::

    from repro import SchemaRepository

    repo = SchemaRepository.in_memory()
    repo.import_ddl(open("clinic.sql").read(), name="clinic")
    repo.reindex()
    engine = repo.engine()
    for result in engine.search("patient, height, gender, diagnosis"):
        print(result.name, result.score)

The package layout follows the system architecture (Figure 5):

* :mod:`repro.model` — schemas and query graphs;
* :mod:`repro.parsers` — DDL / XSD / WebTable / query parsing;
* :mod:`repro.text` + :mod:`repro.index` — the Lucene-style text index;
* :mod:`repro.matching` — the fine-grained matcher ensemble;
* :mod:`repro.scoring` — tightness-of-fit;
* :mod:`repro.core` — the three-phase engine;
* :mod:`repro.repository` — the Yggdrasil-style schema repository;
* :mod:`repro.service` — XML/GraphML HTTP service;
* :mod:`repro.viz` — tree/radial layouts, SVG/ASCII rendering;
* :mod:`repro.corpus` — WebTables-style corpus generation;
* :mod:`repro.eval` — IR quality metrics.
"""

from repro.core.config import SchemrConfig
from repro.core.engine import DictSchemaSource, SchemrEngine
from repro.core.results import SearchResult, format_result_table
from repro.errors import (
    IndexError_,
    MatchError,
    ParseError,
    QueryError,
    RepositoryError,
    SchemaError,
    SchemrError,
    ServiceError,
)
from repro.codebook.annotate import annotate_schema
from repro.codebook.matcher import CodebookMatcher
from repro.mapping.derive import derive_mapping
from repro.matching.ensemble import MatcherEnsemble
from repro.model.elements import Attribute, ElementRef, Entity, ForeignKey
from repro.model.query import QueryGraph
from repro.model.schema import Schema
from repro.parsers.ddl import parse_ddl
from repro.parsers.query_parser import parse_query
from repro.parsers.xsd import parse_xsd
from repro.repository.exporter import export_ddl, export_xsd
from repro.repository.store import SchemaRepository
from repro.scoring.tightness import PenaltyPolicy, TightnessScorer
from repro.viz.summarize import summarize_schema

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "CodebookMatcher",
    "DictSchemaSource",
    "annotate_schema",
    "derive_mapping",
    "export_ddl",
    "export_xsd",
    "summarize_schema",
    "ElementRef",
    "Entity",
    "ForeignKey",
    "IndexError_",
    "MatchError",
    "MatcherEnsemble",
    "ParseError",
    "PenaltyPolicy",
    "QueryError",
    "QueryGraph",
    "RepositoryError",
    "Schema",
    "SchemaError",
    "SchemaRepository",
    "SchemrConfig",
    "SchemrEngine",
    "SchemrError",
    "SearchResult",
    "ServiceError",
    "TightnessScorer",
    "format_result_table",
    "parse_ddl",
    "parse_query",
    "parse_xsd",
]
