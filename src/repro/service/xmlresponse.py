"""XML serialization of search results.

"This list of candidate schemas, along with their corresponding score,
is finally sent as an XML response to the client."
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.core.results import ElementMatch, SearchResult
from repro.errors import ServiceError


def results_to_xml(results: list[SearchResult], query: str = "",
                   degradation: str | None = None,
                   generation: int | None = None) -> str:
    """Serialize a ranked result list to the service's XML format.

    ``degradation`` is the machine-readable graceful-degradation level
    the response was produced at ("none", "reduced_pool", "name_only",
    "phase1_only"); when given it is stamped on the root element so
    clients can tell a budget-degraded ranking from a full one.
    ``generation`` is the index generation the ranking was served from
    — with replicas in play it makes staleness observable, never
    silent (a replica trailing the primary serves a lower number).
    """
    root = ET.Element("searchResults", attrib={
        "query": query,
        "count": str(len(results)),
    })
    if degradation is not None:
        root.set("degradation", degradation)
    if generation is not None:
        root.set("generation", str(generation))
    for rank, result in enumerate(results, start=1):
        node = ET.SubElement(root, "result", attrib={
            "rank": str(rank),
            "schemaId": str(result.schema_id),
            "name": result.name,
            "score": f"{result.score:.6f}",
            "coarseScore": f"{result.coarse_score:.6f}",
            "matches": str(result.match_count),
            "entities": str(result.entity_count),
            "attributes": str(result.attribute_count),
        })
        if result.best_anchor:
            node.set("anchor", result.best_anchor)
        if result.description:
            description = ET.SubElement(node, "description")
            description.text = result.description
        matches = ET.SubElement(node, "elementMatches")
        for match in result.element_matches:
            ET.SubElement(matches, "match", attrib={
                "queryElement": match.query_label,
                "schemaElement": match.element_path,
                "score": f"{match.score:.6f}",
            })
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def parse_results_xml(text: str) -> list[SearchResult]:
    """Client-side inverse of :func:`results_to_xml`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ServiceError(f"malformed results XML: {exc}") from exc
    if root.tag != "searchResults":
        raise ServiceError(
            f"unexpected root element {root.tag!r}; expected searchResults")
    results: list[SearchResult] = []
    for node in root.findall("result"):
        try:
            description_node = node.find("description")
            element_matches = [
                ElementMatch(
                    query_label=match.get("queryElement", ""),
                    element_path=match.get("schemaElement", ""),
                    score=float(match.get("score", "0")),
                )
                for match in node.findall("elementMatches/match")
            ]
            results.append(SearchResult(
                schema_id=int(node.get("schemaId", "")),
                name=node.get("name", ""),
                score=float(node.get("score", "0")),
                match_count=int(node.get("matches", "0")),
                entity_count=int(node.get("entities", "0")),
                attribute_count=int(node.get("attributes", "0")),
                description=(description_node.text or ""
                             if description_node is not None else ""),
                coarse_score=float(node.get("coarseScore", "0")),
                best_anchor=node.get("anchor"),
                element_scores={m.element_path: m.score
                                for m in element_matches},
                element_matches=element_matches,
            ))
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed result entry: {exc}") from exc
    return results
