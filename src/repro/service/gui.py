"""Server-rendered HTML GUI.

The original client is Adobe Flex/Flare; its algorithmic content
(layouts, encodings, drill-in) lives in :mod:`repro.viz`.  This module
provides the thin presentation layer on top so a deployment is
demoable in any browser without Flash: a two-panel page — search form
plus tabular results on the left, schema visualization on the right —
mirroring Figure 2's layout, all rendered server-side.

Routes (wired up in :mod:`repro.service.server`):

* ``GET /``                       — search form (+ results when queried)
* ``GET /schema/<id>/svg``        — rendered visualization
  (``?layout=tree|radial&depth=3&focus=<path>&scores=...``)
"""

from __future__ import annotations

import urllib.parse

from repro.core.results import SearchResult
from repro.model.graph import schema_to_networkx
from repro.model.schema import Schema
from repro.viz.drill import display_subgraph
from repro.viz.radial import radial_layout
from repro.viz.svg import render_svg
from repro.viz.tree import tree_layout

_PAGE_STYLE = """
body { font-family: sans-serif; margin: 1.5em; color: #222; }
h1 { font-size: 1.4em; }
form { margin-bottom: 1em; }
input[type=text] { width: 28em; }
textarea { width: 40em; height: 6em; font-family: monospace; }
table { border-collapse: collapse; margin-top: 1em; }
th, td { border: 1px solid #ccc; padding: 0.3em 0.6em; font-size: 0.9em; }
th { background: #f0f0f0; text-align: left; }
.score { text-align: right; font-variant-numeric: tabular-nums; }
.hint { color: #777; font-size: 0.85em; }
"""


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _scores_blob(result: SearchResult) -> str:
    return ",".join(f"{path}:{score:.4f}"
                    for path, score in result.element_scores.items())


def render_search_page(keywords: str = "", fragment: str = "",
                       results: list[SearchResult] | None = None,
                       offset: int = 0, page_size: int = 10) -> str:
    """The Figure 2 page: search panel plus ranked results.

    A full page of results gets a "next n schemas" link (the paper's
    paging interaction) carrying the query in the URL.
    """
    parts = [
        "<!DOCTYPE html><html><head><title>Schemr</title>",
        f"<style>{_PAGE_STYLE}</style></head><body>",
        "<h1>Schemr &mdash; schema repository search</h1>",
        '<form method="post" action="/">',
        '<p>Keywords: <input type="text" name="keywords" '
        f'value="{_escape(keywords)}"/></p>',
        "<p>Schema fragment (DDL or XSD, optional):<br/>"
        f'<textarea name="fragment">{_escape(fragment)}</textarea></p>',
        '<p><input type="submit" value="Search"/> ',
        '<span class="hint">e.g. patient, height, gender, diagnosis'
        "</span></p></form>",
    ]
    if results is not None:
        shown = (f"results {offset + 1}&ndash;{offset + len(results)}"
                 if results and offset else f"{len(results)} result(s)")
        parts.append(f"<p>{shown}</p>")
        if results:
            parts.append(
                "<table><tr><th>#</th><th>Name</th><th>Score</th>"
                "<th>Matches</th><th>Entities</th><th>Attributes</th>"
                "<th>Description</th><th>View</th></tr>")
            for rank, result in enumerate(results, start=1):
                scores = urllib.parse.quote(_scores_blob(result))
                view = (f'<a href="/schema/{result.schema_id}/svg'
                        f'?layout=radial&amp;scores={scores}">radial</a> '
                        f'<a href="/schema/{result.schema_id}/svg'
                        f'?layout=tree&amp;scores={scores}">tree</a>')
                parts.append(
                    f"<tr><td>{rank}</td>"
                    f"<td>{_escape(result.name)}</td>"
                    f'<td class="score">{result.score:.4f}</td>'
                    f"<td>{result.match_count}</td>"
                    f"<td>{result.entity_count}</td>"
                    f"<td>{result.attribute_count}</td>"
                    f"<td>{_escape(result.description)}</td>"
                    f"<td>{view}</td></tr>")
            parts.append("</table>")
            if len(results) == page_size:
                next_query = urllib.parse.urlencode({
                    "keywords": keywords,
                    "offset": offset + page_size,
                })
                parts.append(
                    f'<p><a href="/?{next_query}">next {page_size} '
                    f"schemas &rarr;</a></p>")
    parts.append("</body></html>")
    return "".join(parts)


def render_schema_svg(schema: Schema, layout: str = "radial",
                      depth: int = 3, focus: str | None = None,
                      match_scores: dict[str, float] | None = None) -> str:
    """The visualization panel: one schema as SVG.

    ``focus`` re-centers the display (the drill-in double-click);
    ``match_scores`` drives the similarity halos.
    """
    graph = schema_to_networkx(schema)
    if match_scores:
        for path, score in match_scores.items():
            if graph.has_node(path):
                graph.nodes[path]["match_score"] = score
    display = display_subgraph(graph, focus=focus, max_depth=depth)
    if layout == "tree":
        positioned = tree_layout(display)
    else:
        positioned = radial_layout(display)
    return render_svg(positioned, title=schema.name)
