"""Thin HTTP client for the Schemr service.

Mirrors the GUI's two request types: asynchronous search requests and
schema-visualization (GraphML) requests.
"""

from __future__ import annotations

import urllib.error
import urllib.parse
import urllib.request

import networkx as nx

from repro.core.results import SearchResult
from repro.errors import ServiceError
from repro.service.graphml import parse_graphml
from repro.service.xmlresponse import parse_results_xml


class SchemrClient:
    """Talks to a running :class:`~repro.service.server.SchemrServer`."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout

    def _request(self, path: str, body: bytes | None = None) -> str:
        url = f"{self._base_url}{path}"
        request = urllib.request.Request(
            url, data=body, method="POST" if body is not None else "GET")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self._timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", errors="replace")
            raise ServiceError(
                f"server returned {exc.code} for {path}: {detail}",
                status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach {url}: {exc.reason}") from exc

    def health(self) -> bool:
        """True when the server answers its liveness probe."""
        try:
            self._request("/health")
        except ServiceError:
            return False
        return True

    def search(self, keywords: str = "", fragment: str | None = None,
               top_n: int = 10, offset: int = 0) -> list[SearchResult]:
        """Run a search; ``fragment`` is raw DDL/XSD text when present.

        ``offset`` requests the next page of the ranking ("ask for the
        next n schemas").
        """
        params = urllib.parse.urlencode(
            {"keywords": keywords, "top": top_n, "offset": offset})
        body = fragment.encode("utf-8") if fragment else None
        return parse_results_xml(self._request(f"/search?{params}", body))

    def search_meta(self, keywords: str = "", fragment: str | None = None,
                    top_n: int = 10, offset: int = 0
                    ) -> tuple[list[SearchResult], str]:
        """Like :meth:`search`, plus the response's degradation level.

        Returns ``(results, degradation)`` where ``degradation`` is the
        machine-readable graceful-degradation attribute the server
        stamps on ``<searchResults>`` ("none" when absent) — the replay
        driver uses it to measure the degradation mix under load.
        """
        import xml.etree.ElementTree as ET
        params = urllib.parse.urlencode(
            {"keywords": keywords, "top": top_n, "offset": offset})
        body = fragment.encode("utf-8") if fragment else None
        text = self._request(f"/search?{params}", body)
        try:
            degradation = ET.fromstring(text).get("degradation", "none")
        except ET.ParseError as exc:
            raise ServiceError(f"malformed results XML: {exc}") from exc
        return parse_results_xml(text), degradation

    def suggest(self, prefix: str, limit: int = 8) -> list[tuple[str, int]]:
        """Completion terms for a search-box prefix: (term, df) pairs."""
        import xml.etree.ElementTree as ET
        params = urllib.parse.urlencode({"prefix": prefix, "limit": limit})
        text = self._request(f"/suggest?{params}")
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ServiceError(f"malformed suggestions XML: {exc}") from exc
        return [(node.get("term", ""), int(node.get("df", "0")))
                for node in root.findall("suggestion")]

    def schema_graph(self, schema_id: int,
                     match_scores: dict[str, float] | None = None
                     ) -> nx.DiGraph:
        """Fetch a schema's GraphML and parse it into a graph."""
        path = f"/schema/{schema_id}"
        if match_scores:
            blob = ",".join(f"{element}:{score:.6f}"
                            for element, score in match_scores.items())
            path += "?" + urllib.parse.urlencode({"scores": blob})
        return parse_graphml(self._request(path))
