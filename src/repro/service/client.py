"""HTTP client for the Schemr service: failover, backoff, staleness.

Mirrors the GUI's two request types (asynchronous search requests and
schema-visualization requests) and adds the client half of replicated
serving:

* **Multiple endpoints.**  Construct with one URL or a list; the first
  is the primary, the rest are replicas in preference order.  Every
  request walks the endpoints — primary first, then non-demoted
  replicas by the freshest generation each has served, then demoted
  ones as a last resort — so a dead or breaker-open target costs one
  failed connect, not an outage.
* **Demotion.**  A transport failure or 503 (breaker open, not ready)
  demotes that endpoint for ``demote_seconds``; it keeps getting
  skipped while healthier targets exist and is re-probed once the
  window lapses or nothing better remains.
* **Retry-After.**  A 429/503 backs off with capped exponential
  backoff and full jitter (:class:`~repro.resilience.retry.RetryPolicy`),
  sleeping at least the server's ``Retry-After`` hint (still capped),
  instead of failing immediately.  ``retry_policy=None`` disables the
  backoff rounds — one failover pass, every status surfaces — which is
  what the workload replay driver uses so shed requests are *counted*,
  not hidden.
* **Staleness is visible.**  Servers stamp the index generation they
  served on responses; :attr:`last_generation` and
  :attr:`last_endpoint` report where the most recent answer came from
  and how fresh it was, and per-endpoint generations steer failover
  toward the freshest replica.

``sleep``/``rng``/``clock`` are injectable so the backoff and demotion
logic is unit-testable with a fake clock, matching the rest of the
resilience layer.
"""

from __future__ import annotations

import http.client
import random
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Callable, Sequence

import networkx as nx

from repro.core.results import SearchResult
from repro.errors import ServiceError
from repro.resilience.retry import RetryPolicy
from repro.service.graphml import parse_graphml
from repro.service.xmlresponse import parse_results_xml

#: Response header carrying the index generation the server answered
#: from (also stamped as an XML attribute on ``<searchResults>``).
GENERATION_HEADER = "X-Schemr-Generation"

#: Statuses that demote an endpoint: the service is up but cannot
#: serve (breaker open, replica too stale, shutting down).
_DEMOTE_STATUSES = frozenset((502, 503))

#: Statuses worth a backoff round: the service asked us to come back.
_BACKOFF_STATUSES = frozenset((429, 503))

#: Default backoff for interactive clients: three rounds, capped at
#: half a second of jittered sleep per round.
DEFAULT_RETRY_POLICY = RetryPolicy(attempts=3, base_seconds=0.05,
                                   multiplier=4.0, max_seconds=0.5)


class _Endpoint:
    """One server URL plus the client's local view of its health."""

    __slots__ = ("url", "demoted_until", "last_generation")

    def __init__(self, url: str) -> None:
        self.url = url.rstrip("/")
        self.demoted_until = 0.0
        self.last_generation = -1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Endpoint({self.url!r})"


class SchemrClient:
    """Talks to one or more :class:`~repro.service.server.SchemrServer`.

    ``base_url`` may be a single URL (the common case) or a sequence of
    URLs ordered by preference — primary first, replicas after.
    """

    def __init__(self, base_url: str | Sequence[str],
                 timeout: float = 10.0, *,
                 retry_policy: RetryPolicy | None = DEFAULT_RETRY_POLICY,
                 demote_seconds: float = 5.0,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: random.Random | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        urls = [base_url] if isinstance(base_url, str) else list(base_url)
        if not urls:
            raise ValueError("at least one endpoint URL is required")
        self._endpoints = [_Endpoint(url) for url in urls]
        self._timeout = timeout
        self._retry_policy = retry_policy
        self._demote_seconds = demote_seconds
        self._sleep = sleep
        self._rng = rng or random
        self._clock = clock
        self.last_endpoint: str | None = None
        self.last_generation: int | None = None

    @property
    def endpoints(self) -> list[str]:
        """Configured endpoint URLs, primary first."""
        return [endpoint.url for endpoint in self._endpoints]

    # -- failover core -----------------------------------------------------

    def _preference_order(self) -> list[_Endpoint]:
        """Endpoints to try, best first; never excludes anything.

        Primary (index 0) leads whenever it is not demoted.  Healthy
        replicas follow, freshest served generation first.  Demoted
        endpoints trail, soonest-to-recover first — when everything is
        demoted the least-recently-failed target gets re-probed.
        """
        now = self._clock()
        healthy = [endpoint for endpoint in self._endpoints
                   if endpoint.demoted_until <= now]
        demoted = [endpoint for endpoint in self._endpoints
                   if endpoint.demoted_until > now]
        primary = self._endpoints[0]
        order = []
        if primary in healthy:
            order.append(primary)
            healthy.remove(primary)
        order.extend(sorted(healthy, key=lambda e: -e.last_generation))
        order.extend(sorted(demoted, key=lambda e: e.demoted_until))
        return order

    def _demote(self, endpoint: _Endpoint) -> None:
        endpoint.demoted_until = self._clock() + self._demote_seconds

    def _fetch(self, endpoint: _Endpoint, path: str,
               body: bytes | None) -> str:
        """One HTTP exchange against one endpoint; updates freshness."""
        url = f"{endpoint.url}{path}"
        request = urllib.request.Request(
            url, data=body, method="POST" if body is not None else "GET")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self._timeout) as response:
                text = response.read().decode("utf-8")
                generation = response.headers.get(GENERATION_HEADER)
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", errors="replace")
            retry_after = _parse_retry_after(
                exc.headers.get("Retry-After"))
            raise ServiceError(
                f"server returned {exc.code} for {path}: {detail}",
                status=exc.code, retry_after=retry_after) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach {url}: {exc.reason}") from exc
        except (OSError, http.client.HTTPException) as exc:
            # A server killed mid-response surfaces as a raw socket or
            # HTTP-protocol error, not a URLError; it demotes the
            # endpoint exactly like a refused connection.
            raise ServiceError(f"connection to {url} failed: {exc}") from exc
        self.last_endpoint = endpoint.url
        if generation is not None:
            try:
                endpoint.last_generation = int(generation)
            except ValueError:
                pass  # a proxy mangled the header; freshness unknown
            else:
                self.last_generation = endpoint.last_generation
        return text

    def _request(self, path: str, body: bytes | None = None) -> str:
        """Fetch with failover and (when configured) backoff rounds.

        Each round walks the preference order: transport failures and
        502/503 demote the endpoint and move on immediately; a 429
        means the cluster is shedding load, so the round ends and the
        client backs off (honoring ``Retry-After``, capped by the
        policy) before trying again.  Other statuses are the caller's
        problem and raise at once.
        """
        attempts = (self._retry_policy.attempts
                    if self._retry_policy is not None else 1)
        last_error: ServiceError | None = None
        for attempt in range(attempts):
            retry_after = 0.0
            for endpoint in self._preference_order():
                try:
                    return self._fetch(endpoint, path, body)
                except ServiceError as exc:
                    last_error = exc
                    if exc.status is None \
                            or exc.status in _DEMOTE_STATUSES:
                        if exc.status is not None:
                            retry_after = max(retry_after,
                                              exc.retry_after)
                        self._demote(endpoint)
                        continue
                    if exc.status in _BACKOFF_STATUSES:
                        retry_after = max(retry_after, exc.retry_after)
                        break
                    raise
            if self._retry_policy is None or attempt == attempts - 1:
                break
            delay = self._retry_policy.backoff_seconds(attempt, self._rng)
            if retry_after > 0.0:
                delay = min(self._retry_policy.max_seconds,
                            max(delay, retry_after))
            self._sleep(delay)
        assert last_error is not None
        raise last_error

    # -- API ---------------------------------------------------------------

    def health(self) -> bool:
        """True when any endpoint answers its liveness probe.

        Probes without backoff rounds — health checks should be fast
        and honest, not resilient.
        """
        for endpoint in self._preference_order():
            try:
                self._fetch(endpoint, "/health", None)
            except ServiceError:
                continue
            return True
        return False

    def search(self, keywords: str = "", fragment: str | None = None,
               top_n: int = 10, offset: int = 0) -> list[SearchResult]:
        """Run a search; ``fragment`` is raw DDL/XSD text when present.

        ``offset`` requests the next page of the ranking ("ask for the
        next n schemas").
        """
        params = urllib.parse.urlencode(
            {"keywords": keywords, "top": top_n, "offset": offset})
        body = fragment.encode("utf-8") if fragment else None
        return parse_results_xml(self._request(f"/search?{params}", body))

    def search_meta(self, keywords: str = "", fragment: str | None = None,
                    top_n: int = 10, offset: int = 0
                    ) -> tuple[list[SearchResult], str]:
        """Like :meth:`search`, plus the response's degradation level.

        Returns ``(results, degradation)`` where ``degradation`` is the
        machine-readable graceful-degradation attribute the server
        stamps on ``<searchResults>`` ("none" when absent) — the replay
        driver uses it to measure the degradation mix under load.
        """
        import xml.etree.ElementTree as ET
        params = urllib.parse.urlencode(
            {"keywords": keywords, "top": top_n, "offset": offset})
        body = fragment.encode("utf-8") if fragment else None
        text = self._request(f"/search?{params}", body)
        try:
            degradation = ET.fromstring(text).get("degradation", "none")
        except ET.ParseError as exc:
            raise ServiceError(f"malformed results XML: {exc}") from exc
        return parse_results_xml(text), degradation

    def suggest(self, prefix: str, limit: int = 8) -> list[tuple[str, int]]:
        """Completion terms for a search-box prefix: (term, df) pairs."""
        import xml.etree.ElementTree as ET
        params = urllib.parse.urlencode({"prefix": prefix, "limit": limit})
        text = self._request(f"/suggest?{params}")
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ServiceError(f"malformed suggestions XML: {exc}") from exc
        return [(node.get("term", ""), int(node.get("df", "0")))
                for node in root.findall("suggestion")]

    def schema_graph(self, schema_id: int,
                     match_scores: dict[str, float] | None = None
                     ) -> nx.DiGraph:
        """Fetch a schema's GraphML and parse it into a graph."""
        path = f"/schema/{schema_id}"
        if match_scores:
            blob = ",".join(f"{element}:{score:.6f}"
                            for element, score in match_scores.items())
            path += "?" + urllib.parse.urlencode({"scores": blob})
        return parse_graphml(self._request(path))


def _parse_retry_after(header: str | None) -> float:
    """Seconds from a ``Retry-After`` header (delta form only; this
    service never emits HTTP-dates), 0.0 when absent or unparsable."""
    if header is None:
        return 0.0
    try:
        return max(0.0, float(header))
    except ValueError:
        return 0.0
