"""The Schemr HTTP server (stdlib ``http.server``).

Endpoints (mirroring the Figure 5 request flow):

* ``GET /search?keywords=patient+height&top=10`` — XML result list;
* ``POST /search?keywords=...`` with a DDL/XSD fragment as the request
  body — keyword + fragment search;
* ``GET /schema/<id>`` — GraphML for the visualization client
  (``?scores=path:score,...`` attaches match scores for encoding);
* ``GET /metrics`` — Prometheus text exposition of the engine's
  telemetry registry (per-phase histograms, cache ratios, HTTP stats);
* ``GET /stats`` — XML operational summary (phase p50/p95, cache hit
  rates, slow queries, empty-result reasons);
* ``GET /health`` / ``GET /healthz`` — liveness probes;
* ``GET /readyz`` — readiness: 503 (with ``Retry-After``) while a
  circuit breaker is open, the indexer is mid-refresh, or (on a
  replica) the replication lag exceeds ``--max-replica-lag``;
* ``GET /replication/manifest`` — the committed segment state
  (generation + per-segment checksums) a replica syncs against;
* ``GET /replication/segment/<name>`` — one immutable segment file,
  range-resumable (``Range: bytes=N-``).

Search responses carry the served index generation (the change-log
cursor) both as a ``generation`` attribute on ``<searchResults>`` and
as an ``X-Schemr-Generation`` header, so replica staleness is
observable by every client, never silent.

Resilience: search endpoints are admission-controlled (bounded queue +
concurrency limiter; overload answers a structured 429 with
``Retry-After`` instead of piling requests onto a saturated engine),
sockets carry a read timeout (a stalled client costs a 408, not a
wedged handler thread), and resilience-layer errors map to structured
429/503 responses — never an unhandled 500.

The default ``BaseHTTPRequestHandler`` access log is replaced by an
opt-in structured one: every request is measured (method, route,
status, duration) into the telemetry registry, and with
``SchemrServer(..., access_log=True)`` each request is additionally
logged through the ``repro.service.access`` logger.
"""

from __future__ import annotations

import json
import logging
import sqlite3
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.core.config import SchemrConfig
from repro.core.engine import SchemrEngine
from repro.errors import (AdmissionRejected, CircuitOpenError,
                          DeadlineExceeded, RepositoryError, SchemrError,
                          ServiceError)
from repro.repository.indexer import RepositoryIndexer
from repro.repository.store import SchemaRepository
from repro.resilience.breaker import STATE_OPEN
from repro.resilience.shedding import AdmissionController
from repro.service.graphml import graphml_for_schema
from repro.service.xmlresponse import results_to_xml
from repro.telemetry import Telemetry

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sharding import ShardedEngine

logger = logging.getLogger(__name__)
access_logger = logging.getLogger("repro.service.access")


class _SchemrRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the engine/repository held by the server."""

    # Set by SchemrServer before serving.
    engine: "SchemrEngine | ShardedEngine"
    repository: SchemaRepository
    telemetry: Telemetry
    admission: AdmissionController
    indexer: RepositoryIndexer | None = None
    #: The segment directory served (enables ``/replication/*``).
    segment_dir: Path | None = None
    #: Set on replicas: gates ``/readyz`` on replication lag.
    replica_syncer = None
    max_replica_lag_seconds: float = 30.0
    access_log: bool = False
    #: Socket read timeout (StreamRequestHandler applies it in setup());
    #: a client that stalls mid-request costs this many seconds, not a
    #: handler thread for the rest of the process lifetime.
    timeout: float | None = 30.0

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        # The BaseHTTPRequestHandler stderr log is replaced by the
        # structured access log in _handle (opt-in, telemetry-routed);
        # unconditional stderr spam would break tests and benches.
        pass

    def _send(self, status: int, body: str,
              content_type: str = "application/xml",
              extra_headers: dict[str, str] | None = None) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)
        self._status = status

    def _send_error_xml(self, status: int, message: str,
                        retry_after: float | None = None) -> None:
        extra = None
        if retry_after is not None:
            # Retry-After is delta-seconds; round up so "0.5" does not
            # become an immediate (header value 0) retry stampede.
            extra = {"Retry-After": str(max(1, int(retry_after + 0.999)))}
        self._send(status,
                   f'<?xml version="1.0"?><error status="{status}">'
                   f"{_xml_escape(message)}</error>", extra_headers=extra)

    # -- routing ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle(body=None)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        length = int(self.headers.get("Content-Length", "0"))
        try:
            body = self.rfile.read(length).decode("utf-8") if length else ""
        except TimeoutError:
            # The client promised a body and stalled; the request line
            # already arrived so a structured 408 is still deliverable.
            self.close_connection = True
            self._status = 0
            try:
                self._send_error_xml(408, "timed out reading request body")
            except OSError:  # pragma: no cover - socket already dead
                pass
            self._log_access(_route_of(
                urllib.parse.urlparse(self.path).path), 0.0)
            return
        self._handle(body=body)

    def _handle(self, body: str | None) -> None:
        parsed = urllib.parse.urlparse(self.path)
        self._status = 0
        started = time.perf_counter()
        route = _route_of(parsed.path)
        try:
            if parsed.path in ("/health", "/healthz"):
                self._send(200, '<?xml version="1.0"?><ok/>')
            elif parsed.path == "/readyz":
                self._handle_readyz()
            elif parsed.path == "/metrics":
                self._handle_metrics()
            elif parsed.path == "/stats":
                self._handle_stats()
            elif parsed.path == "/":
                self._handle_gui(parsed.query, body)
            elif parsed.path == "/search":
                self._handle_search(parsed.query, body)
            elif parsed.path == "/suggest":
                self._handle_suggest(parsed.query)
            elif parsed.path == "/replication/manifest":
                self._handle_replication_manifest()
            elif parsed.path.startswith("/replication/segment/"):
                self._handle_replication_segment(parsed.path)
            elif (parsed.path.startswith("/schema/")
                    and parsed.path.endswith("/svg")):
                self._handle_schema_svg(parsed.path, parsed.query)
            elif parsed.path.startswith("/schema/"):
                self._handle_schema(parsed.path, parsed.query)
            else:
                self._send_error_xml(404, f"no route for {parsed.path}")
        except AdmissionRejected as exc:
            self._send_error_xml(429, str(exc), retry_after=exc.retry_after)
        except CircuitOpenError as exc:
            self._send_error_xml(503, str(exc),
                                 retry_after=exc.retry_after or 1.0)
        except DeadlineExceeded as exc:
            # The engine degrades rather than raising; this is the
            # defensive boundary for a budget so tight even the
            # phase-1 fallback could not be produced.
            self._send_error_xml(503, str(exc), retry_after=1.0)
        except sqlite3.OperationalError as exc:
            # Transient store trouble (locked/busy past the retry
            # budget) is an availability problem, not a client error.
            self._send_error_xml(503, f"storage unavailable: {exc}",
                                 retry_after=1.0)
        except RepositoryError as exc:
            self._send_error_xml(404, str(exc))
        except SchemrError as exc:
            self._send_error_xml(400, str(exc))
        except Exception as exc:
            # Unexpected bug: tell the client 500 but keep the traceback
            # — a silent 500 is undebuggable from the access log alone.
            logger.exception("unhandled error serving %s: %s",
                             route, exc)
            self._send_error_xml(500, f"internal error: {exc}")
        finally:
            self._log_access(route, time.perf_counter() - started)

    def _log_access(self, route: str, seconds: float) -> None:
        """Structured access log: metrics always (when enabled), the
        ``repro.service.access`` logger when opted in."""
        telemetry = self.telemetry
        if telemetry.enabled:
            m = telemetry.metrics
            m.counter("schemr_http_requests_total", "HTTP requests",
                      route=route, status=str(self._status)).inc()
            m.histogram("schemr_http_request_seconds",
                        "HTTP request latency", route=route
                        ).observe(seconds)
        if self.access_log:
            access_logger.info(
                '%s %s %d %.2fms "%s"', self.command, route, self._status,
                seconds * 1000.0, self.path)

    def _handle_metrics(self) -> None:
        self._send(200, self.telemetry.metrics.to_prometheus_text(),
                   content_type="text/plain")

    def _handle_stats(self) -> None:
        self._send(200, self.telemetry.summary_xml())

    def _handle_readyz(self) -> None:
        """Readiness: open breakers and mid-refresh indexes are
        temporary conditions a load balancer should route around, not
        liveness failures worth a restart."""
        open_breakers = [b for b in self.engine.breakers.values()
                         if b.state == STATE_OPEN]
        if open_breakers:
            retry_after = max(b.retry_after() for b in open_breakers)
            names = ", ".join(sorted(b.name for b in open_breakers))
            self._send_error_xml(
                503, f"circuit breaker open: {names}",
                retry_after=max(retry_after, 1.0))
            return
        if self.indexer is not None and self.indexer.refreshing:
            self._send_error_xml(503, "index refresh in progress",
                                 retry_after=1.0)
            return
        syncer = self.replica_syncer
        if syncer is not None \
                and not syncer.is_ready(self.max_replica_lag_seconds):
            lag = syncer.lag_seconds()
            detail = ("never synced" if lag == float("inf")
                      else f"lag {lag:.1f}s")
            self._send_error_xml(
                503,
                f"replica {detail} exceeds max "
                f"{self.max_replica_lag_seconds:.1f}s",
                retry_after=1.0)
            return
        shard_status = getattr(self.engine, "shard_status", None)
        if shard_status is None:
            self._send(200, '<?xml version="1.0"?><ready/>')
            return
        # Sharded serving: not ready while any worker is mid-handshake
        # or a reopen broadcast is in flight.  A *dead* worker does not
        # unready the pool — its documents are served via local repair
        # until the respawn lands — but the per-shard health is always
        # in the body so operators (and the no-orphan tests) can see
        # worker pids and states.
        if not self.engine.ready():
            self._send_error_xml(
                503, "shard workers starting or reopening",
                retry_after=1.0)
            return
        shards = "".join(
            f'<shard id="{s["shard"]}" state="{_xml_escape(s["state"])}" '
            f'pid="{s["pid"] if s["pid"] is not None else ""}" '
            f'restarts="{s["restarts"]}" documents="{s["documents"]}" '
            f'breaker="{_xml_escape(s["breaker"])}"/>'
            for s in shard_status())
        self._send(200, f'<?xml version="1.0"?><ready>{shards}</ready>')

    def _served_generation(self) -> int | None:
        """The change-log cursor the serving index durably reflects.

        Comparable across processes and hosts (unlike the in-memory
        generation counter), which is what makes replica staleness
        observable: a trailing replica stamps a smaller number than
        the primary.  None for purely in-memory indexes.
        """
        index = getattr(self.engine.searcher, "index", None)
        return getattr(index, "last_change_id", None)

    def _handle_search(self, query_string: str, body: str | None) -> None:
        params = urllib.parse.parse_qs(query_string)
        keywords = " ".join(params.get("keywords", []))
        top_n = int(params.get("top", ["10"])[0])
        offset = int(params.get("offset", ["0"])[0])
        fragment = body if body else None
        with self.admission.admitted():
            results = self.engine.search(keywords=keywords or None,
                                         fragment=fragment, top_n=top_n,
                                         offset=offset)
            profile = self.engine.thread_profile
        degradation = profile.degradation if profile is not None else "none"
        generation = self._served_generation()
        extra = ({"X-Schemr-Generation": str(generation)}
                 if generation is not None else None)
        self._send(200, results_to_xml(results, query=keywords,
                                       degradation=degradation,
                                       generation=generation),
                   extra_headers=extra)

    # -- replication (the primary side of segment shipping) --------------

    def _handle_replication_manifest(self) -> None:
        from repro.replication import build_replication_manifest
        if self.segment_dir is None:
            self._send_error_xml(
                404, "this server serves an in-memory index; start it "
                     "with --segment-dir to enable replication")
            return
        manifest = build_replication_manifest(self.segment_dir)
        self._send(200, json.dumps(manifest),
                   content_type="application/json")

    def _handle_replication_segment(self, path: str) -> None:
        from repro.replication import valid_segment_ref
        if self.segment_dir is None:
            self._send_error_xml(
                404, "this server serves an in-memory index; start it "
                     "with --segment-dir to enable replication")
            return
        name = path.removeprefix("/replication/segment/")
        parts = name.split("/")
        if len(parts) == 1:
            dirname, filename = "", parts[0]
        elif len(parts) == 2:
            dirname, filename = parts
        else:
            self._send_error_xml(400, f"bad segment reference {name!r}")
            return
        if not valid_segment_ref(dirname, filename):
            self._send_error_xml(400, f"bad segment reference {name!r}")
            return
        seg_path = (self.segment_dir / dirname / filename if dirname
                    else self.segment_dir / filename)
        try:
            handle = open(seg_path, "rb")
        except FileNotFoundError:
            self._send_error_xml(
                404, f"no segment {name} (merged away; refetch the "
                     f"manifest)")
            return
        with handle:
            size = seg_path.stat().st_size
            offset = _parse_range(self.headers.get("Range"))
            if offset is None:
                status, start = 200, 0
            elif offset >= size:
                self._send_error_xml(416, f"range start {offset} beyond "
                                          f"{size}-byte segment")
                return
            else:
                status, start = 206, offset
            self.send_response(status)
            self.send_header("Content-Type", "application/octet-stream")
            self.send_header("Content-Length", str(size - start))
            self.send_header("Accept-Ranges", "bytes")
            if status == 206:
                self.send_header("Content-Range",
                                 f"bytes {start}-{size - 1}/{size}")
            self.end_headers()
            handle.seek(start)
            while True:
                block = handle.read(1 << 20)
                if not block:
                    break
                self.wfile.write(block)
        self._status = status

    def _handle_suggest(self, query_string: str) -> None:
        from repro.index.suggest import PrefixSuggester
        params = urllib.parse.parse_qs(query_string)
        prefix = " ".join(params.get("prefix", [])).strip()
        limit = int(params.get("limit", ["8"])[0])
        suggester: PrefixSuggester = getattr(type(self), "suggester")
        suggestions = suggester.suggest(prefix, limit=limit)
        body = "".join(
            f'<suggestion term="{_xml_escape(s.term)}" '
            f'df="{s.document_frequency}"/>' for s in suggestions)
        self._send(200, f'<?xml version="1.0"?>'
                        f'<suggestions prefix="{_xml_escape(prefix)}">'
                        f"{body}</suggestions>")

    def _handle_gui(self, query_string: str, body: str | None) -> None:
        from repro.service.gui import render_search_page
        if body:
            params = urllib.parse.parse_qs(body)
        else:
            params = urllib.parse.parse_qs(query_string)
        keywords = " ".join(params.get("keywords", [])).strip()
        fragment = "\n".join(params.get("fragment", [])).strip()
        offset = int(params.get("offset", ["0"])[0])
        results = None
        if keywords or fragment:
            with self.admission.admitted():
                results = self.engine.search(keywords=keywords or None,
                                             fragment=fragment or None,
                                             offset=offset)
        self._send(200,
                   render_search_page(keywords, fragment, results,
                                      offset=offset),
                   content_type="text/html")

    def _parse_scores(self, params: dict[str, list[str]]) \
            -> dict[str, float] | None:
        """``scores=path:score,...`` -> dict; None signals a bad pair
        (the caller has already sent the 400)."""
        scores: dict[str, float] = {}
        for blob in params.get("scores", []):
            for pair in blob.split(","):
                if not pair:
                    continue
                element_path, _, value = pair.rpartition(":")
                try:
                    scores[element_path] = float(value)
                except ValueError:
                    self._send_error_xml(400, f"bad score pair {pair!r}")
                    return None
        return scores

    def _handle_schema_svg(self, path: str, query_string: str) -> None:
        from repro.service.gui import render_schema_svg
        id_part = path.removeprefix("/schema/").removesuffix("/svg")
        try:
            schema_id = int(id_part)
        except ValueError:
            self._send_error_xml(400, f"bad schema id {id_part!r}")
            return
        params = urllib.parse.parse_qs(query_string)
        scores = self._parse_scores(params)
        if scores is None:
            return
        layout = params.get("layout", ["radial"])[0]
        depth = int(params.get("depth", ["3"])[0])
        focus = params.get("focus", [None])[0]
        schema = self.repository.get_schema(schema_id)
        svg = render_schema_svg(schema, layout=layout, depth=depth,
                                focus=focus, match_scores=scores)
        self._send(200, svg, content_type="image/svg+xml")

    def _handle_schema(self, path: str, query_string: str) -> None:
        id_part = path.removeprefix("/schema/")
        try:
            schema_id = int(id_part)
        except ValueError:
            self._send_error_xml(400, f"bad schema id {id_part!r}")
            return
        params = urllib.parse.parse_qs(query_string)
        scores = self._parse_scores(params)
        if scores is None:
            return
        schema = self.repository.get_schema(schema_id)
        self._send(200, graphml_for_schema(schema, match_scores=scores))


def _xml_escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _parse_range(header: str | None) -> int | None:
    """The start offset of a ``bytes=N-`` range header, else None.

    Only the open-ended suffix form the replica syncer sends is
    honored; anything else falls back to a full-body 200, which is
    always a correct (if larger) answer.
    """
    if header is None or not header.startswith("bytes="):
        return None
    spec = header.removeprefix("bytes=")
    if not spec.endswith("-"):
        return None
    try:
        return int(spec[:-1])
    except ValueError:
        return None


_FIXED_ROUTES = frozenset(
    ("/", "/health", "/healthz", "/readyz", "/metrics", "/stats",
     "/search", "/suggest", "/replication/manifest"))


def _route_of(path: str) -> str:
    """Collapse a request path to a bounded-cardinality route label.

    Metric label sets must not grow with traffic, so schema ids (and
    arbitrary probe paths) are folded into placeholders.
    """
    if path in _FIXED_ROUTES:
        return path
    if path.startswith("/schema/"):
        return ("/schema/<id>/svg" if path.endswith("/svg")
                else "/schema/<id>")
    if path.startswith("/replication/segment/"):
        return "/replication/segment/<name>"
    return "<other>"


class SchemrServer:
    """Owns the HTTP server lifecycle around a repository.

    Usage::

        server = SchemrServer(repository)
        with server.running() as base_url:
            ...  # point SchemrClient at base_url
    """

    def __init__(self, repository: SchemaRepository,
                 host: str = "127.0.0.1", port: int = 0,
                 config: SchemrConfig | None = None,
                 access_log: bool = False) -> None:
        from repro.index.suggest import PrefixSuggester
        self._repository = repository
        # A serving deployment wants observability: unless the caller
        # supplies a config, telemetry is on (the enabled-path overhead
        # is a few percent; see benchmarks/bench_telemetry_overhead.py).
        if config is None:
            config = SchemrConfig(telemetry_enabled=True)
        self._replica_syncer = None
        indexer: RepositoryIndexer | None
        if config.replicate_from:
            # Replica serving: the index is a follower of a primary's
            # segment directory — never locally indexed, so there is no
            # indexer in the loop and refreshes never run here.
            self._engine, self._replica_syncer = _build_replica_engine(
                repository, config)
            indexer = None
        elif config.shards > 1:
            # Worker-pool serving: phases 1+2 scatter to per-shard
            # processes; the front's pages stay byte-identical to the
            # in-process engine's.
            from repro.sharding import ShardedEngine
            self._engine = ShardedEngine(repository, config=config)
            indexer = repository.indexer()
        else:
            self._engine = repository.engine(config=config)
            indexer = repository.indexer()
        self._admission = AdmissionController(
            max_concurrent=config.max_concurrent_searches,
            queue_size=config.admission_queue_size,
            queue_timeout_seconds=config.admission_timeout_seconds)
        handler = type("BoundHandler", (_SchemrRequestHandler,), {
            "engine": self._engine,
            "repository": self._repository,
            "suggester": PrefixSuggester(self._engine.searcher.index),
            "telemetry": self._engine.telemetry,
            "admission": self._admission,
            "indexer": indexer,
            "segment_dir": (Path(config.segment_dir)
                            if config.segment_dir else None),
            "replica_syncer": self._replica_syncer,
            "max_replica_lag_seconds": config.max_replica_lag_seconds,
            "access_log": access_log,
            "timeout": config.request_timeout_seconds,
        })
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None
        self._register_instruments()

    def _register_instruments(self) -> None:
        telemetry = self._engine.telemetry
        if not telemetry.enabled:
            return
        m = telemetry.metrics
        admission = self._admission
        m.gauge("schemr_admission_active",
                "Searches currently admitted",
                callback=lambda: admission.active)
        m.gauge("schemr_admission_waiting",
                "Searches queued for admission",
                callback=lambda: admission.waiting)
        m.counter("schemr_admission_rejected_total",
                  "Searches shed by admission control",
                  callback=lambda: admission.rejected_total)
        m.counter("schemr_admission_timeouts_total",
                  "Admissions that timed out in the queue",
                  callback=lambda: admission.timed_out_total)

    @property
    def engine(self) -> "SchemrEngine | ShardedEngine":
        return self._engine

    @property
    def replica_syncer(self):
        """The replica's sync loop, or None on a primary."""
        return self._replica_syncer

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    @property
    def telemetry(self) -> Telemetry:
        return self._engine.telemetry

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def base_url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        if self._thread is not None:
            return
        if self._replica_syncer is not None:
            self._replica_syncer.start()
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True)
        self._thread.start()
        logger.info("schemr service listening on %s", self.base_url)

    def stop(self, join_timeout_seconds: float = 5.0) -> None:
        """Stop serving; raises :class:`ServiceError` if the serve
        thread fails to exit within ``join_timeout_seconds``.

        The previous behaviour — a silently ignored ``join`` timeout —
        left a live thread holding the listening socket while the
        caller believed the server was down.  A hung shutdown is now
        detected, counted, logged, and raised; the server is left in
        its partial state so a later :meth:`stop` can retry the join.
        """
        if self._thread is None:
            return
        if self._replica_syncer is not None:
            self._replica_syncer.stop()
        thread = self._thread
        self._httpd.shutdown()
        thread.join(timeout=join_timeout_seconds)
        if thread.is_alive():
            telemetry = self._engine.telemetry
            if telemetry.enabled:
                telemetry.metrics.counter(
                    "schemr_server_stop_hangs_total",
                    "stop() calls whose serve thread failed to exit").inc()
            logger.error(
                "server thread failed to exit within %.1fs; the listening "
                "socket is still held", join_timeout_seconds)
            raise ServiceError(
                f"server thread did not exit within {join_timeout_seconds}s")
        self._httpd.server_close()
        self._thread = None
        self._engine.close()
        logger.info("schemr service stopped")

    def running(self) -> "_RunningServer":
        """Context manager that starts/stops the server."""
        return _RunningServer(self)


def _build_replica_engine(repository: SchemaRepository,
                          config: SchemrConfig):
    """A serving engine that follows a primary instead of indexing.

    Performs one blocking catch-up sync before opening the index, so a
    fresh replica starts serving the primary's current generation
    rather than an empty page.  If the primary is down but a previous
    sync left committed local state, the replica serves that (stale,
    and ``/readyz`` says so); with neither, startup fails loudly.
    """
    from repro.index.segments import open_segment_index
    from repro.replication import (DirectorySource, HttpSource,
                                   ReplicaSyncer)
    telemetry = Telemetry.from_config(config)
    target = config.replicate_from
    source = (HttpSource(target) if "://" in target
              else DirectorySource(target))
    syncer = ReplicaSyncer(source, config.segment_dir,
                           telemetry=telemetry,
                           poll_seconds=config.replica_poll_seconds)
    try:
        syncer.sync_once()
    except SchemrError as exc:
        local = Path(config.segment_dir)
        if not (local / "MANIFEST.json").exists() \
                and not (local / "SHARDS.json").exists():
            raise ServiceError(
                f"replica has no local state and the initial sync from "
                f"{target} failed: {exc}") from exc
        logger.warning("initial replica sync from %s failed; serving "
                       "the existing local state: %s", target, exc)
    index = open_segment_index(config.segment_dir, sweep=True)
    syncer.attach_index(index)
    engine = SchemrEngine(index=index, source=repository.profile_store(),
                          config=config, telemetry=telemetry)
    engine._owns_telemetry = True
    return engine, syncer


class _RunningServer:
    def __init__(self, server: SchemrServer) -> None:
        self._server = server

    def __enter__(self) -> str:
        self._server.start()
        return self._server.base_url

    def __exit__(self, *exc_info: object) -> None:
        self._server.stop()
