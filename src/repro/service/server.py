"""The Schemr HTTP server (stdlib ``http.server``).

Endpoints (mirroring the Figure 5 request flow):

* ``GET /search?keywords=patient+height&top=10`` — XML result list;
* ``POST /search?keywords=...`` with a DDL/XSD fragment as the request
  body — keyword + fragment search;
* ``GET /schema/<id>`` — GraphML for the visualization client
  (``?scores=path:score,...`` attaches match scores for encoding);
* ``GET /health`` — liveness probe.
"""

from __future__ import annotations

import logging
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.engine import SchemrEngine
from repro.errors import RepositoryError, SchemrError
from repro.repository.store import SchemaRepository
from repro.service.graphml import graphml_for_schema
from repro.service.xmlresponse import results_to_xml

logger = logging.getLogger(__name__)


class _SchemrRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the engine/repository held by the server."""

    # Set by SchemrServer before serving.
    engine: SchemrEngine
    repository: SchemaRepository

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # tests and benches must not spam stderr

    def _send(self, status: int, body: str,
              content_type: str = "application/xml") -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_error_xml(self, status: int, message: str) -> None:
        self._send(status,
                   f'<?xml version="1.0"?><error status="{status}">'
                   f"{_xml_escape(message)}</error>")

    # -- routing ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle(body=None)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        length = int(self.headers.get("Content-Length", "0"))
        body = self.rfile.read(length).decode("utf-8") if length else ""
        self._handle(body=body)

    def _handle(self, body: str | None) -> None:
        parsed = urllib.parse.urlparse(self.path)
        try:
            if parsed.path == "/health":
                self._send(200, '<?xml version="1.0"?><ok/>')
            elif parsed.path == "/":
                self._handle_gui(parsed.query, body)
            elif parsed.path == "/search":
                self._handle_search(parsed.query, body)
            elif parsed.path == "/suggest":
                self._handle_suggest(parsed.query)
            elif (parsed.path.startswith("/schema/")
                    and parsed.path.endswith("/svg")):
                self._handle_schema_svg(parsed.path, parsed.query)
            elif parsed.path.startswith("/schema/"):
                self._handle_schema(parsed.path, parsed.query)
            else:
                self._send_error_xml(404, f"no route for {parsed.path}")
        except RepositoryError as exc:
            self._send_error_xml(404, str(exc))
        except SchemrError as exc:
            self._send_error_xml(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive boundary
            self._send_error_xml(500, f"internal error: {exc}")

    def _handle_search(self, query_string: str, body: str | None) -> None:
        params = urllib.parse.parse_qs(query_string)
        keywords = " ".join(params.get("keywords", []))
        top_n = int(params.get("top", ["10"])[0])
        offset = int(params.get("offset", ["0"])[0])
        fragment = body if body else None
        results = self.engine.search(keywords=keywords or None,
                                     fragment=fragment, top_n=top_n,
                                     offset=offset)
        self._send(200, results_to_xml(results, query=keywords))

    def _handle_suggest(self, query_string: str) -> None:
        from repro.index.suggest import PrefixSuggester
        params = urllib.parse.parse_qs(query_string)
        prefix = " ".join(params.get("prefix", [])).strip()
        limit = int(params.get("limit", ["8"])[0])
        suggester: PrefixSuggester = getattr(type(self), "suggester")
        suggestions = suggester.suggest(prefix, limit=limit)
        body = "".join(
            f'<suggestion term="{_xml_escape(s.term)}" '
            f'df="{s.document_frequency}"/>' for s in suggestions)
        self._send(200, f'<?xml version="1.0"?>'
                        f'<suggestions prefix="{_xml_escape(prefix)}">'
                        f"{body}</suggestions>")

    def _handle_gui(self, query_string: str, body: str | None) -> None:
        from repro.service.gui import render_search_page
        if body:
            params = urllib.parse.parse_qs(body)
        else:
            params = urllib.parse.parse_qs(query_string)
        keywords = " ".join(params.get("keywords", [])).strip()
        fragment = "\n".join(params.get("fragment", [])).strip()
        offset = int(params.get("offset", ["0"])[0])
        results = None
        if keywords or fragment:
            results = self.engine.search(keywords=keywords or None,
                                         fragment=fragment or None,
                                         offset=offset)
        self._send(200,
                   render_search_page(keywords, fragment, results,
                                      offset=offset),
                   content_type="text/html")

    def _parse_scores(self, params: dict[str, list[str]]) \
            -> dict[str, float] | None:
        """``scores=path:score,...`` -> dict; None signals a bad pair
        (the caller has already sent the 400)."""
        scores: dict[str, float] = {}
        for blob in params.get("scores", []):
            for pair in blob.split(","):
                if not pair:
                    continue
                element_path, _, value = pair.rpartition(":")
                try:
                    scores[element_path] = float(value)
                except ValueError:
                    self._send_error_xml(400, f"bad score pair {pair!r}")
                    return None
        return scores

    def _handle_schema_svg(self, path: str, query_string: str) -> None:
        from repro.service.gui import render_schema_svg
        id_part = path.removeprefix("/schema/").removesuffix("/svg")
        try:
            schema_id = int(id_part)
        except ValueError:
            self._send_error_xml(400, f"bad schema id {id_part!r}")
            return
        params = urllib.parse.parse_qs(query_string)
        scores = self._parse_scores(params)
        if scores is None:
            return
        layout = params.get("layout", ["radial"])[0]
        depth = int(params.get("depth", ["3"])[0])
        focus = params.get("focus", [None])[0]
        schema = self.repository.get_schema(schema_id)
        svg = render_schema_svg(schema, layout=layout, depth=depth,
                                focus=focus, match_scores=scores)
        self._send(200, svg, content_type="image/svg+xml")

    def _handle_schema(self, path: str, query_string: str) -> None:
        id_part = path.removeprefix("/schema/")
        try:
            schema_id = int(id_part)
        except ValueError:
            self._send_error_xml(400, f"bad schema id {id_part!r}")
            return
        params = urllib.parse.parse_qs(query_string)
        scores = self._parse_scores(params)
        if scores is None:
            return
        schema = self.repository.get_schema(schema_id)
        self._send(200, graphml_for_schema(schema, match_scores=scores))


def _xml_escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


class SchemrServer:
    """Owns the HTTP server lifecycle around a repository.

    Usage::

        server = SchemrServer(repository)
        with server.running() as base_url:
            ...  # point SchemrClient at base_url
    """

    def __init__(self, repository: SchemaRepository,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        from repro.index.suggest import PrefixSuggester
        self._repository = repository
        self._engine = repository.engine()
        handler = type("BoundHandler", (_SchemrRequestHandler,), {
            "engine": self._engine,
            "repository": self._repository,
            "suggester": PrefixSuggester(self._engine.searcher.index),
        })
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def base_url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True)
        self._thread.start()
        logger.info("schemr service listening on %s", self.base_url)

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5)
        self._httpd.server_close()
        self._thread = None
        logger.info("schemr service stopped")

    def running(self) -> "_RunningServer":
        """Context manager that starts/stops the server."""
        return _RunningServer(self)


class _RunningServer:
    def __init__(self, server: SchemrServer) -> None:
        self._server = server

    def __enter__(self) -> str:
        self._server.start()
        return self._server.base_url

    def __exit__(self, *exc_info: object) -> None:
        self._server.stop()
