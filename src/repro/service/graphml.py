"""GraphML serialization of schema graphs.

"The server performs a lookup of this ID in the schema repository and
returns a graphical representation of the schema to the client as a
GraphML response."  Node attributes carry what the GUI encodes visually:
element kind (node color), label, data type, and — when the request came
from a search result — the element's match score.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

import networkx as nx

from repro.errors import ServiceError
from repro.model.graph import schema_to_networkx
from repro.model.schema import Schema

_GRAPHML_NS = "http://graphml.graphdrawing.org/xmlns"

#: (key id, attribute name, GraphML type) for node data.
_NODE_KEYS = (
    ("d_kind", "kind", "string"),
    ("d_label", "label", "string"),
    ("d_type", "data_type", "string"),
    ("d_score", "match_score", "double"),
)
_EDGE_KEYS = (
    ("d_rel", "relation", "string"),
)


def graphml_for_schema(schema: Schema,
                       match_scores: dict[str, float] | None = None) -> str:
    """Serialize a schema's graph (with optional match scores) to GraphML."""
    graph = schema_to_networkx(schema)
    if match_scores:
        for path, score in match_scores.items():
            if graph.has_node(path):
                graph.nodes[path]["match_score"] = score
    root = ET.Element("graphml", attrib={"xmlns": _GRAPHML_NS})
    for key_id, name, attr_type in _NODE_KEYS:
        ET.SubElement(root, "key", attrib={
            "id": key_id, "for": "node", "attr.name": name,
            "attr.type": attr_type})
    for key_id, name, attr_type in _EDGE_KEYS:
        ET.SubElement(root, "key", attrib={
            "id": key_id, "for": "edge", "attr.name": name,
            "attr.type": attr_type})
    graph_node = ET.SubElement(root, "graph", attrib={
        "id": schema.name, "edgedefault": "directed"})
    for node_id, data in graph.nodes(data=True):
        node = ET.SubElement(graph_node, "node", attrib={"id": node_id})
        for key_id, name, _type in _NODE_KEYS:
            if name in data and data[name] != "":
                value = data[name]
                entry = ET.SubElement(node, "data", attrib={"key": key_id})
                entry.text = (f"{value:.6f}" if isinstance(value, float)
                              else str(value))
    for source, target, data in graph.edges(data=True):
        edge = ET.SubElement(graph_node, "edge", attrib={
            "source": source, "target": target})
        for key_id, name, _type in _EDGE_KEYS:
            if name in data:
                entry = ET.SubElement(edge, "data", attrib={"key": key_id})
                entry.text = str(data[name])
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def parse_graphml(text: str) -> nx.DiGraph:
    """Client-side GraphML reader; returns the schema graph with the same
    node/edge attributes :func:`graphml_for_schema` wrote."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ServiceError(f"malformed GraphML: {exc}") from exc
    ns = {"g": _GRAPHML_NS}
    if root.tag != f"{{{_GRAPHML_NS}}}graphml":
        raise ServiceError(f"unexpected root element {root.tag!r}")
    key_names: dict[str, tuple[str, str]] = {}
    for key in root.findall("g:key", ns):
        key_names[key.get("id", "")] = (
            key.get("attr.name", ""), key.get("attr.type", "string"))
    graph_node = root.find("g:graph", ns)
    if graph_node is None:
        raise ServiceError("GraphML has no <graph> element")
    graph = nx.DiGraph(name=graph_node.get("id", ""))
    for node in graph_node.findall("g:node", ns):
        node_id = node.get("id")
        if node_id is None:
            raise ServiceError("GraphML node without id")
        attrs = {}
        for data in node.findall("g:data", ns):
            name, attr_type = key_names.get(data.get("key", ""), ("", ""))
            if name:
                text_value = data.text or ""
                attrs[name] = (float(text_value) if attr_type == "double"
                               else text_value)
        graph.add_node(node_id, **attrs)
    for edge in graph_node.findall("g:edge", ns):
        source, target = edge.get("source"), edge.get("target")
        if source is None or target is None:
            raise ServiceError("GraphML edge without endpoints")
        attrs = {}
        for data in edge.findall("g:data", ns):
            name, _attr_type = key_names.get(data.get("key", ""), ("", ""))
            if name:
                attrs[name] = data.text or ""
        graph.add_edge(source, target, **attrs)
    return graph
