"""The HTTP service of Figure 5.

Two endpoints, same wire contract as the original system:

* ``GET /search?keywords=...`` (optionally ``POST`` with a DDL/XSD
  fragment body) — runs the engine and returns the ranked list as XML;
* ``GET /schema/<id>`` — returns the schema's graph as GraphML for the
  visualization client.

:class:`~repro.service.client.SchemrClient` is the matching thin client
used by the examples and integration tests.
"""

from repro.service.client import SchemrClient
from repro.service.graphml import graphml_for_schema, parse_graphml
from repro.service.server import SchemrServer
from repro.service.xmlresponse import parse_results_xml, results_to_xml

__all__ = [
    "SchemrClient",
    "SchemrServer",
    "graphml_for_schema",
    "parse_graphml",
    "parse_results_xml",
    "results_to_xml",
]
