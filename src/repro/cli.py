"""The ``schemr`` command-line interface.

Subcommands cover the full lifecycle::

    schemr init repo.db
    schemr import repo.db clinic.sql --name clinic
    schemr generate repo.db --count 1000 --seed 7
    schemr index repo.db
    schemr search repo.db --keywords "patient height gender" --top 10
    schemr show repo.db 3 --layout tree --depth 3
    schemr export repo.db 3 --format graphml
    schemr serve repo.db --port 8080
    schemr verify-index ./segments
    schemr replicate http://primary:8080 ./replica-segments
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

from repro.core.results import format_result_table
from repro.corpus.filters import paper_filter
from repro.corpus.generator import CorpusGenerator
from repro.errors import SchemrError
from repro.repository.store import SchemaRepository
from repro.service.graphml import graphml_for_schema
from repro.service.server import SchemrServer
from repro.viz.ascii_art import render_ascii_tree
from repro.viz.drill import display_subgraph
from repro.viz.radial import radial_layout
from repro.viz.svg import render_svg
from repro.viz.tree import tree_layout

from repro.model.graph import schema_to_networkx


#: Serve-flag -> SchemrConfig-field mapping, the single source of truth
#: the `config-cli-drift` lint rule reconciles against config.py.  Keys
#: must be declared with add_argument below; values must be real
#: SchemrConfig fields; argparse dests are derived mechanically
#: (strip dashes, dashes -> underscores).
SERVE_FLAG_FIELDS = {
    "--search-budget": "search_budget_seconds",
    "--max-concurrent": "max_concurrent_searches",
    "--request-timeout": "request_timeout_seconds",
    "--candidate-pool": "candidate_pool",
    "--match-workers": "match_workers",
    "--query-cache-size": "query_cache_size",
    "--slow-query": "slow_query_seconds",
    "--history-path": "history_path",
    "--history-max-bytes": "history_max_bytes",
    "--admission-queue": "admission_queue_size",
    "--admission-timeout": "admission_timeout_seconds",
    "--segment-dir": "segment_dir",
    "--merge-policy": "merge_policy",
    "--shards": "shards",
    "--shard-timeout": "shard_timeout_seconds",
    "--replicate-from": "replicate_from",
    "--max-replica-lag": "max_replica_lag_seconds",
    "--replica-poll": "replica_poll_seconds",
}


def _open_repository(path: str, must_exist: bool = True) -> SchemaRepository:
    if must_exist and not Path(path).exists():
        raise SchemrError(
            f"repository {path} does not exist; run `schemr init {path}`")
    return SchemaRepository(path)


# -- subcommand implementations ---------------------------------------------

def _cmd_init(args: argparse.Namespace) -> int:
    if Path(args.db).exists():
        raise SchemrError(f"{args.db} already exists")
    repo = SchemaRepository(args.db)
    repo.close()
    print(f"initialized empty schema repository at {args.db}")
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    text = Path(args.file).read_text(encoding="utf-8")
    with _open_repository(args.db) as repo:
        name = args.name or Path(args.file).stem
        if args.format == "xsd" or (args.format == "auto"
                                    and text.lstrip().startswith("<")):
            schema_id = repo.import_xsd(text, name=name,
                                        description=args.description)
        else:
            schema_id = repo.import_ddl(text, name=name,
                                        description=args.description)
        schema = repo.get_schema(schema_id)
        print(f"imported {schema.name!r} as schema {schema_id} "
              f"({schema.entity_count} entities, "
              f"{schema.attribute_count} attributes)")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = CorpusGenerator(seed=args.seed)
    raw = generator.generate_raw_stream(args.count)
    stats = paper_filter(raw)
    with _open_repository(args.db) as repo:
        for generated in stats.kept:
            repo.add_schema(generated.schema)
    print(stats.summary())
    print(f"stored {stats.kept_count} schemas in {args.db}")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    if args.shards and not args.segment_dir:
        raise SchemrError("--shards requires --segment-dir")
    with _open_repository(args.db) as repo:
        indexer = repo.indexer(segment_dir=args.segment_dir,
                               merge_policy=args.merge_policy,
                               shards=args.shards)
        applied = indexer.refresh()
        if args.save:
            indexer.save(args.save)
            print(f"saved index segment to {args.save}")
        if args.segment_dir:
            index = indexer.index
            shard_note = ""
            if args.shards:
                per_shard = ", ".join(
                    str(index.shard(i).document_count)
                    for i in range(index.shard_count))
                shard_note = (f" across {args.shards} shard(s) "
                              f"[{per_shard} docs]")
            print(f"segment directory {args.segment_dir}: "
                  f"{index.segment_count} segment(s), "
                  f"{index.mmap_bytes} mmapped bytes{shard_note}")
        print(f"applied {applied} index operations; index now holds "
              f"{indexer.index.document_count} documents, "
              f"{indexer.index.term_count} terms")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    fragment = None
    if args.fragment:
        fragment = Path(args.fragment).read_text(encoding="utf-8")
    with _open_repository(args.db) as repo:
        engine = repo.engine()
        results = engine.search(keywords=args.keywords, fragment=fragment,
                                top_n=args.top)
        if args.dedup:
            from repro.core.dedup import collapse_duplicates, format_deduped
            print(format_deduped(collapse_duplicates(results, repo)))
        else:
            print(format_result_table(results))
        if args.trace and engine.last_trace is not None:
            print()
            print(engine.last_trace.summary())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    with _open_repository(args.db) as repo:
        schema = repo.get_schema(args.schema_id)
    graph = schema_to_networkx(schema)
    display = display_subgraph(graph, focus=args.focus, max_depth=args.depth)
    if args.layout == "ascii":
        print(render_ascii_tree(display))
        return 0
    layout = (radial_layout(display) if args.layout == "radial"
              else tree_layout(display))
    svg = render_svg(layout, title=schema.name)
    if args.out:
        Path(args.out).write_text(svg, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(svg)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    import json

    from repro.repository.exporter import export_ddl, export_xsd
    with _open_repository(args.db) as repo:
        schema = repo.get_schema(args.schema_id)
    if args.format == "json":
        output = json.dumps(schema.to_dict(), indent=2)
    elif args.format == "ddl":
        output = export_ddl(schema)
    elif args.format == "xsd":
        output = export_xsd(schema)
    else:
        output = graphml_for_schema(schema)
    if args.out:
        Path(args.out).write_text(output, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(output)
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    from repro.viz.summarize import summarize_schema
    with _open_repository(args.db) as repo:
        schema = repo.get_schema(args.schema_id)
    summary = summarize_schema(schema, k=args.k)
    print(f"summary of {schema.name!r}: kept {len(summary.entities)} of "
          f"{schema.entity_count} entities "
          f"({summary.dropped} collapsed)")
    for name in summary.entities:
        print(f"  {name:<30} importance={summary.importance[name]:.3f}")
    for edge in summary.edges:
        kind = "fk" if edge.direct else f"via {edge.via_count} dropped"
        print(f"  {edge.source} -- {edge.target}  ({kind})")
    if args.out:
        graph = summary.to_networkx(schema)
        layout = tree_layout(display_subgraph(graph))
        Path(args.out).write_text(render_svg(layout, title=f"{schema.name}"
                                             " (summary)"),
                                  encoding="utf-8")
        print(f"wrote {args.out}")
    return 0


def _cmd_annotate(args: argparse.Namespace) -> int:
    from repro.codebook.annotate import annotate_schema
    with _open_repository(args.db) as repo:
        schema = repo.get_schema(args.schema_id)
    annotated = annotate_schema(schema)
    print(f"codebook annotations for {schema.name!r} "
          f"(coverage {annotated.coverage:.0%}):")
    for category, paths in annotated.by_category().items():
        print(f"  [{category}]")
        for path in paths:
            annotation = annotated.annotations[path]
            unit = annotation.concept.canonical_unit
            unit_note = f" ({unit})" if unit else ""
            print(f"    {path:<36} -> {annotation.concept.name}"
                  f"{unit_note}")
    return 0


def _cmd_backup(args: argparse.Namespace) -> int:
    from repro.repository.backup import backup_repository
    with _open_repository(args.db) as repo:
        count = backup_repository(repo, args.destination)
    print(f"backed up {count} schema(s) to {args.destination}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.mapping.diff import diff_schemas
    with _open_repository(args.db) as repo:
        old = repo.get_schema(args.old_id)
        new = repo.get_schema(args.new_id)
    print(diff_schemas(old, new).summary())
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    from repro.instances.sampler import generate_instances
    from repro.instances.store import save_instances
    with _open_repository(args.db) as repo:
        schema = repo.get_schema(args.schema_id)
        tables = generate_instances(schema, rows=args.rows, seed=args.seed)
        save_instances(repo, args.schema_id, tables)
        total = sum(t.row_count * len(t.columns) for t in tables.values())
        print(f"sampled {args.rows} example rows per entity for "
              f"{schema.name!r} ({total} values stored)")
    return 0


def _cmd_examples(args: argparse.Namespace) -> int:
    from repro.instances.store import load_instances
    with _open_repository(args.db) as repo:
        schema = repo.get_schema(args.schema_id)
        tables = load_instances(repo, args.schema_id)
    if not tables:
        print(f"no data examples stored for schema {args.schema_id}; "
              f"run `schemr sample` first")
        return 1
    for entity, table in tables.items():
        columns = list(table.columns)
        print(f"{schema.name}.{entity} ({table.row_count} rows)")
        print("  " + " | ".join(columns))
        for row in table.rows()[:args.rows]:
            print("  " + " | ".join(row))
        print()
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Telemetry snapshot: scrape a running server or probe a repository.

    ``target`` is either a base URL of a running ``schemr serve``
    (fetches ``/stats`` or, with ``--format prometheus``, ``/metrics``)
    or a repository path (opens it with telemetry enabled, optionally
    replays ``--warmup`` queries, and prints the local summary).
    """
    import urllib.request
    if args.target.startswith(("http://", "https://")):
        path = "/metrics" if args.format == "prometheus" else "/stats"
        with urllib.request.urlopen(args.target.rstrip("/") + path,
                                    timeout=10) as response:
            print(response.read().decode("utf-8"))
        return 0
    from repro.core.config import SchemrConfig
    with _open_repository(args.target) as repo:
        engine = repo.engine(config=SchemrConfig(telemetry_enabled=True))
        with engine:
            if args.warmup:
                for keywords in args.warmup.split(","):
                    keywords = keywords.strip()
                    if not keywords:
                        continue
                    try:
                        engine.search(keywords=keywords)
                    except SchemrError:
                        pass  # all-stopword warmups are not fatal
            print(f"repository: {args.target} "
                  f"({repo.schema_count} schemas)")
            if args.format == "prometheus":
                print(engine.telemetry.metrics.to_prometheus_text())
            else:
                print(engine.telemetry.summary_text())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.core.config import SchemrConfig
    repo = _open_repository(args.db)
    if args.access_log:
        logging.basicConfig(level=logging.INFO,
                            format="%(asctime)s %(name)s %(message)s")
    overrides: dict[str, object] = {"telemetry_enabled": True}
    for flag, field_name in SERVE_FLAG_FIELDS.items():
        value = getattr(args, flag.lstrip("-").replace("-", "_"))
        if value is not None:
            overrides[field_name] = value
    config = SchemrConfig(**overrides)
    server = SchemrServer(repo, host=args.host, port=args.port,
                          config=config, access_log=args.access_log)
    print(f"schemr service listening on {server.base_url}")

    # SIGTERM must tear down the shard worker pool (server.stop() ->
    # engine.close()) before the process exits, or the workers are
    # orphaned.  An Event keeps the handler async-signal-trivial; the
    # foreground loop notices and runs the ordinary shutdown path.
    stop_requested = threading.Event()
    previous_handler = None
    try:
        previous_handler = signal.signal(
            signal.SIGTERM, lambda signum, frame: stop_requested.set())
    except ValueError:  # pragma: no cover - not the main thread
        pass
    server.start()
    try:
        server_thread = getattr(server, "_thread")
        while (server_thread is not None and server_thread.is_alive()
               and not stop_requested.is_set()):
            stop_requested.wait(timeout=1.0)
        if stop_requested.is_set():
            print("shutting down (SIGTERM)")
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
        server.stop()
        repo.close()
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Replay synthetic traffic against the repository (or a server).

    The click model needs ground-truth relevance, which the repository
    does not persist — it is regenerated from the corpus seed/count the
    repository was populated with (`schemr generate` defaults match the
    replay defaults).
    """
    from repro.core.config import SchemrConfig
    from repro.resilience.shedding import AdmissionController
    from repro.telemetry.history import SearchHistorySink
    from repro.workload import (EngineTarget, HttpTarget, ReplayDriver,
                                WorkloadSpec, attach_schema_ids,
                                build_catalog, regenerate_corpus)

    spec = WorkloadSpec(seed=args.seed, sessions=args.sessions,
                        duration_seconds=args.duration,
                        fragment_fraction=args.fragment_fraction,
                        top_n=args.top)
    with _open_repository(args.db) as repo:
        corpus = attach_schema_ids(
            repo, regenerate_corpus(args.corpus_seed, args.corpus_count))
        catalog = build_catalog(corpus, args.catalog_size,
                                seed=args.catalog_seed)
        if args.url:
            target = HttpTarget(args.url)
        else:
            admission = None
            if args.max_concurrent is not None:
                admission = AdmissionController(
                    max_concurrent=args.max_concurrent,
                    queue_size=args.admission_queue,
                    queue_timeout_seconds=args.admission_timeout)
            engine = repo.engine(config=SchemrConfig(telemetry_enabled=True))
            target = EngineTarget(engine, admission=admission,
                                  owns_engine=True)
        sink = None
        if args.history:
            sink = SearchHistorySink(args.history,
                                     max_bytes=args.history_max_bytes)
        try:
            driver = ReplayDriver(target, catalog, spec, sink=sink)
            if args.mode == "open":
                report = driver.run_open_loop(target_qps=args.target_qps,
                                              max_workers=args.max_workers)
            else:
                report = driver.run_closed_loop(users=args.users)
        finally:
            if sink is not None:
                sink.close()
            target.close()
    print(report.summary())
    if args.history:
        print(f"history written to {args.history}")
    return 0


def _cmd_train_weights(args: argparse.Namespace) -> int:
    """Fit ensemble weights from harvested history; optionally A/B them."""
    from repro.telemetry.history import SearchHistorySink
    from repro.workload import (ab_compare, attach_schema_ids, build_catalog,
                                heldout_queries, regenerate_corpus,
                                train_weights)

    records = SearchHistorySink.load(args.history)
    if not records:
        raise SchemrError(f"no history records in {args.history}")
    with _open_repository(args.db) as repo:
        _, report = train_weights(records, repo)
        print(f"read {len(records)} history records from {args.history}")
        print(report.summary())
        if args.ab:
            corpus = attach_schema_ids(
                repo,
                regenerate_corpus(args.corpus_seed, args.corpus_count))
            catalog = build_catalog(corpus, args.catalog_size,
                                    seed=args.catalog_seed)
            held = heldout_queries(
                corpus, args.heldout, seed=args.heldout_seed,
                exclude=[entry.query for entry in catalog.entries])
            result = ab_compare(repo, report.weights, held, top_n=args.top)
            print(result.summary())
            if args.out:
                import json
                Path(args.out).write_text(
                    json.dumps({"training": report.to_dict(),
                                "ab": result.to_dict()}, indent=2),
                    encoding="utf-8")
                print(f"wrote {args.out}")
    return 0


def _cmd_verify_index(args: argparse.Namespace) -> int:
    """Offline integrity check of a flat or sharded segment directory.

    Re-reads every committed segment, re-computes CRCs against the
    manifest, and cross-checks SHARDS.json/MANIFEST.json consistency.
    Exit status 0 means every committed byte checked out; 1 means the
    per-file report above it names what did not.
    """
    from repro.index.segments import verify_directory
    report = verify_directory(args.directory)
    for line in report.lines():
        print(line)
    return 0 if report.ok else 1


def _cmd_replicate(args: argparse.Namespace) -> int:
    """One-shot replica sync: pull the primary's committed state.

    ``source`` is a running primary's base URL (``http://...``) or a
    local segment-directory path; ``destination`` is the local segment
    directory to catch up (created if missing).  Safe to re-run — pulls
    only what is missing and commits atomically.
    """
    from repro.replication import DirectorySource, HttpSource, ReplicaSyncer
    if "://" in args.source:
        source = HttpSource(args.source, timeout=args.timeout)
    else:
        source = DirectorySource(args.source)
    try:
        syncer = ReplicaSyncer(source, args.destination)
        report = syncer.sync_once()
    finally:
        source.close()
    dirs = ", ".join(report.dirs_updated) or "none"
    print(f"replicated {args.source} -> {args.destination}: "
          f"{'changed' if report.changed else 'already current'} "
          f"(generation {report.local_generation}); pulled "
          f"{report.pulled_segments} segment(s), "
          f"{report.pulled_bytes} bytes; dirs updated: {dirs}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.runner import main as lint_main
    argv: list[str] = list(args.paths)
    argv += ["--format", args.format]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.update_baseline:
        argv.append("--update-baseline")
    for rule in args.rules or ():
        argv += ["--rule", rule]
    if args.changed_only:
        argv.append("--changed-only")
    if args.list_rules:
        argv.append("--list-rules")
    if args.self_check:
        argv.append("--self-check")
    if args.design:
        argv += ["--design", args.design]
    return lint_main(argv)


# -- argument parsing --------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="schemr",
        description="Search and visualize schema repositories.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="create an empty repository")
    p.add_argument("db")
    p.set_defaults(func=_cmd_init)

    p = sub.add_parser("import", help="import a DDL or XSD file")
    p.add_argument("db")
    p.add_argument("file")
    p.add_argument("--name", default=None)
    p.add_argument("--description", default="")
    p.add_argument("--format", choices=("auto", "ddl", "xsd"),
                   default="auto")
    p.set_defaults(func=_cmd_import)

    p = sub.add_parser("generate",
                       help="populate with a synthetic WebTables corpus")
    p.add_argument("db")
    p.add_argument("--count", type=int, default=1000)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("index", help="refresh the text index")
    p.add_argument("db")
    p.add_argument("--save", default=None,
                   help="also persist the index segment to this path")
    p.add_argument("--segment-dir", default=None, metavar="DIR",
                   help="build/refresh a durable mmap segment directory "
                        "instead of the in-memory index")
    p.add_argument("--merge-policy", choices=("tiered", "none"),
                   default="tiered",
                   help="how flushed segments fold together "
                        "(with --segment-dir)")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="build a doc-id-sharded segment layout with N "
                        "shards (with --segment-dir; required for "
                        "`schemr serve --shards`)")
    p.set_defaults(func=_cmd_index)

    p = sub.add_parser("search", help="search the repository")
    p.add_argument("db")
    p.add_argument("--keywords", default=None)
    p.add_argument("--fragment", default=None,
                   help="path to a DDL/XSD fragment file")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--trace", action="store_true",
                   help="print the per-phase pipeline trace")
    p.add_argument("--dedup", action="store_true",
                   help="collapse near-duplicate schemas in the results")
    p.set_defaults(func=_cmd_search)

    p = sub.add_parser("show", help="visualize one schema")
    p.add_argument("db")
    p.add_argument("schema_id", type=int)
    p.add_argument("--layout", choices=("ascii", "tree", "radial"),
                   default="ascii")
    p.add_argument("--depth", type=int, default=3)
    p.add_argument("--focus", default=None,
                   help="drill in on this element path")
    p.add_argument("--out", default=None, help="write SVG here")
    p.set_defaults(func=_cmd_show)

    p = sub.add_parser("export", help="export one schema")
    p.add_argument("db")
    p.add_argument("schema_id", type=int)
    p.add_argument("--format", choices=("json", "graphml", "ddl", "xsd"),
                   default="json")
    p.add_argument("--out", default=None)
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("summarize",
                       help="size-k structural summary of one schema")
    p.add_argument("db")
    p.add_argument("schema_id", type=int)
    p.add_argument("-k", type=int, default=5)
    p.add_argument("--out", default=None, help="write summary SVG here")
    p.set_defaults(func=_cmd_summarize)

    p = sub.add_parser("annotate",
                       help="codebook concept annotations for one schema")
    p.add_argument("db")
    p.add_argument("schema_id", type=int)
    p.set_defaults(func=_cmd_annotate)

    p = sub.add_parser("backup", help="online backup of the repository")
    p.add_argument("db")
    p.add_argument("destination")
    p.set_defaults(func=_cmd_backup)

    p = sub.add_parser("diff",
                       help="structural diff between two stored schemas")
    p.add_argument("db")
    p.add_argument("old_id", type=int)
    p.add_argument("new_id", type=int)
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("sample",
                       help="generate and store data examples for a schema")
    p.add_argument("db")
    p.add_argument("schema_id", type=int)
    p.add_argument("--rows", type=int, default=20)
    p.add_argument("--seed", type=int, default=11)
    p.set_defaults(func=_cmd_sample)

    p = sub.add_parser("examples",
                       help="show stored data examples for a schema")
    p.add_argument("db")
    p.add_argument("schema_id", type=int)
    p.add_argument("--rows", type=int, default=5)
    p.set_defaults(func=_cmd_examples)

    p = sub.add_parser("stats",
                       help="telemetry snapshot of a repository or a "
                            "running server")
    p.add_argument("target",
                   help="repository path, or base URL of a running "
                        "`schemr serve` (e.g. http://127.0.0.1:8080)")
    p.add_argument("--warmup", default=None,
                   help="comma-separated keyword queries to run first "
                        "(repository mode)")
    p.add_argument("--format", choices=("text", "prometheus"),
                   default="text")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("serve", help="run the HTTP service")
    p.add_argument("db")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--access-log", action="store_true",
                   help="log every request (method, route, status, "
                        "duration) to stderr")
    p.add_argument("--search-budget", type=float, default=None,
                   metavar="SECONDS",
                   help="per-search wall-clock budget; past it the "
                        "pipeline degrades gracefully instead of "
                        "running long (default: unlimited)")
    p.add_argument("--max-concurrent", type=int, default=32,
                   metavar="N",
                   help="searches allowed in flight before admission "
                        "control queues and then sheds (429) new ones")
    p.add_argument("--request-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="socket read timeout per request; stalled "
                        "clients get a 408 instead of a wedged thread")
    p.add_argument("--candidate-pool", type=int, default=None,
                   metavar="N",
                   help="phase-1 candidate pool size handed to the "
                        "matcher (default: config default)")
    p.add_argument("--match-workers", type=int, default=None,
                   metavar="N",
                   help="worker threads for phase-2 match scoring")
    p.add_argument("--query-cache-size", type=int, default=None,
                   metavar="N",
                   help="entries kept in the phase-1 query cache")
    p.add_argument("--slow-query", type=float, default=None,
                   metavar="SECONDS",
                   help="searches slower than this are counted and "
                        "kept in the slow-query telemetry ring")
    p.add_argument("--history-path", default=None, metavar="PATH",
                   help="append-only JSONL search-history sink")
    p.add_argument("--history-max-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="rotate the history sink past this size "
                        "(default: unbounded)")
    p.add_argument("--admission-queue", type=int, default=None,
                   metavar="N",
                   help="searches allowed to wait for admission before "
                        "new arrivals are shed immediately")
    p.add_argument("--segment-dir", default=None, metavar="DIR",
                   help="serve the index from this mmap segment "
                        "directory (millisecond cold start; refreshes "
                        "flush durably)")
    p.add_argument("--merge-policy", choices=("tiered", "none"),
                   default=None,
                   help="segment merge policy used with --segment-dir")
    p.add_argument("--admission-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="longest a queued search waits for admission "
                        "before a 429")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="serve with N worker processes over a sharded "
                        "--segment-dir layout (escapes the GIL; "
                        "default: single-process)")
    p.add_argument("--shard-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-request budget for one shard worker before "
                        "the front repairs its slice locally")
    p.add_argument("--replicate-from", default=None, metavar="URL",
                   help="serve as a read replica of this primary "
                        "(base URL of its `schemr serve`, or a local "
                        "segment-directory path); pulls committed "
                        "segments into --segment-dir and hot-swaps them")
    p.add_argument("--max-replica-lag", type=float, default=None,
                   metavar="SECONDS",
                   help="replica staleness past which /readyz answers "
                        "503 (with --replicate-from)")
    p.add_argument("--replica-poll", type=float, default=None,
                   metavar="SECONDS",
                   help="how often the replica polls the primary for "
                        "new committed segments")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("replay",
                       help="replay synthetic sessions against the "
                            "repository or a running server")
    p.add_argument("db")
    p.add_argument("--mode", choices=("closed", "open"), default="closed",
                   help="closed: N concurrent users as fast as the stack "
                        "answers (harvest mode); open: arrivals at "
                        "--target-qps regardless of completions "
                        "(overload mode)")
    p.add_argument("--seed", type=int, default=97,
                   help="workload seed; the whole replay is "
                        "deterministic under it")
    p.add_argument("--sessions", type=int, default=200)
    p.add_argument("--duration", type=float, default=86400.0,
                   metavar="SECONDS",
                   help="virtual horizon the diurnal curve spans")
    p.add_argument("--corpus-seed", type=int, default=7,
                   help="seed `schemr generate` was run with")
    p.add_argument("--corpus-count", type=int, default=1000,
                   help="count `schemr generate` was run with")
    p.add_argument("--catalog-size", type=int, default=50,
                   help="distinct query intents in the Zipf catalog")
    p.add_argument("--catalog-seed", type=int, default=23)
    p.add_argument("--fragment-fraction", type=float, default=0.2,
                   help="fraction of queries attaching a DDL fragment")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--users", type=int, default=4,
                   help="concurrent simulated users (closed mode)")
    p.add_argument("--target-qps", type=float, default=50.0,
                   help="mean arrival rate (open mode)")
    p.add_argument("--max-workers", type=int, default=16,
                   help="dispatch threads (open mode)")
    p.add_argument("--url", default=None,
                   help="replay against this running `schemr serve` "
                        "base URL instead of in-process")
    p.add_argument("--max-concurrent", type=int, default=None, metavar="N",
                   help="put admission control (shedding) in front of "
                        "the in-process engine")
    p.add_argument("--admission-queue", type=int, default=8, metavar="N")
    p.add_argument("--admission-timeout", type=float, default=0.1,
                   metavar="SECONDS")
    p.add_argument("--history", default=None, metavar="PATH",
                   help="harvest clicked results to this JSONL history "
                        "(byte-identical across runs of the same spec)")
    p.add_argument("--history-max-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="rotate the harvested history past this size")
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser("train-weights",
                       help="fit ensemble weights from harvested search "
                            "history and A/B them against uniform")
    p.add_argument("db")
    p.add_argument("history", help="JSONL history harvested by "
                                   "`schemr replay --history` or "
                                   "`schemr serve --history-path`")
    p.add_argument("--corpus-seed", type=int, default=7)
    p.add_argument("--corpus-count", type=int, default=1000)
    p.add_argument("--catalog-size", type=int, default=50,
                   help="replay catalog size, excluded from the "
                        "held-out set")
    p.add_argument("--catalog-seed", type=int, default=23)
    p.add_argument("--heldout", type=int, default=30,
                   help="held-out ground-truth queries for the A/B")
    p.add_argument("--heldout-seed", type=int, default=51)
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--no-ab", dest="ab", action="store_false",
                   help="skip the uniform-vs-trained A/B evaluation")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the training + A/B report as JSON")
    p.set_defaults(func=_cmd_train_weights)

    p = sub.add_parser("verify-index",
                       help="integrity-check a segment directory "
                            "(CRCs, manifests, shard routing)")
    p.add_argument("directory",
                   help="flat or sharded segment directory to verify")
    p.set_defaults(func=_cmd_verify_index)

    p = sub.add_parser("replicate",
                       help="one-shot pull of a primary's committed "
                            "segments into a local directory")
    p.add_argument("source",
                   help="primary base URL (http://host:port) or local "
                        "segment-directory path")
    p.add_argument("destination",
                   help="local segment directory to sync (created if "
                        "missing)")
    p.add_argument("--timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="per-request timeout against an HTTP source")
    p.set_defaults(func=_cmd_replicate)

    p = sub.add_parser("lint",
                       help="run the project static-analysis rules "
                            "(see DESIGN.md, Static analysis)")
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: src tests)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="baseline JSON of grandfathered findings")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite --baseline with current findings")
    p.add_argument("--rule", action="append", dest="rules",
                   metavar="RULE",
                   help="run only this rule (repeatable); unknown "
                        "rule ids exit 2")
    p.add_argument("--changed-only", action="store_true",
                   help="report only findings in files changed vs git "
                        "HEAD (the full corpus is still analyzed)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--self-check", action="store_true",
                   help="verify the rule registry matches the DESIGN.md "
                        "rule catalog")
    p.add_argument("--design", default=None, metavar="PATH",
                   help="DESIGN.md location for --self-check")
    p.set_defaults(func=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SchemrError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like
        # well-behaved unix tools do.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
