"""Identifier word splitting.

Schema element names arrive as ``patient_height``, ``PatientHeight``,
``patient-height``, ``patientHeight2``...  The splitter breaks them into
word tokens at delimiter characters, camelCase humps and letter/digit
boundaries, which is what lets the name matcher relate ``pat_ht`` to
``patient height`` downstream.
"""

from __future__ import annotations

import re

#: Characters treated as hard word delimiters inside identifiers.
_DELIMITERS = re.compile(r"[\s_\-./:,;|#@()\[\]{}'\"`~!?&*+=<>\\$%^]+")

#: camelCase hump: lower-or-digit followed by upper.
_CAMEL_HUMP = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")

#: Acronym boundary: run of uppers followed by Upper+lower (``XMLFile``).
_ACRONYM_BOUNDARY = re.compile(r"(?<=[A-Z])(?=[A-Z][a-z])")

#: Letter/digit boundary in either direction (``addr2`` -> ``addr 2``).
_ALNUM_BOUNDARY = re.compile(r"(?<=[A-Za-z])(?=[0-9])|(?<=[0-9])(?=[A-Za-z])")


def split_identifier(identifier: str) -> list[str]:
    """Split one identifier into word tokens, preserving original case.

    >>> split_identifier("PatientHeight_cm")
    ['Patient', 'Height', 'cm']
    >>> split_identifier("XMLHttpRequest")
    ['XML', 'Http', 'Request']
    >>> split_identifier("addr2")
    ['addr', '2']
    """
    pieces = _DELIMITERS.split(identifier)
    words: list[str] = []
    for piece in pieces:
        if not piece:
            continue
        piece = _ACRONYM_BOUNDARY.sub(" ", piece)
        piece = _CAMEL_HUMP.sub(" ", piece)
        piece = _ALNUM_BOUNDARY.sub(" ", piece)
        words.extend(w for w in piece.split(" ") if w)
    return words


def split_words_lower(identifier: str) -> list[str]:
    """Split and lowercase in one step (the common caller need)."""
    return [word.lower() for word in split_identifier(identifier)]
