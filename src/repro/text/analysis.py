"""Analyzer chains: identifier text -> index terms.

An :class:`Analyzer` is a configurable pipeline:

    split -> lowercase -> [stopword filter] -> [length filter] -> [stem]

Two ready-made instances cover the library's needs:

* :data:`SCHEMA_ANALYZER` — the full chain used when indexing schema
  documents and analyzing queries (matches the paper's Lucene setup);
* :data:`SIMPLE_ANALYZER` — split + lowercase only, used where stemming
  would hurt (n-gram name matching works on surface forms).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.splitter import split_identifier
from repro.text.stemmer import porter_stem
from repro.text.stopwords import is_stopword


@dataclass(frozen=True, slots=True)
class Analyzer:
    """Configurable identifier-to-terms pipeline.

    Parameters
    ----------
    remove_stopwords:
        Drop English/schema stopwords after lowercasing.
    stem:
        Apply Porter stemming as the final stage.
    min_length / max_length:
        Tokens outside the byte-length band are dropped (single letters
        are noise; absurdly long tokens are usually junk data).
    """

    remove_stopwords: bool = True
    stem: bool = True
    min_length: int = 1
    max_length: int = 64

    def analyze(self, text: str) -> list[str]:
        """Produce the term list for one piece of text."""
        terms: list[str] = []
        for word in split_identifier(text):
            token = word.lower()
            if self.remove_stopwords and is_stopword(token):
                continue
            if not (self.min_length <= len(token) <= self.max_length):
                continue
            if self.stem:
                token = porter_stem(token)
            if token:
                terms.append(token)
        return terms

    def analyze_all(self, texts: list[str]) -> list[str]:
        """Analyze several texts and concatenate the term lists in order."""
        terms: list[str] = []
        for text in texts:
            terms.extend(self.analyze(text))
        return terms

    def unique_terms(self, text: str) -> set[str]:
        """Set view of :meth:`analyze` (used by set-based matchers)."""
        return set(self.analyze(text))


#: Full pipeline used by the inverted index.
SCHEMA_ANALYZER = Analyzer()

#: Splitting + lowercasing only, for surface-form matchers.
SIMPLE_ANALYZER = Analyzer(remove_stopwords=False, stem=False)
