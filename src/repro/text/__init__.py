"""Text analysis: the analyzer chain feeding the inverted index.

The index never sees raw element names.  They pass through an
:class:`~repro.text.analysis.Analyzer`: word splitting (delimiters and
camelCase), lowercasing, stopword removal, length filtering and Porter
stemming — the same pipeline shape a stock Lucene ``StandardAnalyzer`` +
``PorterStemFilter`` would apply in the original system.
"""

from repro.text.analysis import Analyzer, SCHEMA_ANALYZER, SIMPLE_ANALYZER
from repro.text.splitter import split_identifier
from repro.text.stemmer import porter_stem
from repro.text.stopwords import STOPWORDS, is_stopword

__all__ = [
    "Analyzer",
    "SCHEMA_ANALYZER",
    "SIMPLE_ANALYZER",
    "STOPWORDS",
    "is_stopword",
    "porter_stem",
    "split_identifier",
]
