"""English stopword list.

The list mirrors Lucene's classic ``StandardAnalyzer`` English stop set,
extended with a handful of words that are noise in schema names
("table", "column", "field", ...).  Schema identifiers are short, so an
aggressive list would destroy recall; this one only removes genuinely
semantics-free tokens.
"""

from __future__ import annotations

#: Lucene StandardAnalyzer's classic English stop set.
_LUCENE_STOPWORDS = frozenset({
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if",
    "in", "into", "is", "it", "no", "not", "of", "on", "or", "such", "that",
    "the", "their", "then", "there", "these", "they", "this", "to", "was",
    "will", "with",
})

#: Extra stopwords that carry no signal inside schema element names.
_SCHEMA_STOPWORDS = frozenset({
    "tbl", "col", "val", "rec",
})

STOPWORDS: frozenset[str] = _LUCENE_STOPWORDS | _SCHEMA_STOPWORDS


def is_stopword(token: str) -> bool:
    """True when ``token`` (already lowercased) is a stopword."""
    return token in STOPWORDS
