"""Porter stemming algorithm, implemented from the 1980 paper.

M.F. Porter, "An algorithm for suffix stripping", Program 14(3) 1980.
This is the classic 5-step rule cascade; it matches the reference
implementation's output on the standard vocabulary for the cases our
tests exercise (plurals, -ed/-ing, y->i, double suffixes, -full/-ness,
-ant/-ence, final -e removal, -ll reduction).

Only lowercase ASCII words should be passed in; the analyzer chain
guarantees that.
"""

from __future__ import annotations

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        # y is a consonant at the start or after a vowel sound boundary:
        # it is a consonant iff the previous letter is NOT a consonant.
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The m in Porter's [C](VC)^m[V] decomposition of ``stem``."""
    m = 0
    prev_was_vowel = False
    for i in range(len(stem)):
        is_vowel = not _is_consonant(stem, i)
        if prev_was_vowel and not is_vowel:
            m += 1
        prev_was_vowel = is_vowel
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (len(word) >= 2 and word[-1] == word[-2]
            and _is_consonant(word, len(word) - 1))


def _ends_cvc(word: str) -> bool:
    """*o condition: stem ends cvc where the final c is not w, x or y."""
    if len(word) < 3:
        return False
    return (_is_consonant(word, len(word) - 3)
            and not _is_consonant(word, len(word) - 2)
            and _is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy")


def _replace_suffix(word: str, suffix: str, replacement: str) -> str:
    return word[: len(word) - len(suffix)] + replacement


def _step1a(word: str) -> str:
    if word.endswith("sses"):
        return _replace_suffix(word, "sses", "ss")
    if word.endswith("ies"):
        return _replace_suffix(word, "ies", "i")
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        word = word[:-2]
        flag = True
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word = word[:-3]
        flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and not word.endswith(("l", "s", "z")):
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_RULES = (
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
)

_STEP3_RULES = (
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
)

_STEP4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def _apply_rules(word: str, rules: tuple[tuple[str, str], ...],
                 min_measure: int) -> str:
    for suffix, replacement in rules:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > min_measure - 1:
                return stem + replacement
            return word
    return word


def _step4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    # (m>1 and (*S or *T)) ION
    if word.endswith("ion"):
        stem = word[:-3]
        if _measure(stem) > 1 and stem and stem[-1] in "st":
            return stem
    return word


def _step5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step5b(word: str) -> str:
    if _measure(word) > 1 and word.endswith("ll"):
        return word[:-1]
    return word


def porter_stem(word: str) -> str:
    """Stem one lowercase word.  Words of length <= 2 pass through."""
    if len(word) <= 2:
        return word
    word = _step1a(word)
    word = _step1b(word)
    word = _step1c(word)
    word = _apply_rules(word, _STEP2_RULES, min_measure=1)
    word = _apply_rules(word, _STEP3_RULES, min_measure=1)
    word = _step4(word)
    word = _step5a(word)
    word = _step5b(word)
    return word
