"""SVG rendering of layouts.

Node color encodes the element kind (the paper: "Node color corresponds
to schema element types (e.g. entity or attribute)"); a match-score
halo encodes similarity; collapsed nodes get a "+" badge.  Multiple
layouts can be rendered side by side for comparison, as in the Figure 2
results panel.
"""

from __future__ import annotations

from repro.viz.layout import Layout

#: Element-kind color coding.
KIND_COLORS = {
    "schema": "#4c72b0",
    "entity": "#dd8452",
    "attribute": "#55a868",
}
_MATCH_HALO = "#c44e52"
_NODE_RADIUS = 16.0
_FONT_SIZE = 11


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _render_body(layout: Layout, offset_x: float = 0.0) -> list[str]:
    parts: list[str] = []
    for source, target, relation in layout.edges:
        a = layout.nodes[source]
        b = layout.nodes[target]
        dash = ' stroke-dasharray="6,4"' if relation == "foreign_key" else ""
        color = "#b03060" if relation == "foreign_key" else "#999999"
        parts.append(
            f'<line x1="{a.x + offset_x:.1f}" y1="{a.y:.1f}" '
            f'x2="{b.x + offset_x:.1f}" y2="{b.y:.1f}" '
            f'stroke="{color}" stroke-width="1.5"{dash}/>')
    for node in layout.nodes.values():
        color = KIND_COLORS.get(node.kind, "#888888")
        x = node.x + offset_x
        if node.match_score is not None and node.match_score > 0:
            halo = _NODE_RADIUS + 4 + 6 * min(node.match_score, 1.0)
            opacity = 0.25 + 0.6 * min(node.match_score, 1.0)
            parts.append(
                f'<circle cx="{x:.1f}" cy="{node.y:.1f}" r="{halo:.1f}" '
                f'fill="{_MATCH_HALO}" fill-opacity="{opacity:.2f}"/>')
        parts.append(
            f'<circle cx="{x:.1f}" cy="{node.y:.1f}" r="{_NODE_RADIUS}" '
            f'fill="{color}" stroke="#333333" stroke-width="1"/>')
        parts.append(
            f'<text x="{x:.1f}" y="{node.y + _NODE_RADIUS + _FONT_SIZE:.1f}" '
            f'text-anchor="middle" font-size="{_FONT_SIZE}" '
            f'font-family="sans-serif">{_escape(node.label)}</text>')
        if node.match_score is not None and node.match_score > 0:
            parts.append(
                f'<text x="{x:.1f}" y="{node.y + 4:.1f}" '
                f'text-anchor="middle" font-size="9" fill="#ffffff" '
                f'font-family="sans-serif">{node.match_score:.2f}</text>')
    return parts


def render_svg(layout: Layout, title: str | None = None) -> str:
    """One layout as a standalone SVG document."""
    width = max(layout.width, 200.0)
    height = max(layout.height, 200.0)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.1f}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold" '
            f'font-family="sans-serif">{_escape(title)}</text>')
    parts.extend(_render_body(layout))
    parts.append("</svg>")
    return "\n".join(parts)


def render_side_by_side(layouts: list[Layout], gap: float = 60.0) -> str:
    """Several layouts in one SVG, left to right, for visual comparison."""
    if not layouts:
        return render_svg(Layout(name="empty"))
    total_width = sum(max(layout.width, 200.0) for layout in layouts)
    total_width += gap * (len(layouts) - 1)
    height = max(max(layout.height, 200.0) for layout in layouts)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{total_width:.0f}" '
        f'height="{height:.0f}" '
        f'viewBox="0 0 {total_width:.0f} {height:.0f}">',
    ]
    offset = 0.0
    for layout in layouts:
        parts.append(
            f'<text x="{offset + max(layout.width, 200.0) / 2:.1f}" y="20" '
            f'text-anchor="middle" font-size="14" font-weight="bold" '
            f'font-family="sans-serif">{_escape(layout.name)}</text>')
        parts.extend(_render_body(layout, offset_x=offset))
        offset += max(layout.width, 200.0) + gap
    parts.append("</svg>")
    return "\n".join(parts)
