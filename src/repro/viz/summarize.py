"""Schema summarization for very large schemas.

"To ensure Schemr scales to very large schemas, we plan to employ schema
visualization and summarization techniques, such as those proposed in
[7, 9]" — [9] being Yu & Jagadish's *Schema Summarization* (VLDB 2006).

Following their recipe in spirit: each entity gets an **importance**
score that combines its own information content (attribute count) with
importance received from its foreign-key neighbors (an iterative
PageRank-style propagation); a size-``k`` summary keeps the ``k`` most
important entities and preserves *connectivity* by collapsing paths
through dropped entities into derived "via" edges, so the summary is a
faithful small map of the original's structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import SchemaError
from repro.model.graph import entity_adjacency
from repro.model.schema import Schema

#: Propagation parameters (Yu & Jagadish use a similar damped iteration).
_DAMPING = 0.85
_ITERATIONS = 50


#: Weight of information content vs walk centrality in the final mix.
_CONTENT_WEIGHT = 0.5


def entity_importance(schema: Schema) -> dict[str, float]:
    """Importance of each entity in [0, 1], summing to 1.

    Two signals, mixed equally (Yu & Jagadish combine information
    content with connection strength the same way):

    * *content* — normalized ``1 + attribute count``;
    * *centrality* — a damped random walk over the undirected FK graph
      with content as the teleport prior.

    The explicit content term keeps thin articulation entities (a
    two-column join table between two rich entities) from dominating
    the summary purely by walk position.
    """
    if not schema.entities:
        return {}
    adjacency = entity_adjacency(schema)
    names = list(schema.entities)
    content = {name: 1.0 + len(schema.entities[name].attributes)
               for name in names}
    total_content = sum(content.values())
    prior = {name: content[name] / total_content for name in names}
    rank = dict(prior)
    for _ in range(_ITERATIONS):
        next_rank = {}
        for name in names:
            received = sum(rank[neighbor] / max(len(adjacency[neighbor]), 1)
                           for neighbor in adjacency[name])
            next_rank[name] = ((1.0 - _DAMPING) * prior[name]
                               + _DAMPING * received)
        # Isolated nodes lose their damped share; renormalize so the
        # scores remain a distribution.
        total = sum(next_rank.values())
        rank = {name: value / total for name, value in next_rank.items()}
    return {name: (_CONTENT_WEIGHT * prior[name]
                   + (1.0 - _CONTENT_WEIGHT) * rank[name])
            for name in names}


@dataclass(frozen=True, slots=True)
class SummaryEdge:
    """Connectivity between two summary entities.

    ``direct`` edges existed in the original FK graph; derived edges ran
    through ``via_count`` dropped entities (shortest such path).
    """

    source: str
    target: str
    direct: bool
    via_count: int = 0


@dataclass(slots=True)
class SchemaSummary:
    """A size-k summary: kept entities, their importance, connectivity."""

    schema_name: str
    entities: list[str]
    importance: dict[str, float]
    edges: list[SummaryEdge] = field(default_factory=list)
    dropped: int = 0

    def to_networkx(self, schema: Schema) -> nx.DiGraph:
        """A displayable graph of the summary (kept entities + their
        attributes + summary edges), ready for the layout engines."""
        graph = nx.DiGraph(name=f"{self.schema_name} (summary)")
        root = f"schema:{self.schema_name}"
        graph.add_node(root, kind="schema", label=self.schema_name)
        for name in self.entities:
            entity = schema.entity(name)
            label = f"{name} ({self.importance[name]:.2f})"
            graph.add_node(name, kind="entity", label=label)
            graph.add_edge(root, name, relation="contains")
            for attr in entity.attributes:
                path = f"{name}.{attr.name}"
                graph.add_node(path, kind="attribute", label=attr.name,
                               data_type=attr.data_type)
                graph.add_edge(name, path, relation="contains")
        for edge in self.edges:
            relation = "foreign_key" if edge.direct else "derived"
            graph.add_edge(edge.source, edge.target, relation=relation,
                           via_count=edge.via_count)
        return graph


def summarize_schema(schema: Schema, k: int = 5) -> SchemaSummary:
    """The size-``k`` summary of ``schema``.

    Keeps the ``k`` highest-importance entities; for every kept pair
    connected in the original FK graph (possibly through dropped
    entities) emits one :class:`SummaryEdge`.  ``k >= entity_count``
    degenerates to the identity summary.
    """
    if k <= 0:
        raise SchemaError(f"summary size must be positive, got {k}")
    importance = entity_importance(schema)
    ranked = sorted(importance, key=lambda name: (-importance[name], name))
    kept = sorted(ranked[:k])
    kept_set = set(kept)
    adjacency = entity_adjacency(schema)

    edges: list[SummaryEdge] = []
    seen_pairs: set[tuple[str, str]] = set()
    for source in kept:
        # BFS through dropped entities only, recording the hop count.
        frontier = [(source, 0)]
        visited = {source}
        while frontier:
            node, depth = frontier.pop(0)
            for neighbor in sorted(adjacency[node]):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                if neighbor in kept_set:
                    pair = tuple(sorted((source, neighbor)))
                    if source < neighbor and pair not in seen_pairs:
                        seen_pairs.add(pair)
                        edges.append(SummaryEdge(
                            source=source, target=neighbor,
                            direct=depth == 0, via_count=depth))
                else:
                    frontier.append((neighbor, depth + 1))
    return SchemaSummary(
        schema_name=schema.name,
        entities=kept,
        importance={name: importance[name] for name in kept},
        edges=edges,
        dropped=len(schema.entities) - len(kept),
    )
