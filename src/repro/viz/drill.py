"""Depth capping and drill-in.

"To ensure Schemr scales to very large schemas, we cap the displayed
graph depth to 3.  To drill in on a particular branch at a greater
depth, users can simply double click on a node to view its descendants
in further detail."  Double-clicking also "re-centers the layout of the
graph such that the new node is in the center".
"""

from __future__ import annotations

import networkx as nx

from repro.errors import SchemrError
from repro.viz.layout import containment_children, find_root

#: The paper's display depth cap.
DEFAULT_MAX_DEPTH = 3


def display_subgraph(graph: nx.DiGraph, focus: str | None = None,
                     max_depth: int = DEFAULT_MAX_DEPTH) -> nx.DiGraph:
    """The displayable portion of ``graph``.

    Starting from ``focus`` (default: the schema root), includes
    containment descendants down to ``max_depth`` levels below the
    focus.  Non-containment edges (foreign keys) are kept when both
    endpoints are visible.  Every node carries a ``depth`` attribute
    relative to the focus; nodes whose children were cut carry
    ``collapsed=True`` so renderers can draw the expand affordance.
    """
    if max_depth < 0:
        raise SchemrError(f"max_depth must be >= 0, got {max_depth}")
    root = focus if focus is not None else find_root(graph)
    if root not in graph:
        raise SchemrError(f"focus node {root!r} is not in the graph")
    visible: dict[str, int] = {root: 0}
    frontier = [root]
    while frontier:
        next_frontier: list[str] = []
        for node in frontier:
            depth = visible[node]
            if depth >= max_depth:
                continue
            for child in containment_children(graph, node):
                if child not in visible:
                    visible[child] = depth + 1
                    next_frontier.append(child)
        frontier = next_frontier
    sub = nx.DiGraph(name=graph.graph.get("name", ""))
    for node, depth in visible.items():
        data = dict(graph.nodes[node])
        data["depth"] = depth
        data["collapsed"] = (depth == max_depth
                             and bool(containment_children(graph, node)))
        sub.add_node(node, **data)
    for source, target, data in graph.edges(data=True):
        if source in visible and target in visible:
            sub.add_edge(source, target, **data)
    return sub


def drill_in(graph: nx.DiGraph, node: str,
             max_depth: int = DEFAULT_MAX_DEPTH) -> nx.DiGraph:
    """The double-click operation: re-center the display on ``node``."""
    return display_subgraph(graph, focus=node, max_depth=max_depth)
