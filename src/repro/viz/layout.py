"""Shared layout data structures."""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import SchemrError
from repro.model.graph import KIND_SCHEMA


@dataclass(slots=True)
class LayoutNode:
    """One positioned node: coordinates plus the visual-encoding inputs."""

    node_id: str
    label: str
    kind: str
    x: float
    y: float
    depth: int
    match_score: float | None = None


@dataclass(slots=True)
class Layout:
    """A positioned graph ready for rendering."""

    name: str
    nodes: dict[str, LayoutNode] = field(default_factory=dict)
    edges: list[tuple[str, str, str]] = field(default_factory=list)
    width: float = 0.0
    height: float = 0.0

    def node(self, node_id: str) -> LayoutNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise SchemrError(f"layout has no node {node_id!r}") from None


def find_root(graph: nx.DiGraph) -> str:
    """The display root: the synthetic schema node when present, else any
    node without incoming containment edges."""
    for node, data in graph.nodes(data=True):
        if data.get("kind") == KIND_SCHEMA:
            return node
    for node in graph.nodes:
        if graph.in_degree(node) == 0:
            return node
    raise SchemrError("graph has no root node")


def containment_children(graph: nx.DiGraph, node: str) -> list[str]:
    """Children via containment edges only (FK edges are overlays)."""
    children = []
    for _source, target, data in graph.out_edges(node, data=True):
        if data.get("relation", "contains") == "contains":
            children.append(target)
    return sorted(children)
