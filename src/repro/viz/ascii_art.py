"""Terminal rendering: the CLI's stand-in for the GUI tree view.

Produces the familiar box-drawing tree with kind markers, data types,
match scores, and the "+" affordance on collapsed (depth-capped) nodes::

    clinic_emr [schema]
    ├── case [entity]
    │   ├── diagnosis : TEXT (match 0.64)
    │   └── patient_id : INTEGER
    └── patient [entity] +
"""

from __future__ import annotations

import networkx as nx

from repro.viz.layout import containment_children, find_root

_KIND_TAGS = {"schema": "[schema]", "entity": "[entity]", "attribute": ""}


def _node_line(graph: nx.DiGraph, node: str) -> str:
    data = graph.nodes[node]
    label = data.get("label", node)
    parts = [label]
    tag = _KIND_TAGS.get(data.get("kind", "attribute"), "")
    if tag:
        parts.append(tag)
    data_type = data.get("data_type", "")
    if data_type:
        parts[0] = f"{label} : {data_type}"
    score = data.get("match_score")
    if score is not None and score > 0:
        parts.append(f"(match {score:.2f})")
    if data.get("collapsed"):
        parts.append("+")
    return " ".join(parts)


def render_ascii_tree(graph: nx.DiGraph, root: str | None = None) -> str:
    """Render the containment tree of ``graph`` with box-drawing lines."""
    if root is None:
        root = find_root(graph)
    lines = [_node_line(graph, root)]

    def walk(node: str, prefix: str) -> None:
        children = containment_children(graph, node)
        for i, child in enumerate(children):
            last = i == len(children) - 1
            branch = "└── " if last else "├── "
            lines.append(prefix + branch + _node_line(graph, child))
            walk(child, prefix + ("    " if last else "│   "))

    walk(root, "")
    return "\n".join(lines)
