"""Hierarchical tree layout.

A compact Reingold–Tilford-style tiered layout: leaves take consecutive
horizontal slots, parents center over their children, depth maps to the
vertical axis.
"""

from __future__ import annotations

import networkx as nx

from repro.viz.layout import Layout, LayoutNode, containment_children, find_root

#: Pixel spacing between sibling leaves and between depth tiers.
H_SPACING = 120.0
V_SPACING = 90.0
MARGIN = 60.0


def tree_layout(graph: nx.DiGraph, root: str | None = None) -> Layout:
    """Position the containment tree of ``graph``.

    ``graph`` is typically the output of
    :func:`~repro.viz.drill.display_subgraph`.  Foreign-key edges are
    carried through as overlay edges without affecting positions.
    """
    if root is None:
        root = find_root(graph)
    layout = Layout(name=graph.graph.get("name", ""))
    next_slot = 0.0

    def place(node: str, depth: int) -> float:
        """Post-order placement; returns the node's x coordinate."""
        nonlocal next_slot
        children = containment_children(graph, node)
        if children:
            xs = [place(child, depth + 1) for child in children]
            x = (min(xs) + max(xs)) / 2.0
        else:
            x = MARGIN + next_slot * H_SPACING
            next_slot += 1.0
        data = graph.nodes[node]
        layout.nodes[node] = LayoutNode(
            node_id=node,
            label=data.get("label", node),
            kind=data.get("kind", "attribute"),
            x=x,
            y=MARGIN + depth * V_SPACING,
            depth=depth,
            match_score=data.get("match_score"),
        )
        return x

    place(root, 0)
    for source, target, data in graph.edges(data=True):
        if source in layout.nodes and target in layout.nodes:
            layout.edges.append(
                (source, target, data.get("relation", "contains")))
    layout.width = max((n.x for n in layout.nodes.values()),
                       default=0.0) + MARGIN
    layout.height = max((n.y for n in layout.nodes.values()),
                        default=0.0) + MARGIN
    return layout
