"""Visualization: the algorithmic content of the Schemr GUI.

The original client renders schemas in Flash with the Flare toolkit;
the visual encodings and layouts are what carry information, so this
package computes them directly:

* :mod:`~repro.viz.drill` — the depth-3 display cap and the drill-in /
  re-center operation (double-click on a node);
* :mod:`~repro.viz.tree` — hierarchical tree layout;
* :mod:`~repro.viz.radial` — radial layout (the one shown in Figure 2);
* :mod:`~repro.viz.svg` — SVG rendering with node color by element kind
  and match-score encoding, including side-by-side comparison;
* :mod:`~repro.viz.ascii_art` — terminal rendering for the CLI.
"""

from repro.viz.ascii_art import render_ascii_tree
from repro.viz.drill import display_subgraph
from repro.viz.layout import Layout, LayoutNode
from repro.viz.radial import radial_layout
from repro.viz.summarize import SchemaSummary, entity_importance, summarize_schema
from repro.viz.svg import render_side_by_side, render_svg
from repro.viz.tree import tree_layout

__all__ = [
    "Layout",
    "LayoutNode",
    "SchemaSummary",
    "display_subgraph",
    "entity_importance",
    "radial_layout",
    "render_ascii_tree",
    "render_side_by_side",
    "render_svg",
    "summarize_schema",
    "tree_layout",
]
