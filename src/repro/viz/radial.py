"""Radial layout — the view shown in Figure 2's results panel.

The focus node sits at the center; each depth tier occupies a
concentric ring; every subtree receives an angular wedge proportional
to its leaf count, and nodes sit at the angular midpoint of their
wedge.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.viz.layout import Layout, LayoutNode, containment_children, find_root

RING_GAP = 110.0
MARGIN = 60.0


def _leaf_count(graph: nx.DiGraph, node: str) -> int:
    children = containment_children(graph, node)
    if not children:
        return 1
    return sum(_leaf_count(graph, child) for child in children)


def radial_layout(graph: nx.DiGraph, root: str | None = None) -> Layout:
    """Position ``graph`` on concentric rings around the root."""
    if root is None:
        root = find_root(graph)
    layout = Layout(name=graph.graph.get("name", ""))
    max_depth = 0

    def place(node: str, depth: int, angle_start: float,
              angle_end: float) -> None:
        nonlocal max_depth
        max_depth = max(max_depth, depth)
        angle = (angle_start + angle_end) / 2.0
        radius = depth * RING_GAP
        data = graph.nodes[node]
        layout.nodes[node] = LayoutNode(
            node_id=node,
            label=data.get("label", node),
            kind=data.get("kind", "attribute"),
            x=radius * math.cos(angle),
            y=radius * math.sin(angle),
            depth=depth,
            match_score=data.get("match_score"),
        )
        children = containment_children(graph, node)
        if not children:
            return
        total_leaves = sum(_leaf_count(graph, child) for child in children)
        cursor = angle_start
        for child in children:
            span = ((angle_end - angle_start)
                    * _leaf_count(graph, child) / total_leaves)
            place(child, depth + 1, cursor, cursor + span)
            cursor += span

    place(root, 0, 0.0, 2.0 * math.pi)
    for source, target, data in graph.edges(data=True):
        if source in layout.nodes and target in layout.nodes:
            layout.edges.append(
                (source, target, data.get("relation", "contains")))
    # Shift into positive coordinates for rendering.
    extent = max_depth * RING_GAP + MARGIN
    for node in layout.nodes.values():
        node.x += extent
        node.y += extent
    layout.width = 2.0 * extent
    layout.height = 2.0 * extent
    return layout
