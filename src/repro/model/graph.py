"""Graph views of a schema.

Two views are needed downstream:

* an *entity adjacency* map (undirected, entity level) feeding the
  foreign-key transitive closure in :mod:`repro.scoring.neighborhood`;
* a full *networkx* graph (schema -> entities -> attributes, plus FK
  edges) feeding layout and GraphML export in :mod:`repro.viz` and
  :mod:`repro.service.graphml`.
"""

from __future__ import annotations

import networkx as nx

from repro.model.schema import Schema

#: Node attribute values for the ``kind`` key in exported graphs.
KIND_SCHEMA = "schema"
KIND_ENTITY = "entity"
KIND_ATTRIBUTE = "attribute"

#: Edge attribute values for the ``relation`` key.
REL_CONTAINS = "contains"
REL_FOREIGN_KEY = "foreign_key"


def entity_adjacency(schema: Schema) -> dict[str, set[str]]:
    """Undirected entity-level adjacency induced by foreign keys.

    Every entity appears as a key even when isolated, so callers can
    treat absence from a neighborhood as "unrelated entity" without
    special-casing.
    """
    adjacency: dict[str, set[str]] = {name: set() for name in schema.entities}
    for fk in schema.foreign_keys:
        if fk.source_entity == fk.target_entity:
            continue  # self-references do not change neighborhoods
        adjacency[fk.source_entity].add(fk.target_entity)
        adjacency[fk.target_entity].add(fk.source_entity)
    return adjacency


def schema_to_networkx(schema: Schema) -> nx.DiGraph:
    """Full containment + FK graph with display metadata on every node.

    Node ids are element paths (``patient``, ``patient.height``) plus a
    synthetic root ``schema:<name>`` node, matching what the GraphML
    endpoint serves to the GUI.
    """
    graph = nx.DiGraph(name=schema.name)
    root = f"schema:{schema.name}"
    graph.add_node(root, kind=KIND_SCHEMA, label=schema.name)
    for entity in schema.entities.values():
        graph.add_node(entity.name, kind=KIND_ENTITY, label=entity.name)
        graph.add_edge(root, entity.name, relation=REL_CONTAINS)
        for attr in entity.attributes:
            path = f"{entity.name}.{attr.name}"
            graph.add_node(path, kind=KIND_ATTRIBUTE, label=attr.name,
                           data_type=attr.data_type)
            graph.add_edge(entity.name, path, relation=REL_CONTAINS)
    for fk in schema.foreign_keys:
        source = f"{fk.source_entity}.{fk.source_attribute}"
        target = f"{fk.target_entity}.{fk.target_attribute}"
        graph.add_edge(source, target, relation=REL_FOREIGN_KEY)
    return graph
