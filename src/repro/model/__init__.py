"""Data model for schemas and queries.

The model is deliberately small and relational-flavoured: a
:class:`~repro.model.schema.Schema` is a set of named
:class:`~repro.model.elements.Entity` objects (tables / XSD complex
elements), each holding :class:`~repro.model.elements.Attribute` objects
(columns / leaf elements), linked by
:class:`~repro.model.elements.ForeignKey` edges.  Hierarchical sources
(XSD) are normalized into this model by the parsers: nesting becomes a
foreign key from child entity to parent entity, which is exactly the
"entity neighborhood (transitive closure on foreign key)" structure the
tightness-of-fit scorer needs.

Queries are a *forest*: a :class:`~repro.model.query.QueryGraph` holds any
number of schema fragments plus bare keywords, each keyword being "a graph
of one item" as the paper puts it.
"""

from repro.model.elements import Attribute, ElementKind, ElementRef, Entity, ForeignKey
from repro.model.graph import entity_adjacency, schema_to_networkx
from repro.model.query import QueryGraph, QueryItem
from repro.model.schema import Schema

__all__ = [
    "Attribute",
    "ElementKind",
    "ElementRef",
    "Entity",
    "ForeignKey",
    "QueryGraph",
    "QueryItem",
    "Schema",
    "entity_adjacency",
    "schema_to_networkx",
]
