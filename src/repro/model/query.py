"""The query graph: a forest of schema fragments and keywords.

Figure 1 of the paper shows a query graph holding (A) a schema fragment
and (B) a bare keyword; "each keyword is represented as a graph of one
item".  :class:`QueryGraph` models exactly that: an ordered list of
:class:`QueryItem` trees, each either a fragment rooted at a schema or a
single keyword node.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import QueryError
from repro.model.elements import ElementRef
from repro.model.schema import Schema


class QueryItemKind(enum.Enum):
    KEYWORD = "keyword"
    FRAGMENT = "fragment"


@dataclass(slots=True)
class QueryItem:
    """One tree of the query forest.

    Exactly one of ``keyword`` / ``fragment`` is set, according to
    ``kind``.
    """

    kind: QueryItemKind
    keyword: str | None = None
    fragment: Schema | None = None

    def __post_init__(self) -> None:
        if self.kind is QueryItemKind.KEYWORD:
            if not self.keyword or self.fragment is not None:
                raise QueryError("keyword item must carry a keyword only")
        else:
            if self.fragment is None or self.keyword is not None:
                raise QueryError("fragment item must carry a fragment only")


@dataclass(slots=True)
class QueryGraph:
    """The forest of trees the search pipeline consumes.

    Query *elements* — the rows of every similarity matrix — are
    the keywords plus every element ref of every fragment.
    """

    items: list[QueryItem] = field(default_factory=list)

    @classmethod
    def build(cls, keywords: list[str] | None = None,
              fragments: list[Schema] | None = None) -> "QueryGraph":
        """Convenience constructor from plain keyword and fragment lists."""
        graph = cls()
        for word in keywords or []:
            graph.add_keyword(word)
        for fragment in fragments or []:
            graph.add_fragment(fragment)
        return graph

    def add_keyword(self, keyword: str) -> None:
        keyword = keyword.strip()
        if not keyword:
            raise QueryError("keyword must be non-empty")
        self.items.append(QueryItem(QueryItemKind.KEYWORD, keyword=keyword))

    def add_fragment(self, fragment: Schema) -> None:
        self.items.append(QueryItem(QueryItemKind.FRAGMENT, fragment=fragment))

    # -- views -------------------------------------------------------------

    @property
    def keywords(self) -> list[str]:
        return [item.keyword for item in self.items
                if item.kind is QueryItemKind.KEYWORD and item.keyword]

    @property
    def fragments(self) -> list[Schema]:
        return [item.fragment for item in self.items
                if item.kind is QueryItemKind.FRAGMENT and item.fragment]

    def is_empty(self) -> bool:
        return not self.items

    def element_labels(self) -> list[str]:
        """Unique labels of every query element, in forest order.

        Labels are namespaced by their tree so that a keyword and a
        fragment element with the same name never collide as similarity
        matrix rows: keyword *patient* becomes ``kw:patient``; the
        *height* attribute of the first fragment's *patient* entity
        becomes ``f0:patient.height``.
        """
        labels: list[str] = []
        fragment_ordinal = 0
        for item in self.items:
            if item.kind is QueryItemKind.KEYWORD:
                labels.append(f"kw:{item.keyword}")
            else:
                assert item.fragment is not None
                prefix = f"f{fragment_ordinal}"
                fragment_ordinal += 1
                labels.extend(f"{prefix}:{ref.path}"
                              for ref in item.fragment.elements())
        # Repeated identical keywords still collide; disambiguate with
        # their position.
        seen: dict[str, int] = {}
        unique: list[str] = []
        for label in labels:
            count = seen.get(label, 0)
            seen[label] = count + 1
            unique.append(label if count == 0 else f"{label}#{count + 1}")
        return unique

    def element_names(self) -> list[str]:
        """The *name* of every query element (keyword text, entity name or
        attribute local name).  Matchers compare names, not paths."""
        names: list[str] = []
        for item in self.items:
            if item.kind is QueryItemKind.KEYWORD:
                names.append(item.keyword)  # type: ignore[arg-type]
            else:
                assert item.fragment is not None
                names.extend(ref.local_name for ref in item.fragment.elements())
        return names

    def fragment_refs(self) -> Iterator[tuple[Schema, ElementRef]]:
        """Pairs of (owning fragment, element ref) for fragment elements."""
        for fragment in self.fragments:
            for ref in fragment.elements():
                yield fragment, ref

    def flatten(self) -> list[str]:
        """Candidate-extraction view: every keyword plus every fragment
        element name, in order.  This is the list handed to the document
        index in phase one."""
        return self.element_names()

    def __len__(self) -> int:
        return len(self.element_labels())
