"""The :class:`Schema` aggregate: entities + foreign keys + metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SchemaError
from repro.model.elements import Attribute, ElementRef, Entity, ForeignKey


@dataclass(slots=True)
class Schema:
    """A database schema: named entities connected by foreign keys.

    ``schema_id`` is assigned by the repository on import and is ``None``
    for schemas that only live in memory (e.g. query fragments).
    """

    name: str
    entities: dict[str, Entity] = field(default_factory=dict)
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    description: str = ""
    source: str = ""
    schema_id: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("schema name must be non-empty")
        for key, entity in self.entities.items():
            if key != entity.name:
                raise SchemaError(
                    f"entity dict key {key!r} does not match entity name "
                    f"{entity.name!r}")
        for fk in self.foreign_keys:
            self._check_fk(fk)

    # -- construction ------------------------------------------------------

    def add_entity(self, entity: Entity) -> Entity:
        """Register an entity; rejects duplicate names."""
        if entity.name in self.entities:
            raise SchemaError(
                f"schema {self.name!r} already has entity {entity.name!r}")
        self.entities[entity.name] = entity
        return entity

    def add_foreign_key(self, fk: ForeignKey) -> ForeignKey:
        """Register a foreign key after validating both endpoints exist."""
        self._check_fk(fk)
        self.foreign_keys.append(fk)
        return fk

    def _check_fk(self, fk: ForeignKey) -> None:
        for entity_name, attr_name in (
                (fk.source_entity, fk.source_attribute),
                (fk.target_entity, fk.target_attribute)):
            entity = self.entities.get(entity_name)
            if entity is None:
                raise SchemaError(
                    f"foreign key {fk} references unknown entity "
                    f"{entity_name!r}")
            if not entity.has_attribute(attr_name):
                raise SchemaError(
                    f"foreign key {fk} references unknown attribute "
                    f"{entity_name}.{attr_name}")

    # -- inspection --------------------------------------------------------

    def entity(self, name: str) -> Entity:
        try:
            return self.entities[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no entity {name!r}") from None

    def element(self, ref: ElementRef) -> Entity | Attribute:
        """Resolve a ref to its Entity or Attribute object."""
        entity = self.entity(ref.entity)
        if ref.attribute is None:
            return entity
        return entity.attribute(ref.attribute)

    def has_element(self, ref: ElementRef) -> bool:
        entity = self.entities.get(ref.entity)
        if entity is None:
            return False
        if ref.attribute is None:
            return True
        return entity.has_attribute(ref.attribute)

    def elements(self) -> Iterator[ElementRef]:
        """All element refs: each entity followed by its attributes."""
        for entity in self.entities.values():
            yield from entity.refs()

    def attribute_refs(self) -> Iterator[ElementRef]:
        """Only attribute-level refs (the rows Figure 4 scores)."""
        for entity in self.entities.values():
            for attr in entity.attributes:
                yield ElementRef(entity.name, attr.name)

    @property
    def entity_count(self) -> int:
        return len(self.entities)

    @property
    def attribute_count(self) -> int:
        return sum(len(e.attributes) for e in self.entities.values())

    @property
    def element_count(self) -> int:
        """Entities plus attributes; the paper's trivial-schema filter
        drops schemas with three or fewer elements."""
        return self.entity_count + self.attribute_count

    def terms(self) -> list[str]:
        """Raw name terms of every element, in schema order.

        This is the "flattened representation" stored per schema document
        in the inverted index.
        """
        out: list[str] = []
        for entity in self.entities.values():
            out.append(entity.name)
            out.extend(attr.name for attr in entity.attributes)
        return out

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form used by the repository store and the service."""
        return {
            "name": self.name,
            "description": self.description,
            "source": self.source,
            "schema_id": self.schema_id,
            "entities": [
                {
                    "name": entity.name,
                    "description": entity.description,
                    "attributes": [
                        {
                            "name": attr.name,
                            "data_type": attr.data_type,
                            "description": attr.description,
                            "nullable": attr.nullable,
                            "primary_key": attr.primary_key,
                        }
                        for attr in entity.attributes
                    ],
                }
                for entity in self.entities.values()
            ],
            "foreign_keys": [
                {
                    "source_entity": fk.source_entity,
                    "source_attribute": fk.source_attribute,
                    "target_entity": fk.target_entity,
                    "target_attribute": fk.target_attribute,
                }
                for fk in self.foreign_keys
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Schema":
        """Inverse of :meth:`to_dict`; validates as it builds."""
        try:
            schema = cls(
                name=data["name"],
                description=data.get("description", ""),
                source=data.get("source", ""),
                schema_id=data.get("schema_id"),
            )
            for entity_data in data.get("entities", []):
                entity = Entity(
                    name=entity_data["name"],
                    description=entity_data.get("description", ""),
                    attributes=[
                        Attribute(
                            name=attr["name"],
                            data_type=attr.get("data_type", ""),
                            description=attr.get("description", ""),
                            nullable=attr.get("nullable", True),
                            primary_key=attr.get("primary_key", False),
                        )
                        for attr in entity_data.get("attributes", [])
                    ],
                )
                schema.add_entity(entity)
            for fk_data in data.get("foreign_keys", []):
                schema.add_foreign_key(ForeignKey(
                    source_entity=fk_data["source_entity"],
                    source_attribute=fk_data["source_attribute"],
                    target_entity=fk_data["target_entity"],
                    target_attribute=fk_data["target_attribute"],
                ))
        except KeyError as exc:
            raise SchemaError(f"schema dict missing key {exc}") from exc
        return schema

    def copy(self) -> "Schema":
        """Deep, independent copy (used by the repository cache)."""
        return Schema.from_dict(self.to_dict())

    def __str__(self) -> str:  # pragma: no cover - display only
        return (f"Schema({self.name!r}, {self.entity_count} entities, "
                f"{self.attribute_count} attributes)")
