"""Schema building blocks: attributes, entities, foreign keys, element refs."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError


class ElementKind(enum.Enum):
    """What a schema element is; drives node coloring in visualizations."""

    ENTITY = "entity"
    ATTRIBUTE = "attribute"


@dataclass(frozen=True, slots=True)
class ElementRef:
    """Stable address of a schema element.

    ``ElementRef("patient")`` names the *patient* entity;
    ``ElementRef("patient", "height")`` names the *height* attribute of
    that entity.  The string form (``patient`` / ``patient.height``) is
    used as row/column labels in similarity matrices and as node ids in
    exported GraphML.
    """

    entity: str
    attribute: str | None = None

    @property
    def kind(self) -> ElementKind:
        if self.attribute is None:
            return ElementKind.ENTITY
        return ElementKind.ATTRIBUTE

    @property
    def path(self) -> str:
        if self.attribute is None:
            return self.entity
        return f"{self.entity}.{self.attribute}"

    @property
    def local_name(self) -> str:
        """The element's own name: attribute name for attributes,
        entity name for entities."""
        if self.attribute is None:
            return self.entity
        return self.attribute

    @classmethod
    def parse(cls, path: str) -> "ElementRef":
        """Invert :attr:`path`.  Raises :class:`SchemaError` on garbage."""
        if not path:
            raise SchemaError("empty element path")
        entity, _, attribute = path.partition(".")
        if not entity:
            raise SchemaError(f"element path {path!r} has no entity part")
        return cls(entity, attribute or None)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.path


@dataclass(slots=True)
class Attribute:
    """A column of a table (or a leaf element of an XSD complex type)."""

    name: str
    data_type: str = ""
    description: str = ""
    nullable: bool = True
    primary_key: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")


@dataclass(slots=True)
class Entity:
    """A table (or XSD complex type) with named attributes."""

    name: str
    attributes: list[Attribute] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("entity name must be non-empty")
        seen: set[str] = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"entity {self.name!r} has duplicate attribute {attr.name!r}")
            seen.add(attr.name)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name; raises :class:`SchemaError` if absent."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"entity {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        return any(attr.name == name for attr in self.attributes)

    def add_attribute(self, attribute: Attribute) -> None:
        """Append an attribute, rejecting duplicates."""
        if self.has_attribute(attribute.name):
            raise SchemaError(
                f"entity {self.name!r} already has attribute {attribute.name!r}")
        self.attributes.append(attribute)

    def refs(self) -> list[ElementRef]:
        """The entity ref followed by one ref per attribute."""
        out = [ElementRef(self.name)]
        out.extend(ElementRef(self.name, attr.name) for attr in self.attributes)
        return out


@dataclass(frozen=True, slots=True)
class ForeignKey:
    """A directed reference ``source.source_attribute -> target.target_attribute``.

    Only entity-level connectivity matters for tightness-of-fit, but the
    attribute endpoints are kept for export and display.
    """

    source_entity: str
    source_attribute: str
    target_entity: str
    target_attribute: str

    def __post_init__(self) -> None:
        for part in (self.source_entity, self.source_attribute,
                     self.target_entity, self.target_attribute):
            if not part:
                raise SchemaError("foreign key endpoints must be non-empty")

    @property
    def entity_pair(self) -> tuple[str, str]:
        return (self.source_entity, self.target_entity)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (f"{self.source_entity}.{self.source_attribute} -> "
                f"{self.target_entity}.{self.target_attribute}")
