"""Metric instruments: counters, gauges, and fixed-bucket histograms.

The registry is deliberately small — the three Prometheus instrument
kinds the pipeline actually needs, with label support and a text
exposition — rather than a client-library clone.  Two properties drive
the design:

* **Lock-protected updates.**  ``value += amount`` is a read-modify-write
  and the match phase runs on worker threads, so every instrument guards
  its state with its own lock; the registry lock only protects the
  instrument map (get-or-create is idempotent, so instruments can be
  resolved lazily from any code path).
* **Near-zero cost when disabled.**  A registry constructed with
  ``enabled=False`` hands out process-wide null instruments whose
  methods are empty single-dispatch calls — the disabled pipeline pays
  one attribute lookup and one no-op call per *query*, not per posting.

Snapshots (:meth:`MetricsRegistry.snapshot`) are point-in-time copies
taken under the locks, so ``/metrics`` scrapes never observe a torn
histogram.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

#: Default histogram buckets, in seconds — tuned for the pipeline's
#: observed range (sub-millisecond cache hits to multi-second cold
#: searches on large corpora).
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for size-ish histograms (candidate counts, batch
#: sizes).
DEFAULT_COUNT_BUCKETS: tuple[float, ...] = (
    0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000,
)

LabelPairs = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value", "_callback")

    def __init__(self, callback: Callable[[], float] | None = None) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._callback = callback

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (or is read from a callback)."""

    __slots__ = ("_lock", "_value", "_callback")

    def __init__(self, callback: Callable[[], float] | None = None) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``
    (non-cumulative internally; the exposition cumulates).  The implicit
    ``+Inf`` bucket is ``count``.
    """

    __slots__ = ("_lock", "_buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) \
            -> None:
        upper = tuple(float(b) for b in buckets)
        if not upper:
            raise ValueError("histogram needs at least one bucket")
        if list(upper) != sorted(upper):
            raise ValueError(f"buckets must be sorted ascending: {upper}")
        if len(set(upper)) != len(upper):
            raise ValueError(f"buckets must be distinct: {upper}")
        self._lock = threading.Lock()
        self._buckets = upper
        self._counts = [0] * (len(upper) + 1)  # final slot: > last bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def buckets(self) -> tuple[float, ...]:
        return self._buckets

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts; last slot is overflow."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Approximate quantile by linear interpolation within buckets.

        Overflow observations clamp to the last finite bound — good
        enough for the ``/stats`` p50/p95 summary, which only needs the
        right order of magnitude.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0.0
        lower = 0.0
        for i, bucket_count in enumerate(counts):
            upper = (self._buckets[i] if i < len(self._buckets)
                     else self._buckets[-1])
            if seen + bucket_count >= rank:
                if bucket_count == 0 or i >= len(self._buckets):
                    return upper
                fraction = (rank - seen) / bucket_count
                return lower + (upper - lower) * fraction
            seen += bucket_count
            lower = upper
        return self._buckets[-1]


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: Process-wide no-op instruments shared by every disabled registry.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram((1.0,))


@dataclass(frozen=True, slots=True)
class MetricSample:
    """One (name, labels) series at snapshot time."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    labels: LabelPairs
    value: float = 0.0
    #: Histogram-only: (upper_bound, non-cumulative count) pairs plus
    #: sum/count.
    buckets: tuple[tuple[float, int], ...] = ()
    sum: float = 0.0
    count: int = 0


@dataclass(slots=True)
class MetricsSnapshot:
    """Point-in-time copy of every registered series."""

    samples: list[MetricSample] = field(default_factory=list)

    def find(self, name: str, **labels: str) -> MetricSample | None:
        """The sample for ``name`` whose labels include ``labels``."""
        want = set(_label_key(labels))
        for sample in self.samples:
            if sample.name == name and want <= set(sample.labels):
                return sample
        return None

    def value(self, name: str, **labels: str) -> float:
        sample = self.find(name, **labels)
        return sample.value if sample is not None else 0.0


class MetricsRegistry:
    """Named, labelled instruments with get-or-create resolution.

    ``counter("x", ...)`` called twice with the same name and labels
    returns the same instrument, so call sites resolve instruments
    lazily without coordinating creation.  A disabled registry returns
    the shared null instruments and records nothing.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        # name -> (kind, help); series: (name, labels) -> instrument.
        self._meta: dict[str, tuple[str, str]] = {}
        self._series: dict[tuple[str, LabelPairs], object] = {}

    @property
    def enabled(self) -> bool:
        return self._enabled

    # -- instrument resolution -----------------------------------------

    def counter(self, name: str, help: str = "",  # noqa: A002
                callback: Callable[[], float] | None = None,
                **labels: str) -> Counter:
        if not self._enabled:
            return NULL_COUNTER
        return self._resolve(name, "counter", help, labels,
                             lambda: Counter(callback))

    def gauge(self, name: str, help: str = "",  # noqa: A002
              callback: Callable[[], float] | None = None,
              **labels: str) -> Gauge:
        if not self._enabled:
            return NULL_GAUGE
        return self._resolve(name, "gauge", help, labels,
                             lambda: Gauge(callback))

    def histogram(self, name: str, help: str = "",  # noqa: A002
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
                  **labels: str) -> Histogram:
        if not self._enabled:
            return NULL_HISTOGRAM
        return self._resolve(name, "histogram", help, labels,
                             lambda: Histogram(buckets))

    def _resolve(self, name: str, kind: str, help_text: str,
                 labels: Mapping[str, str], factory) -> object:
        key = (name, _label_key(labels))
        with self._lock:
            existing_meta = self._meta.get(name)
            if existing_meta is not None and existing_meta[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing_meta[0]}, not {kind}")
            instrument = self._series.get(key)
            if instrument is None:
                instrument = factory()
                self._series[key] = instrument
                if existing_meta is None or (help_text
                                             and not existing_meta[1]):
                    self._meta[name] = (kind, help_text)
            return instrument

    # -- export --------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            series = list(self._series.items())
            meta = dict(self._meta)
        samples: list[MetricSample] = []
        for (name, labels), instrument in series:
            kind, help_text = meta[name]
            if isinstance(instrument, Histogram):
                counts = instrument.bucket_counts()
                bounds = instrument.buckets
                samples.append(MetricSample(
                    name=name, kind=kind, help=help_text, labels=labels,
                    buckets=tuple(zip(bounds, counts[:-1])),
                    sum=instrument.sum, count=instrument.count,
                    value=float(instrument.count)))
            else:
                samples.append(MetricSample(
                    name=name, kind=kind, help=help_text, labels=labels,
                    value=instrument.value))  # type: ignore[union-attr]
        samples.sort(key=lambda s: (s.name, s.labels))
        return MetricsSnapshot(samples=samples)

    def to_prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        last_name = None
        for sample in self.snapshot().samples:
            if sample.name != last_name:
                if sample.help:
                    lines.append(f"# HELP {sample.name} {sample.help}")
                lines.append(f"# TYPE {sample.name} {sample.kind}")
                last_name = sample.name
            if sample.kind == "histogram":
                cumulative = 0
                for bound, bucket_count in sample.buckets:
                    cumulative += bucket_count
                    labels = _render_labels(sample.labels
                                            + (("le", _format(bound)),))
                    lines.append(f"{sample.name}_bucket{labels} "
                                 f"{cumulative}")
                labels = _render_labels(sample.labels + (("le", "+Inf"),))
                lines.append(f"{sample.name}_bucket{labels} {sample.count}")
                plain = _render_labels(sample.labels)
                lines.append(f"{sample.name}_sum{plain} "
                             f"{_format(sample.sum)}")
                lines.append(f"{sample.name}_count{plain} {sample.count}")
            else:
                labels = _render_labels(sample.labels)
                lines.append(f"{sample.name}{labels} "
                             f"{_format(sample.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(pairs: Iterable[tuple[str, str]]) -> str:
    rendered = ",".join(
        f'{key}="{_escape(value)}"' for key, value in pairs)
    return f"{{{rendered}}}" if rendered else ""


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
