"""Lightweight span tracing for the three-phase pipeline.

A span is a named, timed section of work; spans opened while another
span is active on the same thread become its children, so one search
produces a small tree::

    search (2.31ms)
      candidate_extraction (0.42ms)
      schema_matching (1.65ms)
      tightness_of_fit (0.19ms)

Timings use the monotonic ``time.perf_counter`` clock; the wall-clock
``started_at`` is recorded once per root span for log correlation.
Finished *root* spans land in a bounded ring buffer
(:meth:`SpanTracer.recent`) so an operator can inspect the last N
searches without any log pipeline.  The per-thread active-span stack
lives in a ``threading.local``, which keeps concurrent searches from
interleaving their trees.

Disabled tracers hand out a process-wide null span whose enter/exit do
nothing — the cost of a disabled ``with tracer.span(...)`` is one
attribute check and an empty context-manager protocol.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable


@dataclass(slots=True)
class Span:
    """One timed section; children are spans opened while it was active."""

    name: str
    attributes: dict[str, object] = field(default_factory=dict)
    started_at: float = 0.0  # wall clock, root spans only
    duration: float = 0.0  # seconds, set on exit
    children: list["Span"] = field(default_factory=list)
    _start: float = field(default=0.0, repr=False, compare=False)

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def to_dict(self) -> dict:
        """JSON-safe form for logs and the ``/stats`` endpoint."""
        data: dict[str, object] = {
            "name": self.name,
            "duration_ms": round(self.duration * 1000.0, 4),
        }
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    def find(self, name: str) -> "Span | None":
        """Depth-first search for a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


class _NullSpan:
    """Shared no-op span for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def set_attribute(self, key: str, value: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager pushing/popping one span on the thread's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        stack = self._tracer._stack()
        span = self._span
        if stack:
            stack[-1].children.append(span)
        else:
            span.started_at = self._tracer._wall_clock()
        stack.append(span)
        span._start = time.perf_counter()
        return span

    def __exit__(self, *exc_info: object) -> None:
        span = self._span
        span.duration = time.perf_counter() - span._start
        stack = self._tracer._stack()
        # Pop defensively: a generator holding a span alive across
        # threads must not corrupt another thread's stack.
        if stack and stack[-1] is span:
            stack.pop()
        if not stack:
            self._tracer._record(span)


class SpanTracer:
    """Produces spans and retains the most recent root-span trees."""

    def __init__(self, buffer_size: int = 64, enabled: bool = True,
                 wall_clock: Callable[[], float] = time.time) -> None:
        if buffer_size < 1:
            raise ValueError(
                f"buffer_size must be >= 1, got {buffer_size}")
        self._enabled = enabled
        self._local = threading.local()
        self._lock = threading.Lock()
        self._recent: deque[Span] = deque(maxlen=buffer_size)
        self._completed = 0
        self._wall_clock = wall_clock

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def buffer_size(self) -> int:
        return self._recent.maxlen or 0

    @property
    def completed_count(self) -> int:
        """Total root spans finished (including ones evicted from the
        ring buffer)."""
        with self._lock:
            return self._completed

    def span(self, name: str, **attributes: object):
        """Open a span: ``with tracer.span("schema_matching") as sp:``"""
        if not self._enabled:
            return NULL_SPAN
        return _ActiveSpan(self, Span(name=name,
                                      attributes=dict(attributes)))

    def recent(self, limit: int | None = None) -> list[Span]:
        """The newest-first list of retained root spans."""
        with self._lock:
            spans = list(self._recent)
        spans.reverse()
        return spans[:limit] if limit is not None else spans

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()

    # -- internals -----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._recent.append(span)
            self._completed += 1
