"""``repro.telemetry`` — observability for the three-phase pipeline.

The subsystem has four parts, all owned by one :class:`Telemetry`
facade so a single object wires the whole engine:

* :mod:`repro.telemetry.metrics` — a :class:`MetricsRegistry` of
  lock-protected counters, gauges, and fixed-bucket histograms with a
  Prometheus text exposition (the ``/metrics`` endpoint);
* :mod:`repro.telemetry.trace` — a :class:`SpanTracer` producing
  nested, monotonic-clock spans per search, retained in a bounded ring;
* :mod:`repro.telemetry.profile` — one :class:`QueryProfile` per
  search (phase wall time, candidate counts, cache/prune outcomes,
  empty-result reason) plus the slow-query log;
* :mod:`repro.telemetry.history` — a persistent JSONL
  :class:`SearchHistorySink` of query terms and ranked results, the
  raw feed for the paper's search-history meta-learner.

Telemetry is **off by default** (``SchemrConfig.telemetry_enabled``).
Disabled, every instrument is a shared no-op object: the pipeline pays
a handful of attribute lookups and empty calls per query — measured by
``benchmarks/bench_telemetry_overhead.py`` to be well under 2% — and
nothing is retained.  Enabled, the engine, searcher, caches, indexer,
and HTTP service all report into the same facade.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.telemetry.history import HistoryRecord, SearchHistorySink
from repro.telemetry.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    MetricSample,
)
from repro.telemetry.profile import (
    EMPTY_ALL_FILTERED,
    EMPTY_NO_INDEX_HITS,
    EMPTY_OFFSET_BEYOND,
    QueryProfile,
    QueryProfileLog,
)
from repro.telemetry.trace import Span, SpanTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import SchemrConfig

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "EMPTY_ALL_FILTERED",
    "EMPTY_NO_INDEX_HITS",
    "EMPTY_OFFSET_BEYOND",
    "Gauge",
    "Histogram",
    "HistoryRecord",
    "MetricSample",
    "MetricsRegistry",
    "MetricsSnapshot",
    "QueryProfile",
    "QueryProfileLog",
    "SearchHistorySink",
    "Span",
    "SpanTracer",
    "Telemetry",
]


class Telemetry:
    """One handle over metrics, tracing, profiling, and history.

    Construct via :meth:`from_config` (the engine does this) or
    directly in tests.  A disabled instance exposes the same API with
    no-op instruments, so instrumentation sites never branch on the
    flag themselves — except around work that only *produces* telemetry
    input (building a profile dict, say), which they gate on
    :attr:`enabled`.
    """

    def __init__(self, enabled: bool = True, *,
                 trace_buffer_size: int = 64,
                 profile_buffer_size: int = 256,
                 slow_query_seconds: float = 0.25,
                 history_path: str | Path | None = None,
                 history_max_bytes: int | None = None,
                 wall_clock: Callable[[], float] = time.time) -> None:
        self.enabled = enabled
        self.wall_clock = wall_clock
        self.metrics = MetricsRegistry(enabled=enabled)
        self.tracer = SpanTracer(buffer_size=trace_buffer_size,
                                 enabled=enabled,
                                 wall_clock=wall_clock)
        self.profiles = QueryProfileLog(
            buffer_size=profile_buffer_size,
            slow_threshold_seconds=slow_query_seconds)
        self.history: SearchHistorySink | None = (
            SearchHistorySink(history_path, wall_clock=wall_clock,
                              max_bytes=history_max_bytes)
            if enabled and history_path is not None else None)

    @classmethod
    def from_config(cls, config: "SchemrConfig") -> "Telemetry":
        """The engine's constructor path: knobs from SchemrConfig."""
        return cls(
            enabled=config.telemetry_enabled,
            trace_buffer_size=config.trace_buffer_size,
            profile_buffer_size=config.profile_buffer_size,
            slow_query_seconds=config.slow_query_seconds,
            history_path=config.history_path,
            history_max_bytes=config.history_max_bytes,
        )

    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(enabled=False)

    def close(self) -> None:
        """Flush and close the history sink (idempotent)."""
        if self.history is not None:
            self.history.close()

    def summary_text(self) -> str:
        """Human-readable stats table (see ``schemr stats``)."""
        from repro.telemetry.report import summary_text
        return summary_text(self)

    def summary_xml(self) -> str:
        """XML stats document (the ``/stats`` endpoint payload)."""
        from repro.telemetry.report import summary_xml
        return summary_xml(self)
