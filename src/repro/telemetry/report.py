"""Render a :class:`~repro.telemetry.Telemetry` state for humans.

Two renditions of the same aggregation: a text table for ``schemr
stats`` and an XML document for the ``/stats`` endpoint (the service's
wire format is XML throughout).  Both read only snapshot data — the
metrics registry snapshot, the profile log rings — so rendering never
blocks the serving path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.telemetry.metrics import MetricSample

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry import Telemetry

#: Metric names summarized by both renditions.
_CACHES = (("query", "schemr_query_cache"),
           ("profile", "schemr_profile_cache"))


def sample_quantile(sample: MetricSample, q: float) -> float:
    """Approximate quantile of a histogram *sample* (snapshot data).

    Mirrors :meth:`repro.telemetry.metrics.Histogram.quantile`, but
    computed from the frozen bucket counts so report rendering does not
    race live observations.
    """
    total = sample.count
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0.0
    lower = 0.0
    for bound, bucket_count in sample.buckets:
        if seen + bucket_count >= rank:
            if bucket_count == 0:
                return bound
            return lower + (bound - lower) * (rank - seen) / bucket_count
        seen += bucket_count
        lower = bound
    # Rank falls in the +Inf overflow bucket: clamp to the last bound.
    return sample.buckets[-1][0] if sample.buckets else 0.0


def summary_text(telemetry: "Telemetry") -> str:
    """Human-readable stats table (``schemr stats``)."""
    snapshot = telemetry.metrics.snapshot()
    profiles = telemetry.profiles
    lines: list[str] = []
    searches = snapshot.value("schemr_searches_total")
    lines.append(f"searches:        {int(searches)}")
    lines.append(f"slow queries:    {profiles.slow_count} "
                 f"(threshold {profiles.slow_threshold_seconds * 1000:.0f}"
                 f" ms)")
    for name in ("schemr_index_documents", "schemr_index_terms",
                 "schemr_index_generation"):
        sample = snapshot.find(name)
        if sample is not None:
            label = name.removeprefix("schemr_index_")
            lines.append(f"index {label + ':':<11} {int(sample.value)}")
    lines.append("")
    lines.append(f"{'phase':<22} {'count':>7} {'p50 ms':>9} {'p95 ms':>9}")
    for sample in snapshot.samples:
        if sample.name != "schemr_phase_seconds":
            continue
        phase = dict(sample.labels).get("phase", "?")
        lines.append(
            f"{phase:<22} {sample.count:>7} "
            f"{sample_quantile(sample, 0.5) * 1000:>9.3f} "
            f"{sample_quantile(sample, 0.95) * 1000:>9.3f}")
    total = snapshot.find("schemr_search_seconds")
    if total is not None:
        lines.append(
            f"{'total':<22} {total.count:>7} "
            f"{sample_quantile(total, 0.5) * 1000:>9.3f} "
            f"{sample_quantile(total, 0.95) * 1000:>9.3f}")
    lines.append("")
    for label, prefix in _CACHES:
        hits = snapshot.value(f"{prefix}_hits_total")
        misses = snapshot.value(f"{prefix}_misses_total")
        evictions = snapshot.value(f"{prefix}_evictions_total")
        lookups = hits + misses
        rate = hits / lookups if lookups else 0.0
        lines.append(f"{label + ' cache:':<15} hits={int(hits)} "
                     f"misses={int(misses)} evictions={int(evictions)} "
                     f"hit_rate={rate:.2%}")
    empties = [s for s in snapshot.samples
               if s.name == "schemr_empty_results_total" and s.value]
    if empties:
        lines.append("")
        lines.append("empty results by reason:")
        for sample in empties:
            reason = dict(sample.labels).get("reason", "?")
            lines.append(f"  {reason:<24}{int(sample.value)}")
    slow = profiles.slow(limit=5)
    if slow:
        lines.append("")
        lines.append("slowest recent queries:")
        for profile in slow:
            terms = " ".join(profile.query_terms) or "<fragment>"
            lines.append(f"  {profile.total_seconds * 1000:>9.2f} ms  "
                         f"{terms}")
    return "\n".join(lines)


def summary_xml(telemetry: "Telemetry") -> str:
    """The ``/stats`` endpoint payload."""
    snapshot = telemetry.metrics.snapshot()
    profiles = telemetry.profiles
    parts: list[str] = ['<?xml version="1.0"?>', "<stats>"]
    parts.append(
        f'  <engine searches="{int(snapshot.value("schemr_searches_total"))}"'
        f' slow_queries="{profiles.slow_count}"'
        f' slow_threshold_seconds="{profiles.slow_threshold_seconds}"/>')
    index_attrs = []
    for name in ("schemr_index_documents", "schemr_index_terms",
                 "schemr_index_generation"):
        sample = snapshot.find(name)
        if sample is not None:
            index_attrs.append(
                f'{name.removeprefix("schemr_index_")}='
                f'"{int(sample.value)}"')
    if index_attrs:
        parts.append(f'  <index {" ".join(index_attrs)}/>')
    parts.append("  <phases>")
    for sample in snapshot.samples:
        if sample.name != "schemr_phase_seconds":
            continue
        phase = dict(sample.labels).get("phase", "?")
        parts.append(
            f'    <phase name="{_escape(phase)}" count="{sample.count}"'
            f' p50_ms="{sample_quantile(sample, 0.5) * 1000:.4f}"'
            f' p95_ms="{sample_quantile(sample, 0.95) * 1000:.4f}"/>')
    parts.append("  </phases>")
    parts.append("  <caches>")
    for label, prefix in _CACHES:
        hits = snapshot.value(f"{prefix}_hits_total")
        misses = snapshot.value(f"{prefix}_misses_total")
        evictions = snapshot.value(f"{prefix}_evictions_total")
        lookups = hits + misses
        rate = hits / lookups if lookups else 0.0
        parts.append(
            f'    <cache name="{label}" hits="{int(hits)}"'
            f' misses="{int(misses)}" evictions="{int(evictions)}"'
            f' hit_rate="{rate:.4f}"/>')
    parts.append("  </caches>")
    parts.append("  <empty_results>")
    for sample in snapshot.samples:
        if sample.name == "schemr_empty_results_total" and sample.value:
            reason = dict(sample.labels).get("reason", "?")
            parts.append(f'    <reason name="{_escape(reason)}"'
                         f' count="{int(sample.value)}"/>')
    parts.append("  </empty_results>")
    parts.append("  <slow_queries>")
    for profile in profiles.slow(limit=10):
        terms = _escape(" ".join(profile.query_terms))
        parts.append(
            f'    <query terms="{terms}"'
            f' seconds="{profile.total_seconds:.6f}"'
            f' candidates="{profile.candidate_count}"'
            f' results="{profile.result_count}"/>')
    parts.append("  </slow_queries>")
    parts.append("</stats>")
    return "\n".join(parts)


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))
