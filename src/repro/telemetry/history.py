"""Persistent JSONL search-history sink.

"As Schemr is utilized in practice, we can record search histories to
create a training set of search-term to schema-fragment matches" — the
SQLite ``search_history`` table (:mod:`repro.repository.history`)
stores *judged* (query, schema, relevant) triples once a user clicks.
This sink is the raw feed in front of that: every search's query terms
and ranked results, appended to a JSON-Lines file as they happen, so
the meta-learner's training-set builder (and offline replay/load
testing) can consume the full traffic log without touching the serving
database.

One JSON object per line::

    {"recorded_at": ..., "query_terms": [...], "total_seconds": ...,
     "results": [{"schema_id": 3, "name": "...", "score": 0.81,
                  "rank": 1}, ...]}

Appends are line-atomic under the sink's lock and flushed per record by
default, so a crash loses at most the entry being written and
concurrent searches never interleave partial lines.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.errors import RepositoryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.results import SearchResult


@dataclass(frozen=True, slots=True)
class HistoryRecord:
    """One logged search: the query and its ranked results."""

    recorded_at: float
    query_terms: tuple[str, ...]
    results: tuple[dict, ...]
    total_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "recorded_at": self.recorded_at,
            "query_terms": list(self.query_terms),
            "total_seconds": self.total_seconds,
            "results": [dict(result) for result in self.results],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HistoryRecord":
        try:
            return cls(
                recorded_at=float(data["recorded_at"]),
                query_terms=tuple(str(t) for t in data["query_terms"]),
                results=tuple(dict(r) for r in data["results"]),
                total_seconds=float(data.get("total_seconds", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RepositoryError(
                f"malformed history record: {exc}") from exc


class SearchHistorySink:
    """Append-only JSONL writer (and reader) of search traffic."""

    def __init__(self, path: str | Path, flush_every: int = 1,
                 wall_clock: Callable[[], float] = time.time) -> None:
        if flush_every < 1:
            raise ValueError(
                f"flush_every must be >= 1, got {flush_every}")
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._file = open(self._path, "a", encoding="utf-8")
        self._flush_every = flush_every
        self._pending = 0
        self._written = 0
        self._closed = False
        self._wall_clock = wall_clock

    @property
    def path(self) -> Path:
        return self._path

    @property
    def records_written(self) -> int:
        """Records appended by this sink instance."""
        with self._lock:
            return self._written

    def record(self, query_terms: Sequence[str],
               results: "Sequence[SearchResult]",
               total_seconds: float = 0.0) -> HistoryRecord:
        """Append one search; returns the record as written."""
        entry = HistoryRecord(
            recorded_at=self._wall_clock(),
            query_terms=tuple(query_terms),
            results=tuple(
                {"schema_id": result.schema_id, "name": result.name,
                 "score": result.score, "rank": rank}
                for rank, result in enumerate(results, start=1)),
            total_seconds=total_seconds,
        )
        line = json.dumps(entry.to_dict(), ensure_ascii=False)
        with self._lock:
            if self._closed:
                raise RepositoryError(
                    f"history sink {self._path} is closed")
            self._file.write(line + "\n")
            self._pending += 1
            self._written += 1
            if self._pending >= self._flush_every:
                self._file.flush()
                self._pending = 0
        return entry

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._file.flush()
                self._pending = 0

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._file.flush()
                self._file.close()
                self._closed = True

    def __enter__(self) -> "SearchHistorySink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reading -------------------------------------------------------

    @staticmethod
    def read(path: str | Path) -> Iterator[HistoryRecord]:
        """Stream records back from a history file, oldest first.

        Tolerates a trailing partial line (crash mid-append) by
        raising only on lines that parse as JSON but are not valid
        records; a final line that is not valid JSON is skipped.
        """
        file_path = Path(path)
        if not file_path.exists():
            return
        with open(file_path, encoding="utf-8") as handle:
            lines = handle.readlines()
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    continue  # torn trailing append
                raise RepositoryError(
                    f"corrupt history line {i + 1} in {file_path}")
            yield HistoryRecord.from_dict(data)

    @staticmethod
    def load(path: str | Path) -> list[HistoryRecord]:
        """All records of a history file as a list."""
        return list(SearchHistorySink.read(path))
