"""Persistent JSONL search-history sink.

"As Schemr is utilized in practice, we can record search histories to
create a training set of search-term to schema-fragment matches" — the
SQLite ``search_history`` table (:mod:`repro.repository.history`)
stores *judged* (query, schema, relevant) triples once a user clicks.
This sink is the raw feed in front of that: every search's query terms
and ranked results, appended to a JSON-Lines file as they happen, so
the meta-learner's training-set builder (and offline replay/load
testing) can consume the full traffic log without touching the serving
database.

One JSON object per line::

    {"schema_version": 2, "recorded_at": ..., "query_terms": [...],
     "total_seconds": ...,
     "results": [{"schema_id": 3, "name": "...", "score": 0.81,
                  "rank": 1, "clicked": true}, ...]}

``schema_version`` lets the on-disk format evolve: version 1 lines
(written before the field existed) carry no marker and are read as
legacy, and ``clicked`` flags appear only on results the click model
or a real user selected.

Appends are line-atomic under the sink's lock and flushed per record by
default, so a crash loses at most the entry being written and
concurrent searches never interleave partial lines.  A long replay can
bound file growth with ``max_bytes``: past it the live file rotates to
``<path>.1`` (older generations shift to ``.2``, ``.3``, ...) and
:meth:`SearchHistorySink.read` transparently streams the rotated chain
oldest-first.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Collection, Iterator, Sequence

from repro.errors import RepositoryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.results import SearchResult

#: Current on-disk record format.  Version 1 lines predate the field
#: and are read as legacy; bump this when ``to_dict`` changes shape.
HISTORY_SCHEMA_VERSION = 2


@dataclass(frozen=True, slots=True)
class HistoryRecord:
    """One logged search: the query and its ranked results."""

    recorded_at: float
    query_terms: tuple[str, ...]
    results: tuple[dict, ...]
    total_seconds: float = 0.0
    schema_version: int = HISTORY_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "recorded_at": self.recorded_at,
            "query_terms": list(self.query_terms),
            "total_seconds": self.total_seconds,
            "results": [dict(result) for result in self.results],
        }

    @property
    def clicked_ids(self) -> set[int]:
        """Schema ids of results carrying a ``clicked`` flag."""
        return {int(result["schema_id"]) for result in self.results
                if result.get("clicked")}

    @classmethod
    def from_dict(cls, data: dict) -> "HistoryRecord":
        try:
            # Versionless legacy lines (pre-``schema_version``) are
            # version 1; anything newer than the writer is rejected
            # loudly rather than silently misread.
            version = int(data.get("schema_version", 1))
            if not 1 <= version <= HISTORY_SCHEMA_VERSION:
                raise ValueError(
                    f"unsupported history schema_version {version} "
                    f"(this reader understands <= {HISTORY_SCHEMA_VERSION})")
            return cls(
                recorded_at=float(data["recorded_at"]),
                query_terms=tuple(str(t) for t in data["query_terms"]),
                results=tuple(dict(r) for r in data["results"]),
                total_seconds=float(data.get("total_seconds", 0.0)),
                schema_version=version,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RepositoryError(
                f"malformed history record: {exc}") from exc


class SearchHistorySink:
    """Append-only JSONL writer (and reader) of search traffic.

    ``max_bytes`` bounds the live file: once a write pushes it past the
    limit the file rotates to ``<path>.1`` and a fresh file opens.
    ``max_rotated_files`` caps how many rotated generations are kept
    (older ones are deleted); ``None`` keeps them all.
    """

    def __init__(self, path: str | Path, flush_every: int = 1,
                 wall_clock: Callable[[], float] = time.time,
                 max_bytes: int | None = None,
                 max_rotated_files: int | None = None) -> None:
        if flush_every < 1:
            raise ValueError(
                f"flush_every must be >= 1, got {flush_every}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_rotated_files is not None and max_rotated_files < 1:
            raise ValueError(
                f"max_rotated_files must be >= 1, got {max_rotated_files}")
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._file = open(self._path, "a", encoding="utf-8")
        self._flush_every = flush_every
        self._pending = 0
        self._written = 0
        self._closed = False
        self._wall_clock = wall_clock
        self._max_bytes = max_bytes
        self._max_rotated_files = max_rotated_files
        self._bytes = self._path.stat().st_size
        self._rotations = 0

    @property
    def path(self) -> Path:
        return self._path

    @property
    def records_written(self) -> int:
        """Records appended by this sink instance."""
        with self._lock:
            return self._written

    @property
    def rotations(self) -> int:
        """Times the live file rolled over to ``<path>.1``."""
        with self._lock:
            return self._rotations

    def record(self, query_terms: Sequence[str],
               results: "Sequence[SearchResult]",
               total_seconds: float = 0.0,
               clicked_ids: Collection[int] | None = None,
               recorded_at: float | None = None) -> HistoryRecord:
        """Append one search; returns the record as written.

        ``clicked_ids`` marks the results the user (or a synthetic
        click model) selected — those result rows gain a
        ``"clicked": true`` flag, the judged-relevance signal the
        meta-learner trains on.  ``recorded_at`` overrides the clock
        stamp — the replay driver writes *virtual* arrival times so a
        harvested history is byte-identical across runs.
        """
        clicked = frozenset(clicked_ids) if clicked_ids else frozenset()
        entry = HistoryRecord(
            recorded_at=(recorded_at if recorded_at is not None
                         else self._wall_clock()),
            query_terms=tuple(query_terms),
            results=tuple(
                {"schema_id": result.schema_id, "name": result.name,
                 "score": result.score, "rank": rank,
                 **({"clicked": True} if result.schema_id in clicked
                    else {})}
                for rank, result in enumerate(results, start=1)),
            total_seconds=total_seconds,
        )
        line = json.dumps(entry.to_dict(), ensure_ascii=False) + "\n"
        encoded = len(line.encode("utf-8"))
        with self._lock:
            if self._closed:
                raise RepositoryError(
                    f"history sink {self._path} is closed")
            self._file.write(line)
            self._pending += 1
            self._written += 1
            self._bytes += encoded
            if self._pending >= self._flush_every:
                self._file.flush()
                self._pending = 0
            if self._max_bytes is not None and self._bytes >= self._max_bytes:
                self._rotate_locked()
        return entry

    def _rotate_locked(self) -> None:
        """Roll the live file to ``.1``, shifting older generations up.

        Caller holds the sink lock.  Rotation is rename-based, so a
        reader that opened the old file keeps a consistent view and a
        crash between renames loses ordering of at most one generation.
        """
        self._file.flush()
        self._file.close()
        generations = self._rotated_generations()
        for n in sorted(generations, reverse=True):
            source = Path(f"{self._path}.{n}")
            if (self._max_rotated_files is not None
                    and n + 1 > self._max_rotated_files):
                source.unlink(missing_ok=True)
            else:
                source.rename(f"{self._path}.{n + 1}")
        self._path.rename(f"{self._path}.1")
        self._file = open(self._path, "a", encoding="utf-8")
        self._bytes = 0  # lint: unlocked (caller holds self._lock)
        self._pending = 0  # lint: unlocked (caller holds self._lock)
        self._rotations += 1

    def _rotated_generations(self) -> list[int]:
        """Existing rotation suffix numbers for this sink's path."""
        generations = []
        prefix = self._path.name + "."
        for sibling in self._path.parent.iterdir():
            if not sibling.name.startswith(prefix):
                continue
            suffix = sibling.name[len(prefix):]
            if suffix.isdigit():
                generations.append(int(suffix))
        return generations

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._file.flush()
                self._pending = 0

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._file.flush()
                self._file.close()
                self._closed = True

    def __enter__(self) -> "SearchHistorySink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reading -------------------------------------------------------

    @staticmethod
    def read(path: str | Path) -> Iterator[HistoryRecord]:
        """Stream records back from a history file, oldest first.

        Follows the rotation chain: ``<path>.N`` (oldest) down to
        ``<path>.1``, then the live file.  Tolerates a trailing partial
        line per file (crash mid-append) by raising only on lines that
        parse as JSON but are not valid records; a final line that is
        not valid JSON is skipped.
        """
        base = Path(path)
        rotated = []
        if base.parent.exists():
            prefix = base.name + "."
            for sibling in base.parent.iterdir():
                suffix = sibling.name[len(prefix):] \
                    if sibling.name.startswith(prefix) else ""
                if suffix.isdigit():
                    rotated.append((int(suffix), sibling))
        for _, file_path in sorted(rotated, reverse=True):
            yield from SearchHistorySink._read_file(file_path)
        yield from SearchHistorySink._read_file(base)

    @staticmethod
    def _read_file(file_path: Path) -> Iterator[HistoryRecord]:
        if not file_path.exists():
            return
        with open(file_path, encoding="utf-8") as handle:
            lines = handle.readlines()
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    continue  # torn trailing append
                raise RepositoryError(
                    f"corrupt history line {i + 1} in {file_path}")
            yield HistoryRecord.from_dict(data)

    @staticmethod
    def load(path: str | Path) -> list[HistoryRecord]:
        """All records of a history file (and its rotation chain)."""
        return list(SearchHistorySink.read(path))
