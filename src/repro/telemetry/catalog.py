"""The canonical registry of every ``schemr_*`` metric family.

Instrumentation sites across the codebase resolve instruments by
string name, and the ``/metrics`` exposition, the ``/stats`` summary,
and the DESIGN.md observability docs all refer to the same names.
Nothing ties those call sites together at runtime — a renamed counter
would silently split into two families.  This module is the single
source of truth: every metric name used anywhere in ``src/`` must
appear here exactly once (and vice versa), and the ``metric-catalog``
rule of :mod:`repro.analysis` enforces both directions in CI.

Entries map the metric name to ``(kind, help)`` where ``kind`` is the
Prometheus instrument kind the code must register it as.
"""

from __future__ import annotations

#: name -> (kind, help).  Kinds: "counter" | "gauge" | "histogram".
METRICS: dict[str, tuple[str, str]] = {
    # -- engine: search pipeline --------------------------------------
    "schemr_searches_total": (
        "counter", "Searches executed"),
    "schemr_results_total": (
        "counter", "Results returned"),
    "schemr_search_seconds": (
        "histogram", "End-to-end search latency"),
    "schemr_phase_seconds": (
        "histogram", "Per-phase wall time"),
    "schemr_phase1_candidates": (
        "histogram", "Phase-1 candidates per query"),
    "schemr_phase1_docs_scored_total": (
        "counter", "Documents entering the phase-1 accumulator"),
    "schemr_phase1_pruned_early_total": (
        "counter", "Queries where MaxScore pruning reached AND-mode"),
    "schemr_phase1_queries_total": (
        "counter", "Phase-1 retrievals by strategy and cache outcome"),
    "schemr_slow_queries_total": (
        "counter", "Searches above the slow-query threshold"),
    "schemr_empty_results_total": (
        "counter", "Empty result pages by reason"),
    # -- engine: resilience -------------------------------------------
    "schemr_degraded_searches_total": (
        "counter", "Searches answered below full fidelity, by level"),
    "schemr_deadline_expired_total": (
        "counter", "Searches whose wall-clock budget ran out"),
    "schemr_source_failures_total": (
        "counter", "Candidate fetches the schema source failed"),
    "schemr_breaker_state": (
        "gauge", "Breaker state: 0 closed, 1 half-open, 2 open"),
    "schemr_breaker_opens_total": (
        "counter", "Times a breaker tripped open"),
    # -- index and caches ---------------------------------------------
    "schemr_index_documents": (
        "gauge", "Indexed documents"),
    "schemr_index_terms": (
        "gauge", "Distinct index terms"),
    "schemr_index_generation": (
        "gauge", "Index generation"),
    "schemr_query_cache_hits_total": (
        "counter", "Query-cache hits"),
    "schemr_query_cache_misses_total": (
        "counter", "Query-cache misses"),
    "schemr_query_cache_evictions_total": (
        "counter", "Query-cache LRU evictions"),
    "schemr_query_cache_stale_evictions_total": (
        "counter", "Query-cache stale-generation sweeps"),
    "schemr_query_cache_entries": (
        "gauge", "Query-cache live entries"),
    "schemr_profile_cache_hits_total": (
        "counter", "Profile-cache hits"),
    "schemr_profile_cache_misses_total": (
        "counter", "Profile-cache misses"),
    "schemr_profile_cache_evictions_total": (
        "counter", "Profile-cache LRU evictions"),
    # -- on-disk segments ---------------------------------------------
    "schemr_segment_count": (
        "gauge", "Live mmapped segments"),
    "schemr_segment_mmap_bytes": (
        "gauge", "Bytes memory-mapped across live segments"),
    "schemr_segment_delta_docs": (
        "gauge", "Documents in the in-memory delta segment"),
    "schemr_segment_deleted_docs": (
        "gauge", "Tombstoned documents awaiting a merge"),
    "schemr_segment_merges_total": (
        "counter", "Segment merges completed"),
    "schemr_segment_merged_segments_total": (
        "counter", "Segments rewritten by merges"),
    "schemr_segment_merge_seconds": (
        "histogram", "Segment merge duration"),
    # -- indexer refreshes --------------------------------------------
    "schemr_indexer_refreshes_total": (
        "counter", "Indexer refresh batches applied"),
    "schemr_indexer_ops_applied_total": (
        "counter", "Index operations applied by refreshes"),
    "schemr_indexer_refresh_seconds": (
        "histogram", "Refresh batch duration"),
    "schemr_indexer_batch_size": (
        "histogram", "Operations per refresh batch"),
    "schemr_indexer_generation_bumps_total": (
        "counter", "Refreshes that moved the index generation"),
    "schemr_indexer_refresh_failures_total": (
        "counter", "Scheduled refreshes that raised"),
    # -- process-sharded serving --------------------------------------
    "schemr_shard_up": (
        "gauge", "Whether the shard's worker is serving (1) or not (0)"),
    "schemr_shard_documents": (
        "gauge", "Documents owned by the shard"),
    "schemr_shard_restarts_total": (
        "counter", "Times the shard's worker process was respawned"),
    "schemr_shard_requests_total": (
        "counter", "Worker round-trips completed"),
    "schemr_shard_failures_total": (
        "counter", "Worker round-trips that failed, by kind"),
    "schemr_shard_wait_seconds": (
        "histogram", "Front wait per worker round-trip"),
    "schemr_shard_degraded_merges_total": (
        "counter", "Queries merged without every shard"),
    "schemr_shard_hung_workers_total": (
        "counter", "Workers terminated because they stopped answering"),
    # -- replication --------------------------------------------------
    "schemr_replica_lag_seconds": (
        "gauge", "Seconds since the replica last confirmed sync"),
    "schemr_replica_lag_operations": (
        "gauge", "Change-log operations the replica trails by"),
    "schemr_replica_generation": (
        "gauge", "Change-log cursor the replica serves"),
    "schemr_replica_syncs_total": (
        "counter", "Replica sync cycles by outcome"),
    "schemr_replica_pulled_segments_total": (
        "counter", "Segment files pulled from the primary"),
    "schemr_replica_pulled_bytes_total": (
        "counter", "Segment bytes pulled from the primary"),
    # -- HTTP service -------------------------------------------------
    "schemr_http_requests_total": (
        "counter", "HTTP requests by route and status"),
    "schemr_http_request_seconds": (
        "histogram", "HTTP request latency by route"),
    "schemr_admission_active": (
        "gauge", "Searches currently admitted"),
    "schemr_admission_waiting": (
        "gauge", "Searches queued for admission"),
    "schemr_admission_rejected_total": (
        "counter", "Searches shed by admission control"),
    "schemr_admission_timeouts_total": (
        "counter", "Admissions that timed out in the queue"),
    "schemr_server_stop_hangs_total": (
        "counter", "stop() calls whose serve thread failed to exit"),
    # -- workload replay ----------------------------------------------
    "schemr_workload_sessions_total": (
        "counter", "Sessions replayed"),
    "schemr_workload_queries_total": (
        "counter", "Replay queries issued"),
    "schemr_workload_clicks_total": (
        "counter", "Synthetic clicks recorded"),
    "schemr_workload_shed_total": (
        "counter", "Replay queries shed by admission control"),
    "schemr_workload_errors_total": (
        "counter", "Replay queries that failed"),
    "schemr_workload_request_seconds": (
        "histogram", "Replay request latency"),
    "schemr_workload_lag_seconds": (
        "histogram", "Open-loop dispatch lag behind the arrival schedule"),
    # -- lock-order sanitizer (test-only instrumentation) -------------
    "schemr_sanitizer_locks_wrapped": (
        "gauge", "Project locks wrapped by the lock-order sanitizer"),
    "schemr_sanitizer_order_edges": (
        "gauge", "Distinct lock-acquisition-order edges observed"),
    "schemr_sanitizer_inversions_total": (
        "counter", "Lock-order inversions detected at runtime"),
}


def metric_names() -> tuple[str, ...]:
    """Every canonical metric name, in catalog order."""
    return tuple(METRICS)


def metric_kind(name: str) -> str:
    """The instrument kind ``name`` must be registered as."""
    return METRICS[name][0]


def metric_help(name: str) -> str:
    """The canonical help string for ``name``."""
    return METRICS[name][1]
