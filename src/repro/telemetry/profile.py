"""Per-search :class:`QueryProfile` records and the slow-query log.

Every search the engine runs produces one profile: what the query was,
how long each phase took, how many candidates flowed through, whether
phase 1 was answered from cache or pruned early, and — when the result
list came back empty — *why* it was empty, so "no such schema exists"
is distinguishable from "you paged past the end".

:class:`QueryProfileLog` retains a bounded ring of recent profiles plus
a second ring of profiles that crossed the slow-query latency
threshold; both are what the ``/stats`` endpoint and ``schemr stats``
render.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

#: ``QueryProfile.empty_reason`` values.
EMPTY_NO_INDEX_HITS = "no_index_hits"
EMPTY_ALL_FILTERED = "all_candidates_filtered"
EMPTY_OFFSET_BEYOND = "offset_beyond_results"


@dataclass(slots=True)
class QueryProfile:
    """Everything observable about one search invocation."""

    #: The analyzed/flattened query terms phase 1 actually ran.
    query_terms: tuple[str, ...] = ()
    started_at: float = 0.0  # wall clock
    total_seconds: float = 0.0
    #: phase name -> wall seconds (the PipelineTrace phases).
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Phase-1 candidates entering the match phase.
    candidate_count: int = 0
    #: Candidates surviving fine-grained matching (pre-paging).
    matched_count: int = 0
    #: Results actually returned (post offset/top_n paging).
    result_count: int = 0
    top_n: int = 0
    offset: int = 0
    #: Phase-1 retrieval strategy that executed ("naive"/"packed"/
    #: "pruned"), or "cache" semantics via ``cache_hit``.
    strategy: str = ""
    #: Whether phase 1 was answered from the QueryCache.
    cache_hit: bool = False
    #: Whether MaxScore pruning reached AND-mode (stopped admitting
    #: new accumulator docs) during phase 1.
    pruned_early: bool = False
    #: Documents that entered the phase-1 accumulator.
    docs_scored: int = 0
    #: Why the result list is empty (None when it is not):
    #: ``no_index_hits`` — phase 1 found nothing; ``offset_beyond_results``
    #: — the ranking exists but the requested page is past its end;
    #: ``all_candidates_filtered`` — candidates were found but none
    #: survived matching.
    empty_reason: str | None = None
    #: Graceful-degradation level the response was produced at
    #: (see :mod:`repro.resilience.deadline`): 0 full pipeline,
    #: 1 reduced candidate pool, 2 name-matcher-only ensemble,
    #: 3 phase-1 TF/IDF ranking returned outright.
    degradation_level: int = 0
    #: The level's machine-readable name ("none", "reduced_pool",
    #: "name_only", "phase1_only").
    degradation: str = "none"
    #: Whether the search's wall-clock budget ran out mid-pipeline
    #: (forcing the phase-1 fallback regardless of the ladder).
    deadline_expired: bool = False
    #: The budget this search ran under (None = unlimited).
    budget_seconds: float | None = None
    #: Shards in the serving pool (0 = single-process engine).
    shards_total: int = 0
    #: Shards that answered this search; below ``shards_total`` means
    #: the page was served degraded from the survivors.
    shards_used: int = 0

    def to_dict(self) -> dict:
        """JSON-safe form (history sink, ``/stats``, logs)."""
        return {
            "query_terms": list(self.query_terms),
            "started_at": self.started_at,
            "total_seconds": self.total_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "candidate_count": self.candidate_count,
            "matched_count": self.matched_count,
            "result_count": self.result_count,
            "top_n": self.top_n,
            "offset": self.offset,
            "strategy": self.strategy,
            "cache_hit": self.cache_hit,
            "pruned_early": self.pruned_early,
            "docs_scored": self.docs_scored,
            "empty_reason": self.empty_reason,
            "degradation_level": self.degradation_level,
            "degradation": self.degradation,
            "deadline_expired": self.deadline_expired,
            "budget_seconds": self.budget_seconds,
            "shards_total": self.shards_total,
            "shards_used": self.shards_used,
        }


class QueryProfileLog:
    """Bounded rings of recent and slow query profiles.

    ``slow_threshold_seconds`` is the latency above which a profile is
    additionally retained in the slow ring and counted; the engine
    mirrors that count into the ``schemr_slow_queries_total`` metric.
    """

    def __init__(self, buffer_size: int = 256,
                 slow_threshold_seconds: float = 0.25) -> None:
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        if slow_threshold_seconds <= 0:
            raise ValueError(
                "slow_threshold_seconds must be positive, got "
                f"{slow_threshold_seconds}")
        self._lock = threading.Lock()
        self._recent: deque[QueryProfile] = deque(maxlen=buffer_size)
        self._slow: deque[QueryProfile] = deque(maxlen=buffer_size)
        self._threshold = slow_threshold_seconds
        self._total = 0
        self._slow_total = 0

    @property
    def slow_threshold_seconds(self) -> float:
        return self._threshold

    @property
    def total_count(self) -> int:
        """Profiles ever recorded (including evicted ones)."""
        with self._lock:
            return self._total

    @property
    def slow_count(self) -> int:
        """Profiles ever recorded above the slow threshold."""
        with self._lock:
            return self._slow_total

    def record(self, profile: QueryProfile) -> bool:
        """Retain ``profile``; returns True when it counted as slow."""
        slow = profile.total_seconds >= self._threshold
        with self._lock:
            self._recent.append(profile)
            self._total += 1
            if slow:
                self._slow.append(profile)
                self._slow_total += 1
        return slow

    def recent(self, limit: int | None = None) -> list[QueryProfile]:
        """Newest-first recent profiles."""
        with self._lock:
            profiles = list(self._recent)
        profiles.reverse()
        return profiles[:limit] if limit is not None else profiles

    def slow(self, limit: int | None = None) -> list[QueryProfile]:
        """Newest-first slow profiles."""
        with self._lock:
            profiles = list(self._slow)
        profiles.reverse()
        return profiles[:limit] if limit is not None else profiles

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self._slow.clear()
