"""The query catalog: ground-truth intents with Zipf popularity.

A replay needs queries whose relevant answers are *known*, or the
click model would be clicking blind and the harvested history would
teach the learner nothing.  The catalog regenerates the corpus's
provenance (the :class:`~repro.corpus.generator.CorpusGenerator` is
deterministic per seed), re-attaches stored schema ids by name, and
samples ground-truth intents through
:class:`~repro.corpus.groundtruth.QuerySampler`.  Each intent gets a
Zipf popularity weight — real keyword traffic is heavy-tailed: a few
queries dominate, most appear once — and a DDL fragment rendering so
sessions can mix keyword and schema-fragment queries.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass

from repro.corpus.domains import DOMAINS
from repro.corpus.filters import paper_filter
from repro.corpus.generator import CorpusGenerator, GeneratedSchema
from repro.corpus.groundtruth import GroundTruthQuery, QuerySampler
from repro.errors import SchemrError


def regenerate_corpus(corpus_seed: int,
                      corpus_count: int) -> list[GeneratedSchema]:
    """Re-derive the provenanced corpus a `schemr generate` run stored.

    Generation is fully deterministic per seed, so the same
    (seed, count) pair reproduces the exact schemas — including their
    ground-truth relevance structure — without the repository having to
    persist provenance.
    """
    generator = CorpusGenerator(seed=corpus_seed)
    stats = paper_filter(generator.generate_raw_stream(corpus_count))
    return list(stats.kept)


def attach_schema_ids(repository,
                      corpus: list[GeneratedSchema]
                      ) -> list[GeneratedSchema]:
    """Map regenerated provenance onto stored schema ids, by name.

    Generated schema names embed a generation serial, so name lookup is
    exact.  Returns only the corpus entries that exist in the
    repository; raises when nothing matches (wrong seed/count for this
    repository).
    """
    rows = repository.connection.execute(
        "SELECT schema_id, name FROM schemas")
    id_by_name = {row["name"]: row["schema_id"] for row in rows}
    matched = []
    for generated in corpus:
        schema_id = id_by_name.get(generated.schema.name)
        if schema_id is None:
            continue
        generated.schema.schema_id = schema_id
        matched.append(generated)
    if not matched:
        raise SchemrError(
            "no regenerated schema matched the repository; the "
            "--corpus-seed/--corpus-count pair must be the one "
            "`schemr generate` was run with")
    return matched


@dataclass(frozen=True, slots=True)
class CatalogEntry:
    """One searchable intent: a ground-truth query plus its popularity."""

    intent_id: int
    query: GroundTruthQuery
    weight: float
    fragment: str


def fragment_for(query: GroundTruthQuery) -> str:
    """A DDL fragment rendering of the intent (schema-fragment queries).

    The paper's designers paste a table sketch next to their keywords;
    the synthetic equivalent is the queried template with the queried
    canonical attributes as columns.
    """
    columns = ",\n  ".join(
        f"{attribute.replace(' ', '_')} VARCHAR(100)"
        for attribute in query.canonical_keywords[1:]) or "id INTEGER"
    table = query.template.replace(" ", "_")
    return f"CREATE TABLE {table} (\n  {columns}\n);"


class QueryCatalog:
    """Zipf-weighted intent pool the session generator draws from.

    Intent ``i`` (in sampling order) has weight ``1 / (i + 1)**s`` —
    the classic heavy-tailed popularity curve.  ``sample_intent`` draws
    by cumulative weight with the caller's RNG so every consumer stays
    deterministic under its own seed.
    """

    def __init__(self, queries: list[GroundTruthQuery],
                 zipf_exponent: float = 1.1) -> None:
        if not queries:
            raise SchemrError("query catalog needs at least one intent")
        if zipf_exponent <= 0:
            raise SchemrError(
                f"zipf_exponent must be positive, got {zipf_exponent}")
        self.zipf_exponent = zipf_exponent
        self._entries = tuple(
            CatalogEntry(intent_id=i, query=query,
                         weight=1.0 / (i + 1) ** zipf_exponent,
                         fragment=fragment_for(query))
            for i, query in enumerate(queries))
        self._cumulative: list[float] = []
        total = 0.0
        for entry in self._entries:
            total += entry.weight
            self._cumulative.append(total)

    @property
    def entries(self) -> tuple[CatalogEntry, ...]:
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, intent_id: int) -> CatalogEntry:
        return self._entries[intent_id]

    def sample_intent(self, rng: random.Random) -> CatalogEntry:
        """One weighted draw from the popularity distribution."""
        point = rng.random() * self._cumulative[-1]
        return self._entries[bisect.bisect_left(self._cumulative, point)]


def build_catalog(corpus: list[GeneratedSchema], size: int,
                  seed: int = 23, zipf_exponent: float = 1.1,
                  keywords_per_query: int = 4) -> QueryCatalog:
    """Sample ``size`` ground-truth intents into a Zipf catalog.

    The corpus must carry stored schema ids (see
    :func:`attach_schema_ids`); intents are sampled clean — sessions
    apply their own noise-channel renderings per query event.
    """
    sampler = QuerySampler(corpus, DOMAINS, seed=seed)
    queries = sampler.sample(size, channel="clean",
                             keywords_per_query=keywords_per_query)
    return QueryCatalog(queries, zipf_exponent=zipf_exponent)
