"""Deterministic synthetic user sessions over a query catalog.

The session generator turns a :class:`~repro.workload.catalog.QueryCatalog`
into a stream of user sessions shaped like real search traffic:

* **heavy-tailed popularity** — each session's intent is a Zipf draw
  from the catalog, so a few queries dominate the traffic;
* **reformulation** — follow-up queries in a session re-render the same
  intent through another noise channel (abbreviation, plural,
  delimiter, typo), the phenomena the paper's name matcher targets;
* **mixed modality** — a configurable fraction of queries attach the
  intent's DDL fragment next to the keywords;
* **diurnal load** — session start times follow a one-period sinusoid
  over the virtual horizon, with burst episodes (flash crowds)
  multiplying the arrival rate inside short windows.

Everything is derived from ``WorkloadSpec.seed`` through stable
per-session sub-seeds (string-seeded :class:`random.Random`, which
hashes deterministically across processes and platforms), so the same
spec always yields the same session stream — the property the
byte-identical-harvest guarantee of :mod:`repro.workload.replay` rests
on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from repro.corpus.groundtruth import QUERY_CHANNELS
from repro.corpus.noise import NameStyler, pluralize
from repro.errors import SchemrError
from repro.workload.catalog import QueryCatalog


@dataclass(frozen=True, slots=True)
class SessionQuery:
    """One query event inside a session."""

    intent_id: int
    keywords: tuple[str, ...]
    channel: str
    fragment: str | None
    arrival_offset: float
    """Seconds after the session started (virtual time)."""


@dataclass(frozen=True, slots=True)
class Session:
    """One synthetic user visit: ordered query events."""

    session_id: int
    started_at: float
    """Virtual seconds after the replay epoch."""
    queries: tuple[SessionQuery, ...]


@dataclass(frozen=True, slots=True)
class BurstEpisode:
    """A flash-crowd window multiplying the arrival rate."""

    start: float
    duration: float
    multiplier: float


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Shape of the synthetic traffic; every field feeds the seed."""

    seed: int = 97
    sessions: int = 1000
    duration_seconds: float = 86400.0
    zipf_exponent: float = 1.1
    mean_queries_per_session: float = 3.0
    mean_think_seconds: float = 30.0
    fragment_fraction: float = 0.2
    reformulation_probability: float = 0.35
    channel_mix: tuple[tuple[str, float], ...] = (
        ("clean", 0.55), ("abbreviated", 0.15), ("plural", 0.12),
        ("delimiter", 0.10), ("typo", 0.08))
    diurnal_amplitude: float = 0.6
    diurnal_peak_fraction: float = 0.75
    burst_count: int = 2
    burst_duration_fraction: float = 0.02
    burst_multiplier: float = 6.0
    top_n: int = 10

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise SchemrError(f"sessions must be >= 1, got {self.sessions}")
        if self.duration_seconds <= 0:
            raise SchemrError("duration_seconds must be positive, got "
                              f"{self.duration_seconds}")
        if self.mean_queries_per_session < 1:
            raise SchemrError("mean_queries_per_session must be >= 1, got "
                              f"{self.mean_queries_per_session}")
        if self.mean_think_seconds < 0:
            raise SchemrError("mean_think_seconds must be >= 0, got "
                              f"{self.mean_think_seconds}")
        if not 0.0 <= self.fragment_fraction <= 1.0:
            raise SchemrError("fragment_fraction must be in [0, 1], got "
                              f"{self.fragment_fraction}")
        if not 0.0 <= self.reformulation_probability <= 1.0:
            raise SchemrError("reformulation_probability must be in "
                              f"[0, 1], got {self.reformulation_probability}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise SchemrError("diurnal_amplitude must be in [0, 1), got "
                              f"{self.diurnal_amplitude}")
        if self.burst_count < 0:
            raise SchemrError(
                f"burst_count must be >= 0, got {self.burst_count}")
        if self.burst_multiplier < 1.0:
            raise SchemrError("burst_multiplier must be >= 1, got "
                              f"{self.burst_multiplier}")
        if self.top_n < 1:
            raise SchemrError(f"top_n must be >= 1, got {self.top_n}")
        for channel, share in self.channel_mix:
            if channel not in QUERY_CHANNELS:
                raise SchemrError(f"unknown channel {channel!r} in mix; "
                                  f"one of {QUERY_CHANNELS}")
            if share < 0:
                raise SchemrError(
                    f"channel share for {channel!r} must be >= 0")


def render_keywords(canonical: list[str] | tuple[str, ...], channel: str,
                    rng: random.Random) -> tuple[str, ...]:
    """Render canonical keywords through one noise channel.

    Mirrors the ground-truth sampler's channels so session queries look
    like the E2 evaluation queries: abbreviation, pluralized head noun,
    non-space delimiters, or a single interior typo on the longest
    word.
    """
    if channel == "clean":
        return tuple(canonical)
    rendered = []
    for keyword in canonical:
        if channel == "abbreviated":
            styler = NameStyler("abbreviated", rng, plural_probability=0.0,
                                abbreviate_probability=1.0)
            rendered.append(styler.render(keyword, allow_plural=False))
        elif channel == "plural":
            words = keyword.split()
            words[-1] = pluralize(words[-1])
            rendered.append(" ".join(words))
        elif channel == "typo":
            words = keyword.split()
            target = max(range(len(words)), key=lambda i: len(words[i]))
            words[target] = _typo(words[target], rng)
            rendered.append(" ".join(words))
        else:  # delimiter
            delimiter = rng.choice(("-", ".", "_"))
            rendered.append(delimiter.join(keyword.split()))
    return tuple(rendered)


def _typo(word: str, rng: random.Random) -> str:
    """One interior character deletion or adjacent transposition."""
    if len(word) < 4:
        return word
    i = rng.randrange(1, len(word) - 2)
    if rng.random() < 0.5:
        return word[:i] + word[i + 1:]
    return word[:i] + word[i + 1] + word[i] + word[i + 2:]


class SessionGenerator:
    """Streams deterministic sessions from a catalog and a spec."""

    #: Arrival-time resolution: the virtual horizon is split into this
    #: many bins whose weights carry the diurnal curve and bursts.
    ARRIVAL_BINS = 1440

    def __init__(self, catalog: QueryCatalog, spec: WorkloadSpec) -> None:
        self._catalog = catalog
        self._spec = spec
        self._bursts = self._sample_bursts()

    @property
    def bursts(self) -> tuple[BurstEpisode, ...]:
        return self._bursts

    def intensity(self, t: float) -> float:
        """Relative arrival rate at virtual time ``t``.

        A one-period sinusoid peaking at ``diurnal_peak_fraction`` of
        the horizon, multiplied inside any burst window.
        """
        spec = self._spec
        phase = 2.0 * math.pi * (t / spec.duration_seconds
                                 - spec.diurnal_peak_fraction)
        rate = 1.0 + spec.diurnal_amplitude * math.cos(phase)
        for burst in self._bursts:
            if burst.start <= t < burst.start + burst.duration:
                rate *= burst.multiplier
        return rate

    def _sample_bursts(self) -> tuple[BurstEpisode, ...]:
        spec = self._spec
        rng = random.Random(f"{spec.seed}:bursts")
        duration = spec.burst_duration_fraction * spec.duration_seconds
        episodes = []
        for _ in range(spec.burst_count):
            start = rng.random() * (spec.duration_seconds - duration)
            episodes.append(BurstEpisode(start=start, duration=duration,
                                         multiplier=spec.burst_multiplier))
        return tuple(sorted(episodes, key=lambda b: b.start))

    def _start_times(self) -> list[float]:
        """Session start times along the diurnal/burst intensity curve.

        Inverse-CDF sampling over discretized bins: one
        ``rng.choices`` call assigns every session a bin, a uniform
        jitter places it inside, and the sorted result is the arrival
        order.  O(sessions) memory — fine even at millions (floats).
        """
        spec = self._spec
        rng = random.Random(f"{spec.seed}:arrivals")
        width = spec.duration_seconds / self.ARRIVAL_BINS
        weights = [self.intensity((i + 0.5) * width)
                   for i in range(self.ARRIVAL_BINS)]
        bins = rng.choices(range(self.ARRIVAL_BINS), weights=weights,
                           k=spec.sessions)
        times = [(b + rng.random()) * width for b in bins]
        times.sort()
        return times

    def sessions(self) -> Iterator[Session]:
        """Yield every session in arrival order, one at a time."""
        for session_id, started_at in enumerate(self._start_times()):
            yield self._build_session(session_id, started_at)

    def _build_session(self, session_id: int, started_at: float) -> Session:
        spec = self._spec
        rng = random.Random(f"{spec.seed}:session:{session_id}")
        count = 1 + self._geometric(rng, spec.mean_queries_per_session - 1.0)
        channels = [c for c, _ in spec.channel_mix]
        shares = [s for _, s in spec.channel_mix]
        entry = self._catalog.sample_intent(rng)
        queries = []
        offset = 0.0
        for index in range(count):
            if index > 0:
                if rng.random() >= spec.reformulation_probability:
                    entry = self._catalog.sample_intent(rng)
                if spec.mean_think_seconds > 0:
                    offset += rng.expovariate(1.0 / spec.mean_think_seconds)
            channel = rng.choices(channels, weights=shares, k=1)[0]
            keywords = render_keywords(
                entry.query.canonical_keywords, channel, rng)
            fragment = (entry.fragment
                        if rng.random() < spec.fragment_fraction else None)
            queries.append(SessionQuery(
                intent_id=entry.intent_id, keywords=keywords,
                channel=channel, fragment=fragment,
                arrival_offset=offset))
        return Session(session_id=session_id, started_at=started_at,
                       queries=tuple(queries))

    @staticmethod
    def _geometric(rng: random.Random, mean: float) -> int:
        """Geometric(>=0) draw with the given mean (0 when mean <= 0)."""
        if mean <= 0:
            return 0
        p = 1.0 / (mean + 1.0)
        u = rng.random()
        return int(math.log(1.0 - u) / math.log(1.0 - p))
