"""Synthetic traffic replay and the search-history learning loop.

The paper's E2/E3 experiments evaluate schemr on a few hundred
curated queries; its deployment story ("as Schemr is utilized in
practice, we can record search histories...") presumes *traffic*.
This package supplies it:

* :mod:`~repro.workload.catalog` — ground-truth query intents with
  Zipf popularity, regenerated from the corpus seed;
* :mod:`~repro.workload.sessions` — deterministic user sessions with
  reformulation, noise channels, diurnal load, and burst episodes;
* :mod:`~repro.workload.clicks` — position-biased, relevance-gated
  click model (the examination hypothesis);
* :mod:`~repro.workload.replay` — closed- and open-loop drivers over
  an in-process engine or a live ``schemr serve`` endpoint, harvesting
  byte-identical history through the telemetry sink;
* :mod:`~repro.workload.train` — history → training examples →
  learned weights → uniform-vs-trained A/B with significance testing.
"""

from repro.workload.catalog import (
    CatalogEntry,
    QueryCatalog,
    attach_schema_ids,
    build_catalog,
    fragment_for,
    regenerate_corpus,
)
from repro.workload.clicks import ClickModel
from repro.workload.replay import (
    EngineTarget,
    HttpTarget,
    QueryOutcome,
    ReplayDriver,
    ReplayReport,
    ReplayTarget,
    VIRTUAL_EPOCH,
)
from repro.workload.sessions import (
    BurstEpisode,
    Session,
    SessionGenerator,
    SessionQuery,
    WorkloadSpec,
    render_keywords,
)
from repro.workload.train import (
    ABResult,
    TrainingReport,
    ab_compare,
    examples_from_history,
    heldout_queries,
    matcher_features,
    train_weights,
)

__all__ = [
    "ABResult",
    "BurstEpisode",
    "CatalogEntry",
    "ClickModel",
    "EngineTarget",
    "HttpTarget",
    "QueryCatalog",
    "QueryOutcome",
    "ReplayDriver",
    "ReplayReport",
    "ReplayTarget",
    "Session",
    "SessionGenerator",
    "SessionQuery",
    "TrainingReport",
    "VIRTUAL_EPOCH",
    "WorkloadSpec",
    "ab_compare",
    "attach_schema_ids",
    "build_catalog",
    "examples_from_history",
    "fragment_for",
    "heldout_queries",
    "matcher_features",
    "regenerate_corpus",
    "render_keywords",
    "train_weights",
]
