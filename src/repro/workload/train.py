"""From harvested history to learned weights to an A/B verdict.

This closes the loop the paper sketches: "As Schemr is utilized in
practice, we can record search histories to create a training set of
search-term to schema-fragment matches.  With such a training set, we
may then determine an appropriate weighting scheme."  The pipeline:

1. **examples** — every harvested :class:`HistoryRecord` with at least
   one click becomes one :class:`TrainingExample` per result: the
   per-matcher evidence (max combined-matrix cell) for the (query,
   schema) pair, labelled by whether the user clicked it;
2. **fit** — :class:`~repro.matching.learner.WeightLearner` runs its
   logistic regression and emits a normalized weighting scheme;
3. **A/B** — two engines over the same repository, one uniform and one
   with the learned weights, score a *held-out* ground-truth query set
   (sampled with a different seed than the replay catalog), compared
   per-query with :func:`~repro.eval.significance.paired_bootstrap`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.corpus.domains import DOMAINS
from repro.corpus.generator import GeneratedSchema
from repro.corpus.groundtruth import GroundTruthQuery, QuerySampler
from repro.errors import SchemrError
from repro.eval.metrics import precision_at_k, recall_at_k
from repro.eval.significance import ComparisonResult, paired_bootstrap
from repro.matching.ensemble import MatcherEnsemble
from repro.matching.learner import TrainingExample, WeightLearner
from repro.model.schema import Schema
from repro.parsers.query_parser import parse_query
from repro.telemetry.history import HistoryRecord


def matcher_features(ensemble: MatcherEnsemble, query_graph,
                     schema: Schema, profile=None) -> dict[str, float]:
    """Per-matcher evidence for one (query, schema) pair.

    The feature the meta-learner sees is each matcher's best cell after
    the paper's max-per-schema-element collapse — a scalar summary of
    "how strongly did this matcher believe in this schema".
    """
    result = ensemble.match(query_graph, schema, profile=profile)
    return {
        name: max(matrix.max_per_column().values(), default=0.0)
        for name, matrix in result.per_matcher.items()
    }


def examples_from_history(records: Iterable[HistoryRecord], repository,
                          ensemble: MatcherEnsemble | None = None
                          ) -> list[TrainingExample]:
    """Turn harvested search history into labelled training examples.

    Only records carrying at least one click contribute — a page nobody
    clicked says nothing about which result *was* the right one (the
    classic implicit-feedback caveat), while a clicked page labels the
    clicked results positive and the passed-over ones negative.
    """
    ensemble = ensemble or MatcherEnsemble.default()
    profiles = repository.profile_store()
    examples: list[TrainingExample] = []
    for record in records:
        clicked = record.clicked_ids
        if not clicked:
            continue
        query_graph = parse_query(keywords=list(record.query_terms))
        for result in record.results:
            schema_id = int(result["schema_id"])
            try:
                schema = profiles.get_schema(schema_id)
                profile = profiles.get_profile(schema_id)
            except SchemrError:
                continue  # schema deleted since the history was written
            examples.append(TrainingExample(
                features=matcher_features(ensemble, query_graph, schema,
                                          profile=profile),
                relevant=schema_id in clicked,
            ))
    return examples


@dataclass(frozen=True, slots=True)
class TrainingReport:
    """What the fit produced, for the CLI and the bench."""

    examples: int
    positives: int
    accuracy: float
    weights: dict[str, float]

    def to_dict(self) -> dict:
        return {
            "examples": self.examples,
            "positives": self.positives,
            "accuracy": self.accuracy,
            "weights": dict(self.weights),
        }

    def summary(self) -> str:
        weights = ", ".join(f"{name}={value:.3f}"
                            for name, value in sorted(self.weights.items()))
        return (f"trained on {self.examples} examples "
                f"({self.positives} positive), "
                f"training accuracy {self.accuracy:.3f}\n"
                f"  learned weights: {weights}")


def train_weights(records: Iterable[HistoryRecord], repository,
                  ensemble: MatcherEnsemble | None = None
                  ) -> tuple[WeightLearner, TrainingReport]:
    """Fit the meta-learner on harvested history.

    Raises :class:`~repro.errors.MatchError` (via the learner) when the
    history carries too few clicks to present both classes.
    """
    ensemble = ensemble or MatcherEnsemble.default()
    examples = examples_from_history(records, repository, ensemble)
    learner = WeightLearner(list(ensemble.matcher_names))
    learner.fit(examples)
    report = TrainingReport(
        examples=len(examples),
        positives=sum(1 for e in examples if e.relevant),
        accuracy=learner.accuracy(examples),
        weights=learner.weights(),
    )
    return learner, report


@dataclass(frozen=True, slots=True)
class ABResult:
    """Uniform-vs-trained comparison on held-out queries."""

    queries: int
    top_n: int
    trained_weights: dict[str, float]
    precision: ComparisonResult
    """A = trained, B = uniform, metric = precision@top_n."""
    recall: ComparisonResult
    """A = trained, B = uniform, metric = recall@top_n."""

    @property
    def trained_no_worse(self) -> bool:
        """Trained weights at least match uniform, or the gap is noise."""
        return all(result.delta >= 0 or not result.significant
                   for result in (self.precision, self.recall))

    def to_dict(self) -> dict:
        def unpack(result: ComparisonResult) -> dict:
            return {"trained": result.mean_a, "uniform": result.mean_b,
                    "delta": result.delta, "p_value": result.p_value,
                    "significant": result.significant,
                    "method": result.method}
        return {
            "queries": self.queries,
            "top_n": self.top_n,
            "trained_weights": dict(self.trained_weights),
            "precision_at_k": unpack(self.precision),
            "recall_at_k": unpack(self.recall),
            "trained_no_worse": self.trained_no_worse,
        }

    def summary(self) -> str:
        return (f"A/B on {self.queries} held-out queries (trained vs "
                f"uniform, @{self.top_n}):\n"
                f"  precision: {self.precision.summary()}\n"
                f"  recall:    {self.recall.summary()}\n"
                f"  trained no worse than uniform: {self.trained_no_worse}")


def heldout_queries(corpus: list[GeneratedSchema], count: int,
                    seed: int = 51, keywords_per_query: int = 4,
                    exclude: Sequence[GroundTruthQuery] = ()
                    ) -> list[GroundTruthQuery]:
    """Held-out ground-truth queries for the A/B evaluation.

    Sampled with its own seed so it never coincides with the replay
    catalog; any query whose canonical keywords match an excluded
    (catalog) query is dropped — the A/B must measure generalization,
    not training-set recall.
    """
    seen = {tuple(query.canonical_keywords) for query in exclude}
    sampler = QuerySampler(corpus, DOMAINS, seed=seed)
    # Oversample, then drop collisions with the training catalog.
    queries = sampler.sample(count + len(seen), channel="clean",
                             keywords_per_query=keywords_per_query)
    kept = [query for query in queries
            if tuple(query.canonical_keywords) not in seen]
    return kept[:count]


def ab_compare(repository, weights: dict[str, float],
               queries: list[GroundTruthQuery], top_n: int = 10,
               bootstrap_iterations: int = 2000,
               bootstrap_seed: int = 7) -> ABResult:
    """Uniform vs trained weights, paired per held-out query.

    Builds two engines over the same repository — identical except for
    the ensemble weighting scheme — runs every query through both, and
    bootstrap-tests the paired precision@k and recall@k differences.
    """
    if not queries:
        raise SchemrError("A/B comparison needs at least one query")

    def rankings(ensemble: MatcherEnsemble) -> list[list[int]]:
        engine = repository.engine(ensemble=ensemble)
        ranked = []
        for query in queries:
            results = engine.search(keywords=list(query.keywords),
                                    top_n=top_n)
            ranked.append([result.schema_id for result in results])
        return ranked

    uniform_ranked = rankings(MatcherEnsemble.default())
    trained_ensemble = MatcherEnsemble.default()
    trained_ensemble.set_weights(weights)
    trained_ranked = rankings(trained_ensemble)

    def scores(ranked: list[list[int]], metric) -> list[float]:
        return [metric(ranking, query.relevant_ids, top_n)
                for ranking, query in zip(ranked, queries)]

    precision = paired_bootstrap(
        scores(trained_ranked, precision_at_k),
        scores(uniform_ranked, precision_at_k),
        iterations=bootstrap_iterations, seed=bootstrap_seed)
    recall = paired_bootstrap(
        scores(trained_ranked, recall_at_k),
        scores(uniform_ranked, recall_at_k),
        iterations=bootstrap_iterations, seed=bootstrap_seed)
    return ABResult(queries=len(queries), top_n=top_n,
                    trained_weights=dict(weights),
                    precision=precision, recall=recall)
