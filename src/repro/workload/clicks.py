"""Position-biased click model over ground-truth relevance.

Clicks are the label the meta-learner trains on, so they must look
like user behaviour, not like an oracle: users examine results
top-down with decaying attention (position bias) and click examined
results in proportion to how attractive — here, how *relevant* — they
are.  This is the classic examination-hypothesis model: ``P(click at
rank r) = examination(r) * attractiveness(grade)`` with examination
decaying geometrically in rank.  Relevance grades come from the
corpus's exact ground truth, so a click is noisy evidence of true
relevance — exactly the signal real search history would carry.

Deterministic per (seed, session, query): the model derives a
sub-seeded RNG for every page, so the same replay produces the same
clicks regardless of thread interleaving.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.corpus.groundtruth import GroundTruthQuery
from repro.core.results import SearchResult
from repro.errors import SchemrError


class ClickModel:
    """Examination-hypothesis clicks, relevance-gated by ground truth."""

    def __init__(self, seed: int = 131, persistence: float = 0.72,
                 grade2_probability: float = 0.65,
                 grade1_probability: float = 0.22,
                 grade0_probability: float = 0.02) -> None:
        if not 0.0 < persistence <= 1.0:
            raise SchemrError(
                f"persistence must be in (0, 1], got {persistence}")
        for name, value in (("grade2", grade2_probability),
                            ("grade1", grade1_probability),
                            ("grade0", grade0_probability)):
            if not 0.0 <= value <= 1.0:
                raise SchemrError(
                    f"{name}_probability must be in [0, 1], got {value}")
        self._seed = seed
        self._persistence = persistence
        self._attractiveness = {2: grade2_probability,
                                1: grade1_probability,
                                0: grade0_probability}

    def attractiveness(self, grade: int) -> float:
        """Click probability of an examined result with this grade."""
        return self._attractiveness[min(max(grade, 0), 2)]

    def examination(self, rank: int) -> float:
        """Probability a user examines the result at 1-based ``rank``."""
        if rank < 1:
            raise SchemrError(f"rank must be >= 1, got {rank}")
        return self._persistence ** (rank - 1)

    def clicks(self, query: GroundTruthQuery,
               results: Sequence[SearchResult],
               session_id: int, query_index: int) -> set[int]:
        """Schema ids clicked on this result page.

        The RNG is derived from (model seed, session, query index), so
        clicks depend only on the page content and the identifiers —
        never on replay timing or thread scheduling.
        """
        rng = random.Random(
            f"{self._seed}:click:{session_id}:{query_index}")
        clicked: set[int] = set()
        for rank, result in enumerate(results, start=1):
            grade = query.relevance.get(result.schema_id, 0)
            probability = (self.examination(rank)
                           * self.attractiveness(grade))
            if rng.random() < probability:
                clicked.add(result.schema_id)
        return clicked
