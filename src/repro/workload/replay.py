"""The replay driver: synthetic sessions through the real stack.

Two load modes, the standard pair from load-testing practice:

* **closed loop** — ``users`` concurrent simulated users, each working
  through whole sessions query-by-query as fast as the stack answers.
  This is the *harvest* mode: every result page runs through the click
  model and is written to the :class:`SearchHistorySink` with virtual
  timestamps, sorted by (session, query), so the harvested history is
  **byte-identical across runs** of the same spec against a
  deterministic target (no search budget, no shedding).
* **open loop** — arrivals follow the spec's diurnal/burst schedule
  compressed to a target mean QPS, issued on time whether or not
  earlier queries finished.  This is the *overload* mode: it measures
  shed rate (429s / :class:`AdmissionRejected`), the
  degradation-level mix, and latency under the curve — the regime
  where admission control and the degradation ladder earn their keep.

Targets: an in-process :class:`~repro.core.engine.SchemrEngine` (or
the sharded front — anything with ``search``/``thread_profile``), or a
live ``schemr serve`` HTTP endpoint via
:class:`~repro.service.client.SchemrClient`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol

from repro.core.results import SearchResult
from repro.errors import AdmissionRejected, SchemrError, ServiceError
from repro.resilience.shedding import AdmissionController
from repro.telemetry import SearchHistorySink, Telemetry
from repro.workload.catalog import QueryCatalog
from repro.workload.clicks import ClickModel
from repro.workload.sessions import (
    Session,
    SessionGenerator,
    SessionQuery,
    WorkloadSpec,
)

#: Virtual epoch harvested timestamps count from — an arbitrary fixed
#: origin so byte-identity never depends on the machine's clock.
VIRTUAL_EPOCH = 1_700_000_000.0


class ReplayTarget(Protocol):
    """Anything the driver can throw a query at."""

    def search(self, keywords: tuple[str, ...], fragment: str | None,
               top_n: int) -> tuple[list[SearchResult], str]:
        """Run one query; returns (results, degradation level)."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class EngineTarget:
    """In-process target over a :class:`SchemrEngine`-shaped object.

    ``admission`` optionally puts the PR 4 admission controller in
    front — the open-loop mode needs *something* to shed, and in
    process there is no HTTP tier to do it.
    """

    def __init__(self, engine, admission: AdmissionController | None = None,
                 owns_engine: bool = False) -> None:
        self._engine = engine
        self._admission = admission
        self._owns_engine = owns_engine

    @property
    def engine(self):
        return self._engine

    def search(self, keywords: tuple[str, ...], fragment: str | None,
               top_n: int) -> tuple[list[SearchResult], str]:
        if self._admission is not None:
            with self._admission.admitted():
                return self._search(keywords, fragment, top_n)
        return self._search(keywords, fragment, top_n)

    def _search(self, keywords: tuple[str, ...], fragment: str | None,
                top_n: int) -> tuple[list[SearchResult], str]:
        results = self._engine.search(keywords=list(keywords),
                                      fragment=fragment, top_n=top_n)
        profile = self._engine.thread_profile
        degradation = profile.degradation if profile is not None else "none"
        return results, degradation

    def close(self) -> None:
        if self._owns_engine:
            self._engine.close()


class HttpTarget:
    """Target over a live ``schemr serve`` endpoint.

    A 429 response maps to :class:`AdmissionRejected` so the driver
    counts server-side shedding exactly like in-process shedding.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        from repro.service.client import SchemrClient
        # retry_policy=None: the replay driver must see every 429 to
        # account shedding; client-side backoff would hide them.
        self._client = SchemrClient(base_url, timeout=timeout,
                                    retry_policy=None)

    def search(self, keywords: tuple[str, ...], fragment: str | None,
               top_n: int) -> tuple[list[SearchResult], str]:
        try:
            return self._client.search_meta(
                keywords=" ".join(keywords), fragment=fragment, top_n=top_n)
        except ServiceError as exc:
            if exc.status == 429:
                raise AdmissionRejected(str(exc)) from exc
            raise

    def close(self) -> None:
        pass


@dataclass(slots=True)
class QueryOutcome:
    """What happened to one replayed query."""

    session_id: int
    query_index: int
    arrival_at: float
    keywords: tuple[str, ...]
    latency_seconds: float = 0.0
    results: list[SearchResult] | None = None
    clicked: set[int] = field(default_factory=set)
    shed: bool = False
    error: str | None = None
    degradation: str = "none"
    lag_seconds: float = 0.0


@dataclass(slots=True)
class ReplayReport:
    """Aggregate outcome of one replay run."""

    mode: str
    sessions: int
    queries: int
    completed: int
    shed: int
    errors: int
    clicks: int
    records_harvested: int
    elapsed_seconds: float
    achieved_qps: float
    target_qps: float | None
    p50_ms: float
    p90_ms: float
    p99_ms: float
    degradation_mix: dict[str, int]
    lag_p99_ms: float = 0.0

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.queries if self.queries else 0.0

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "sessions": self.sessions,
            "queries": self.queries,
            "completed": self.completed,
            "shed": self.shed,
            "shed_fraction": self.shed_fraction,
            "errors": self.errors,
            "clicks": self.clicks,
            "records_harvested": self.records_harvested,
            "elapsed_seconds": self.elapsed_seconds,
            "achieved_qps": self.achieved_qps,
            "target_qps": self.target_qps,
            "p50_ms": self.p50_ms,
            "p90_ms": self.p90_ms,
            "p99_ms": self.p99_ms,
            "degradation_mix": dict(self.degradation_mix),
            "lag_p99_ms": self.lag_p99_ms,
        }

    def summary(self) -> str:
        lines = [
            f"replay ({self.mode} loop): {self.sessions} sessions, "
            f"{self.queries} queries in {self.elapsed_seconds:.2f}s "
            f"({self.achieved_qps:.1f} qps"
            + (f", target {self.target_qps:.1f}" if self.target_qps else "")
            + ")",
            f"  completed={self.completed} shed={self.shed} "
            f"({self.shed_fraction:.1%}) errors={self.errors} "
            f"clicks={self.clicks}",
            f"  latency p50={self.p50_ms:.1f}ms p90={self.p90_ms:.1f}ms "
            f"p99={self.p99_ms:.1f}ms",
            "  degradation: " + (", ".join(
                f"{name}={count}" for name, count in
                sorted(self.degradation_mix.items())) or "none"),
        ]
        if self.records_harvested:
            lines.append(
                f"  harvested {self.records_harvested} history records")
        return "\n".join(lines)


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile; 0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


class ReplayDriver:
    """Runs a workload spec against a target and harvests the results."""

    def __init__(self, target: ReplayTarget, catalog: QueryCatalog,
                 spec: WorkloadSpec, click_model: ClickModel | None = None,
                 sink: SearchHistorySink | None = None,
                 telemetry: Telemetry | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self._target = target
        self._catalog = catalog
        self._spec = spec
        self._clicks = click_model or ClickModel(seed=spec.seed)
        self._sink = sink
        self._telemetry = telemetry or Telemetry.disabled()
        self._clock = clock
        self._sleep = sleep
        metrics = self._telemetry.metrics
        self._m_sessions = metrics.counter(
            "schemr_workload_sessions_total", "Sessions replayed")
        self._m_queries = metrics.counter(
            "schemr_workload_queries_total", "Replay queries issued")
        self._m_clicks = metrics.counter(
            "schemr_workload_clicks_total", "Synthetic clicks recorded")
        self._m_shed = metrics.counter(
            "schemr_workload_shed_total",
            "Replay queries shed by admission control")
        self._m_errors = metrics.counter(
            "schemr_workload_errors_total", "Replay queries that failed")
        self._m_latency = metrics.histogram(
            "schemr_workload_request_seconds", "Replay request latency")
        self._m_lag = metrics.histogram(
            "schemr_workload_lag_seconds",
            "Open-loop dispatch lag behind the arrival schedule")

    # -- closed loop ---------------------------------------------------

    def run_closed_loop(self, users: int = 4) -> ReplayReport:
        """``users`` concurrent simulated users, sessions in order.

        The harvest contract: with a deterministic target, the history
        file written through the sink is byte-identical across runs —
        outcomes are sorted by (session, query), stamped with virtual
        arrival times, and carry no wall-clock measurement.
        """
        if users < 1:
            raise SchemrError(f"users must be >= 1, got {users}")
        generator = SessionGenerator(self._catalog, self._spec)
        source = generator.sessions()
        source_lock = threading.Lock()

        def next_session() -> Session | None:
            with source_lock:
                return next(source, None)

        outcome_lists: list[list[QueryOutcome]] = [[] for _ in range(users)]
        errors: list[BaseException] = []

        def worker(slot: int) -> None:
            try:
                while True:
                    session = next_session()
                    if session is None:
                        return
                    self._m_sessions.inc()
                    for outcome in self._replay_session(session):
                        outcome_lists[slot].append(outcome)
            except BaseException as exc:  # lint: fault-boundary (collected and re-raised after join)
                errors.append(exc)

        started = self._clock()
        threads = [threading.Thread(target=worker, args=(slot,),
                                    name=f"replay-user-{slot}")
                   for slot in range(users)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = max(self._clock() - started, 1e-9)
        if errors:
            raise SchemrError(
                f"replay worker failed: {errors[0]!r}") from errors[0]
        outcomes = [outcome for worker_outcomes in outcome_lists
                    for outcome in worker_outcomes]
        outcomes.sort(key=lambda o: (o.session_id, o.query_index))
        harvested = self._harvest(outcomes)
        return self._report("closed", outcomes, elapsed, harvested,
                            target_qps=None)

    def _replay_session(self, session: Session) -> Iterator[QueryOutcome]:
        for index, query in enumerate(session.queries):
            yield self._issue(session.session_id, index,
                              session.started_at + query.arrival_offset,
                              query)

    def _issue(self, session_id: int, query_index: int, arrival_at: float,
               query: SessionQuery, lag_seconds: float = 0.0) -> QueryOutcome:
        outcome = QueryOutcome(session_id=session_id,
                               query_index=query_index,
                               arrival_at=arrival_at,
                               keywords=query.keywords,
                               lag_seconds=lag_seconds)
        self._m_queries.inc()
        started = self._clock()
        try:
            results, degradation = self._target.search(
                query.keywords, query.fragment, self._spec.top_n)
        except AdmissionRejected:
            outcome.shed = True
            outcome.latency_seconds = self._clock() - started
            self._m_shed.inc()
            return outcome
        except SchemrError as exc:
            outcome.error = f"{type(exc).__name__}: {exc}"
            outcome.latency_seconds = self._clock() - started
            self._m_errors.inc()
            return outcome
        outcome.latency_seconds = self._clock() - started
        outcome.results = results
        outcome.degradation = degradation
        entry = self._catalog.entry(query.intent_id)
        outcome.clicked = self._clicks.clicks(
            entry.query, results, session_id, query_index)
        self._m_latency.observe(outcome.latency_seconds)
        self._m_clicks.inc(len(outcome.clicked))
        return outcome

    def _harvest(self, outcomes: list[QueryOutcome]) -> int:
        """Write completed outcomes through the sink, virtual-stamped."""
        if self._sink is None:
            return 0
        harvested = 0
        for outcome in outcomes:
            if outcome.results is None:
                continue
            self._sink.record(
                outcome.keywords, outcome.results,
                total_seconds=0.0,
                clicked_ids=outcome.clicked,
                recorded_at=VIRTUAL_EPOCH + outcome.arrival_at)
            harvested += 1
        self._sink.flush()
        return harvested

    # -- open loop -----------------------------------------------------

    def run_open_loop(self, target_qps: float,
                      max_workers: int = 16) -> ReplayReport:
        """Issue the arrival schedule at a mean of ``target_qps``.

        The virtual horizon is compressed so the spec's total query
        count arrives at ``target_qps`` on average, with the diurnal
        curve and bursts modulating the instantaneous rate around it.
        Arrivals are dispatched on schedule regardless of completions —
        queued work past ``max_workers`` shows up as dispatch lag, shed
        requests as 429-equivalents, never as a silently thinner load.
        """
        if target_qps <= 0:
            raise SchemrError(
                f"target_qps must be positive, got {target_qps}")
        if max_workers < 1:
            raise SchemrError(
                f"max_workers must be >= 1, got {max_workers}")
        generator = SessionGenerator(self._catalog, self._spec)
        events: list[tuple[float, int, int, SessionQuery]] = []
        session_count = 0
        for session in generator.sessions():
            session_count += 1
            self._m_sessions.inc()
            for index, query in enumerate(session.queries):
                events.append((session.started_at + query.arrival_offset,
                               session.session_id, index, query))
        events.sort(key=lambda e: (e[0], e[1], e[2]))
        if not events:
            raise SchemrError("workload produced no query events")
        scale = (len(events) / target_qps) / self._spec.duration_seconds

        from concurrent.futures import ThreadPoolExecutor
        outcomes: list[QueryOutcome] = []
        outcomes_lock = threading.Lock()

        def dispatch(arrival_virtual: float, session_id: int,
                     query_index: int, query: SessionQuery,
                     scheduled_real: float) -> None:
            lag = max(0.0, self._clock() - scheduled_real)
            self._m_lag.observe(lag)
            outcome = self._issue(session_id, query_index, arrival_virtual,
                                  query, lag_seconds=lag)
            with outcomes_lock:
                outcomes.append(outcome)

        started = self._clock()
        with ThreadPoolExecutor(
                max_workers=max_workers,
                thread_name_prefix="replay-open") as executor:
            for arrival_virtual, session_id, query_index, query in events:
                scheduled_real = started + arrival_virtual * scale
                delay = scheduled_real - self._clock()
                if delay > 0:
                    self._sleep(delay)
                executor.submit(dispatch, arrival_virtual, session_id,
                                query_index, query, scheduled_real)
        elapsed = max(self._clock() - started, 1e-9)
        outcomes.sort(key=lambda o: (o.session_id, o.query_index))
        harvested = self._harvest(outcomes)
        return self._report("open", outcomes, elapsed, harvested,
                            target_qps=target_qps)

    # -- reporting -----------------------------------------------------

    def _report(self, mode: str, outcomes: list[QueryOutcome],
                elapsed: float, harvested: int,
                target_qps: float | None) -> ReplayReport:
        completed = [o for o in outcomes if o.results is not None]
        latencies = [o.latency_seconds * 1000.0 for o in completed]
        lags = [o.lag_seconds * 1000.0 for o in outcomes]
        mix: dict[str, int] = {}
        for outcome in completed:
            mix[outcome.degradation] = mix.get(outcome.degradation, 0) + 1
        sessions = len({o.session_id for o in outcomes})
        return ReplayReport(
            mode=mode,
            sessions=sessions,
            queries=len(outcomes),
            completed=len(completed),
            shed=sum(1 for o in outcomes if o.shed),
            errors=sum(1 for o in outcomes if o.error is not None),
            clicks=sum(len(o.clicked) for o in completed),
            records_harvested=harvested,
            elapsed_seconds=elapsed,
            achieved_qps=len(outcomes) / elapsed,
            target_qps=target_qps,
            p50_ms=percentile(latencies, 0.50),
            p90_ms=percentile(latencies, 0.90),
            p99_ms=percentile(latencies, 0.99),
            degradation_mix=mix,
            lag_p99_ms=percentile(lags, 0.99),
        )
