"""Persisting data examples alongside schemas in the repository."""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING

from repro.errors import RepositoryError
from repro.instances.sampler import InstanceTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.repository.store import SchemaRepository

_INSTANCES_SQL = """
CREATE TABLE IF NOT EXISTS instance_tables (
    schema_id  INTEGER NOT NULL,
    entity     TEXT NOT NULL,
    payload    TEXT NOT NULL,
    sampled_at REAL NOT NULL,
    PRIMARY KEY (schema_id, entity)
);
"""


def _ensure_tables(repository: "SchemaRepository") -> None:
    repository.connection.executescript(_INSTANCES_SQL)
    repository.connection.commit()


def save_instances(repository: "SchemaRepository", schema_id: int,
                   tables: dict[str, InstanceTable]) -> None:
    """Store (or replace) the data examples of one schema."""
    _ensure_tables(repository)
    if not repository.has_schema(schema_id):
        raise RepositoryError(
            f"schema {schema_id} is not in the repository")
    now = time.time()
    for entity, table in tables.items():
        repository.connection.execute(
            "INSERT INTO instance_tables (schema_id, entity, payload, "
            "sampled_at) VALUES (?, ?, ?, ?) "
            "ON CONFLICT (schema_id, entity) DO UPDATE SET "
            "payload = excluded.payload, sampled_at = excluded.sampled_at",
            (schema_id, entity, json.dumps(table.columns), now))
    repository.connection.commit()


def load_instances(repository: "SchemaRepository",
                   schema_id: int) -> dict[str, InstanceTable]:
    """The stored data examples of one schema (empty dict when none)."""
    _ensure_tables(repository)
    rows = repository.connection.execute(
        "SELECT entity, payload FROM instance_tables WHERE schema_id = ? "
        "ORDER BY entity", (schema_id,)).fetchall()
    tables: dict[str, InstanceTable] = {}
    for row in rows:
        tables[row["entity"]] = InstanceTable(
            entity=row["entity"],
            columns={column: list(values)
                     for column, values in json.loads(row["payload"])
                     .items()})
    return tables
