"""Instance-based matcher for the ensemble.

Scores attribute pairs by feature-vector similarity of their example
values — what lets two columns named ``stature`` and ``h_cm`` match
because both contain two-to-three digit decimals in the same range.

The matcher needs example values for both sides:

* candidate side — an :class:`InstanceProvider` callable mapping a
  schema id to ``{element_path: values}`` (usually backed by
  :func:`repro.instances.store.load_instances`);
* query side — explicit ``query_instances`` for fragment elements
  (a draft schema's sample data), keyed by fragment element path.

Elements without examples abstain, keeping the matcher safe to include
in any ensemble.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.instances.features import column_features, feature_similarity
from repro.matching.base import Matcher, SimilarityMatrix
from repro.model.query import QueryGraph, QueryItemKind
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.profile import MatchScratch, SchemaMatchProfile

#: schema_id -> {element_path: example values}
InstanceProvider = Callable[[int], dict[str, list[str]]]


class InstanceMatcher(Matcher):
    """Scores attribute pairs by example-value feature similarity."""

    name = "instance"

    def __init__(self, provider: InstanceProvider,
                 query_instances: dict[str, list[str]] | None = None,
                 threshold: float = 0.5) -> None:
        if not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {threshold}")
        self._provider = provider
        self._query_instances = dict(query_instances or {})
        self._threshold = threshold

    def match(self, query: QueryGraph, candidate: Schema,
              profile: "SchemaMatchProfile | None" = None,
              scratch: "MatchScratch | None" = None) -> SimilarityMatrix:
        matrix = self.empty_matrix(query, candidate,
                                   profile=profile, scratch=scratch)
        if candidate.schema_id is None:
            return matrix
        candidate_values = self._provider(candidate.schema_id)
        if not candidate_values or not self._query_instances:
            return matrix
        candidate_features = {
            path: column_features(values)
            for path, values in candidate_values.items() if values
        }
        query_features = self._query_feature_rows(query)
        for row_label, features in query_features:
            for path, cand_features in candidate_features.items():
                score = feature_similarity(features, cand_features)
                if score >= self._threshold:
                    matrix.set(row_label, path, min(score, 1.0))
        return matrix

    def _query_feature_rows(self, query: QueryGraph) \
            -> list[tuple[str, np.ndarray]]:
        rows: list[tuple[str, np.ndarray]] = []
        labels = iter(query.element_labels())
        for item in query.items:
            if item.kind is QueryItemKind.KEYWORD:
                next(labels)  # keywords carry no example values
                continue
            assert item.fragment is not None
            for ref in item.fragment.elements():
                label = next(labels)
                values = self._query_instances.get(ref.path)
                if values:
                    rows.append((label, column_features(values)))
        return rows
