"""Deterministic example-value generators.

Each codebook concept gets a generator producing realistic strings; a
type-family fallback covers unannotated attributes.  All generators
draw from the caller's ``random.Random`` so instance tables are
reproducible per seed.
"""

from __future__ import annotations

import random
from typing import Callable

_FIRST_NAMES = ("amina", "john", "grace", "david", "fatuma", "peter",
                "mary", "joseph", "neema", "samuel", "esther", "paul")
_LAST_NAMES = ("mushi", "smith", "kimaro", "johnson", "massawe", "brown",
               "mwakyusa", "davis", "shayo", "wilson")
_CITIES = ("dar es salaam", "arusha", "dodoma", "mwanza", "mbeya",
           "springfield", "riverside", "fairview", "georgetown")
_STREETS = ("main st", "market rd", "station ave", "hill lane",
            "garden blvd", "lake drive")
_WORDS = ("routine", "follow", "up", "stable", "improved", "referred",
          "observed", "sample", "normal", "elevated", "noted", "pending")
_DOMAINS = ("example.org", "mail.com", "health.tz", "data.net")


ValueGenerator = Callable[[random.Random], str]


def _person_name(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"


def _calendar_date(rng: random.Random) -> str:
    return (f"{rng.randint(1990, 2024):04d}-{rng.randint(1, 12):02d}-"
            f"{rng.randint(1, 28):02d}")


def _timestamp(rng: random.Random) -> str:
    return (f"{_calendar_date(rng)} {rng.randint(0, 23):02d}:"
            f"{rng.randint(0, 59):02d}:{rng.randint(0, 59):02d}")


def _year(rng: random.Random) -> str:
    return str(rng.randint(1950, 2024))


def _latitude(rng: random.Random) -> str:
    return f"{rng.uniform(-90, 90):.5f}"


def _longitude(rng: random.Random) -> str:
    return f"{rng.uniform(-180, 180):.5f}"


def _length(rng: random.Random) -> str:
    return f"{rng.uniform(40, 210):.1f}"


def _mass(rng: random.Random) -> str:
    return f"{rng.uniform(2, 150):.1f}"


def _temperature(rng: random.Random) -> str:
    return f"{rng.uniform(34, 42):.1f}"


def _money(rng: random.Random) -> str:
    return f"{rng.uniform(1, 100000):.2f}"


def _percentage(rng: random.Random) -> str:
    return f"{rng.uniform(0, 100):.1f}"


def _count(rng: random.Random) -> str:
    return str(rng.randint(0, 5000))


def _surrogate_key(rng: random.Random) -> str:
    return str(rng.randint(1, 10_000_000))


def _email(rng: random.Random) -> str:
    user = rng.choice(_FIRST_NAMES)
    return f"{user}{rng.randint(1, 99)}@{rng.choice(_DOMAINS)}"


def _phone(rng: random.Random) -> str:
    return (f"+{rng.randint(1, 255)} {rng.randint(100, 999)} "
            f"{rng.randint(100, 999)} {rng.randint(100, 999)}")


def _postal_address(rng: random.Random) -> str:
    return f"{rng.randint(1, 999)} {rng.choice(_STREETS)}"


def _city(rng: random.Random) -> str:
    return rng.choice(_CITIES)


def _postal_code(rng: random.Random) -> str:
    return f"{rng.randint(10000, 99999)}"


def _free_text(rng: random.Random) -> str:
    return " ".join(rng.choice(_WORDS)
                    for _ in range(rng.randint(3, 8)))


def _national_id(rng: random.Random) -> str:
    return (f"{rng.randint(100, 999)}-{rng.randint(10, 99)}-"
            f"{rng.randint(1000, 9999)}")


def _currency_code(rng: random.Random) -> str:
    return rng.choice(("USD", "TZS", "EUR", "KES", "GBP"))


#: concept name -> generator.
CONCEPT_GENERATORS: dict[str, ValueGenerator] = {
    "person_name": _person_name,
    "calendar_date": _calendar_date,
    "timestamp": _timestamp,
    "year": _year,
    "period": _calendar_date,
    "latitude": _latitude,
    "longitude": _longitude,
    "length": _length,
    "mass": _mass,
    "temperature": _temperature,
    "pressure": _percentage,
    "speed": _length,
    "area": _money,
    "duration": _count,
    "count": _count,
    "percentage": _percentage,
    "money": _money,
    "interest_rate": _percentage,
    "currency_code": _currency_code,
    "surrogate_key": _surrogate_key,
    "national_id": _national_id,
    "email_address": _email,
    "phone_number": _phone,
    "postal_address": _postal_address,
    "city": _city,
    "region": _city,
    "country": _city,
    "postal_code": _postal_code,
    "free_text": _free_text,
}

#: type family -> fallback generator for unannotated attributes.
FAMILY_GENERATORS: dict[str, ValueGenerator] = {
    "numeric": _money,
    "temporal": _calendar_date,
    "boolean": lambda rng: rng.choice(("0", "1")),
    "binary": lambda rng: "0x" + "".join(
        rng.choice("0123456789abcdef") for _ in range(12)),
    "identifier": _surrogate_key,
    "text": _free_text,
}


def generator_for(concept_name: str | None,
                  type_family_name: str | None) -> ValueGenerator:
    """Pick the generator for one attribute; text fallback last."""
    if concept_name is not None and concept_name in CONCEPT_GENERATORS:
        return CONCEPT_GENERATORS[concept_name]
    if type_family_name is not None and type_family_name in \
            FAMILY_GENERATORS:
        return FAMILY_GENERATORS[type_family_name]
    return _free_text
