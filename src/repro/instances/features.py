"""Column featurization for instance-based matching.

A column of example values is summarized into a fixed-length numeric
feature vector capturing the signals instance matchers classically use
(Doan et al.'s multistrategy learners): value length, character-class
composition, numeric distribution, distinctness and format shape.
Similarity between two columns is a bounded distance over these
vectors.
"""

from __future__ import annotations

import math
import statistics

import numpy as np

#: Order of features in the vector (kept stable for tests).
FEATURE_NAMES = (
    "mean_length",
    "std_length",
    "digit_ratio",
    "alpha_ratio",
    "space_ratio",
    "punct_ratio",
    "numeric_fraction",
    "numeric_mean_log",
    "numeric_std_log",
    "distinct_ratio",
    "mean_tokens",
)


def _char_ratios(values: list[str]) -> tuple[float, float, float, float]:
    digits = alphas = spaces = puncts = total = 0
    for value in values:
        for ch in value:
            total += 1
            if ch.isdigit():
                digits += 1
            elif ch.isalpha():
                alphas += 1
            elif ch.isspace():
                spaces += 1
            else:
                puncts += 1
    if total == 0:
        return (0.0, 0.0, 0.0, 0.0)
    return (digits / total, alphas / total, spaces / total, puncts / total)


def _numeric_stats(values: list[str]) -> tuple[float, float, float]:
    numbers = []
    for value in values:
        try:
            numbers.append(float(value))
        except ValueError:
            continue
    if not numbers:
        return (0.0, 0.0, 0.0)
    fraction = len(numbers) / len(values)
    logs = [math.log10(abs(n) + 1.0) for n in numbers]
    mean_log = statistics.fmean(logs)
    std_log = statistics.pstdev(logs) if len(logs) > 1 else 0.0
    return (fraction, mean_log, std_log)


def column_features(values: list[str]) -> np.ndarray:
    """The feature vector of one column; zero vector for no values."""
    if not values:
        return np.zeros(len(FEATURE_NAMES))
    lengths = [len(value) for value in values]
    mean_length = statistics.fmean(lengths)
    std_length = statistics.pstdev(lengths) if len(lengths) > 1 else 0.0
    digit_ratio, alpha_ratio, space_ratio, punct_ratio = \
        _char_ratios(values)
    numeric_fraction, numeric_mean_log, numeric_std_log = \
        _numeric_stats(values)
    distinct_ratio = len(set(values)) / len(values)
    mean_tokens = statistics.fmean(
        [len(value.split()) for value in values])
    return np.array([
        mean_length,
        std_length,
        digit_ratio,
        alpha_ratio,
        space_ratio,
        punct_ratio,
        numeric_fraction,
        numeric_mean_log,
        numeric_std_log,
        distinct_ratio,
        mean_tokens,
    ])


#: Per-feature scales used to normalize absolute differences into [0, 1].
_FEATURE_SCALES = np.array([
    20.0,   # mean_length
    10.0,   # std_length
    1.0,    # digit_ratio
    1.0,    # alpha_ratio
    1.0,    # space_ratio
    1.0,    # punct_ratio
    1.0,    # numeric_fraction
    4.0,    # numeric_mean_log
    2.0,    # numeric_std_log
    1.0,    # distinct_ratio
    4.0,    # mean_tokens
])


def feature_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Similarity of two feature vectors in [0, 1].

    Mean of per-feature agreements, where each agreement is
    ``1 - min(|Δ| / scale, 1)``.  Zero vectors (no data) score 0.
    """
    if not a.any() and not b.any():
        return 0.0
    deltas = np.minimum(np.abs(a - b) / _FEATURE_SCALES, 1.0)
    return float(1.0 - deltas.mean())
