"""Instance table sampling for schemas."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.codebook.annotate import annotate_schema
from repro.errors import SchemaError
from repro.instances.values import generator_for
from repro.matching.datatype import type_family
from repro.model.schema import Schema


@dataclass(slots=True)
class InstanceTable:
    """Example rows for one entity: column name -> list of values."""

    entity: str
    columns: dict[str, list[str]] = field(default_factory=dict)

    @property
    def row_count(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def rows(self) -> list[tuple[str, ...]]:
        """Row-major view (for display and export)."""
        names = list(self.columns)
        return [tuple(self.columns[name][i] for name in names)
                for i in range(self.row_count)]


def generate_instances(schema: Schema, rows: int = 20,
                       seed: int = 11) -> dict[str, InstanceTable]:
    """Sample ``rows`` example values per attribute of every entity.

    Generators are chosen by codebook concept first, declared-type
    family second, free text last; a fixed ``seed`` makes tables
    reproducible (important for matcher tests and stored examples).
    """
    if rows <= 0:
        raise SchemaError(f"rows must be positive, got {rows}")
    rng = random.Random(seed)
    annotated = annotate_schema(schema)
    tables: dict[str, InstanceTable] = {}
    for entity in schema.entities.values():
        table = InstanceTable(entity=entity.name)
        for attr in entity.attributes:
            path = f"{entity.name}.{attr.name}"
            concept = annotated.concept_of(path)
            generator = generator_for(
                None if concept is None else concept.name,
                type_family(attr.data_type))
            table.columns[attr.name] = [generator(rng)
                                        for _ in range(rows)]
        tables[entity.name] = table
    return tables


def instances_by_path(tables: dict[str, InstanceTable]) \
        -> dict[str, list[str]]:
    """Flatten instance tables to ``entity.attribute -> values``."""
    out: dict[str, list[str]] = {}
    for table in tables.values():
        for column, values in table.columns.items():
            out[f"{table.entity}.{column}"] = values
    return out
