"""Data examples: instance generation, storage and instance-based matching.

The paper's designer "wants to search for related schemas and data
examples", and the cited multistrategy learning work (Doan et al.)
matches on instance data as well as names.  This package supplies the
substrate:

* :mod:`~repro.instances.values` — deterministic value generators per
  codebook concept (names, dates, coordinates, money, ...) with
  SQL-type-family fallbacks;
* :mod:`~repro.instances.sampler` — sample instance tables for any
  schema;
* :mod:`~repro.instances.store` — persist data examples alongside
  schemas in the repository;
* :mod:`~repro.instances.features` — column featurization (length,
  character-class, numeric statistics);
* :mod:`~repro.instances.matcher` — an :class:`InstanceMatcher` that
  scores attribute pairs by feature-vector similarity of their example
  values.
"""

from repro.instances.features import column_features, feature_similarity
from repro.instances.matcher import InstanceMatcher
from repro.instances.sampler import InstanceTable, generate_instances
from repro.instances.store import load_instances, save_instances

__all__ = [
    "InstanceMatcher",
    "InstanceTable",
    "column_features",
    "feature_similarity",
    "generate_instances",
    "load_instances",
    "save_instances",
]
