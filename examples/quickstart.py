"""Quickstart: import schemas, search, and visualize — in two minutes.

Run:  python examples/quickstart.py
"""

from repro import SchemaRepository, format_result_table
from repro.model.graph import schema_to_networkx
from repro.viz.ascii_art import render_ascii_tree
from repro.viz.drill import display_subgraph

CLINIC_DDL = """
CREATE TABLE patient (
  id INTEGER PRIMARY KEY,
  name VARCHAR(100) NOT NULL,
  height DECIMAL(5,2),
  gender CHAR(1)
);
CREATE TABLE doctor (
  id INTEGER PRIMARY KEY,
  name VARCHAR(100),
  gender CHAR(1),
  specialty VARCHAR(50)
);
CREATE TABLE "case" (
  id INTEGER PRIMARY KEY,
  patient_id INTEGER REFERENCES patient(id),
  doctor_id INTEGER REFERENCES doctor(id),
  diagnosis TEXT
);
"""

HR_DDL = """
CREATE TABLE employee (
  id INTEGER PRIMARY KEY,
  fname VARCHAR(50),
  lname VARCHAR(50),
  sal DECIMAL(10,2),
  dept_id INTEGER REFERENCES department(id)
);
CREATE TABLE department (
  id INTEGER PRIMARY KEY,
  name VARCHAR(50)
);
"""

ECO_XSD = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
 <xs:element name="site">
  <xs:complexType>
   <xs:sequence>
    <xs:element name="site_name" type="xs:string"/>
    <xs:element name="latitude" type="xs:decimal"/>
    <xs:element name="longitude" type="xs:decimal"/>
    <xs:element name="observation">
     <xs:complexType>
      <xs:sequence>
       <xs:element name="species" type="xs:string"/>
       <xs:element name="obs_date" type="xs:date"/>
       <xs:element name="count" type="xs:integer"/>
      </xs:sequence>
     </xs:complexType>
    </xs:element>
   </xs:sequence>
  </xs:complexType>
 </xs:element>
</xs:schema>"""


def main() -> None:
    # 1. A repository holds schemas; imports parse DDL or XSD.
    repo = SchemaRepository.in_memory()
    repo.import_ddl(CLINIC_DDL, name="clinic_emr",
                    description="health clinic records")
    repo.import_ddl(HR_DDL, name="hr_payroll",
                    description="employee payroll")
    repo.import_xsd(ECO_XSD, name="conservation_monitoring",
                    description="species observations")

    # 2. engine() refreshes the text index and returns the 3-phase
    #    search engine (candidates -> matching -> tightness-of-fit).
    engine = repo.engine()
    print("keyword search: patient, height, gender, diagnosis\n")
    results = engine.search("patient, height, gender, diagnosis")
    print(format_result_table(results))

    # 3. Queries can also carry a partially designed schema fragment.
    print("\nquery by example (DDL fragment):\n")
    fragment = "CREATE TABLE patient (height DECIMAL, gender CHAR(1));"
    for result in engine.search(fragment=fragment, top_n=3):
        print(f"  {result.name:<28} score={result.score:.4f} "
              f"anchor={result.best_anchor}")

    # 4. Drill into the top result (the GUI tree view, in your terminal).
    top = results[0]
    schema = repo.get_schema(top.schema_id)
    graph = schema_to_networkx(schema)
    for path, score in top.element_scores.items():
        if graph.has_node(path):
            graph.nodes[path]["match_score"] = score
    print(f"\ntop result {top.name!r} with match scores:\n")
    print(render_ascii_tree(display_subgraph(graph)))

    repo.close()


if __name__ == "__main__":
    main()
