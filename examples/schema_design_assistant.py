"""Search-as-you-design with a learning loop.

The paper's OpenII integration sketch: "integrating Schemr with a schema
editor would allow for a new model development process, in which search
results are iteratively used to augment a schema", while recorded search
histories train the matcher weighting scheme.

This example simulates that loop: a designer grows a retail 'order'
schema over three iterations, clicking the results that helped; the
recorded history then trains the logistic-regression meta-learner and
the learned weights replace the uniform scheme.

Run:  python examples/schema_design_assistant.py
"""

from repro import MatcherEnsemble, SchemaRepository
from repro.corpus.filters import paper_filter
from repro.corpus.generator import CorpusGenerator
from repro.matching.learner import WeightLearner
from repro.model.query import QueryGraph
from repro.repository.history import build_training_set, record_search

CORPUS_SIZE = 1500

ITERATIONS = [
    # (draft DDL, what the designer is looking for this round)
    ("""CREATE TABLE "order" (
          order_id INTEGER PRIMARY KEY,
          order_date DATE
        );""",
     "order status amount"),
    ("""CREATE TABLE "order" (
          order_id INTEGER PRIMARY KEY,
          order_date DATE,
          status VARCHAR(20),
          total_amount DECIMAL(10,2)
        );""",
     "customer shipping address"),
    ("""CREATE TABLE "order" (
          order_id INTEGER PRIMARY KEY,
          order_date DATE,
          status VARCHAR(20),
          total_amount DECIMAL(10,2),
          customer_id INTEGER,
          shipping_cost DECIMAL(8,2)
        );""",
     "order item quantity unit price"),
]


def main() -> None:
    generator = CorpusGenerator(seed=7)
    stats = paper_filter(generator.generate_raw_stream(CORPUS_SIZE))
    repo = SchemaRepository.in_memory()
    for generated in stats.kept:
        repo.add_schema(generated.schema)
    engine = repo.engine()
    print(f"repository: {repo.schema_count} schemas\n")

    # --- the design loop, recording history as the designer clicks ----
    for round_number, (draft, keywords) in enumerate(ITERATIONS, start=1):
        print(f"iteration {round_number}: draft has "
              f"{draft.count(',') + 1} columns; searching "
              f"{keywords!r} + draft")
        results = engine.search(keywords=keywords, fragment=draft,
                                top_n=5)
        graph = QueryGraph.build(keywords=keywords.split())
        for rank, result in enumerate(results, start=1):
            schema = repo.get_schema(result.schema_id)
            per_matcher = engine.ensemble.match(graph, schema).per_matcher
            features = {name: float(matrix.values.max())
                        for name, matrix in per_matcher.items()}
            # The designer clicks helpful results near the top; deep
            # results she scrolled past count as implicit negatives.
            clicked = rank <= 2 and "retail" in result.name
            record_search(repo, keywords, result.schema_id, clicked,
                          features)
            marker = "*" if clicked else " "
            print(f"   {marker} {result.name:<40} "
                  f"score={result.score:.4f}")
        print()

    # --- train the meta-learner on what was recorded ------------------
    examples = build_training_set(repo)
    positives = sum(example.relevant for example in examples)
    print(f"recorded history: {len(examples)} examples "
          f"({positives} clicks)")
    if positives == 0 or positives == len(examples):
        print("history has a single class; keeping uniform weights")
        repo.close()
        return

    learner = WeightLearner(engine.ensemble.matcher_names)
    learner.fit(examples)
    weights = learner.weights()
    print("learned weights: "
          + ", ".join(f"{name}={value:.3f}"
                      for name, value in weights.items()))
    print(f"training accuracy: {learner.accuracy(examples):.3f}\n")

    # --- the next session starts with the learned scheme --------------
    tuned = MatcherEnsemble.default()
    tuned.set_weights(weights)
    tuned_engine = repo.engine(ensemble=tuned)
    final_draft, final_keywords = ITERATIONS[-1]
    print("re-running the last query with learned weights:")
    for result in tuned_engine.search(keywords=final_keywords,
                                      fragment=final_draft, top_n=3):
        print(f"   {result.name:<40} score={result.score:.4f}")
    repo.close()


if __name__ == "__main__":
    main()
