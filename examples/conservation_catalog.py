"""The Nature Conservancy scenario: a public catalog of environmental
monitoring schemas, at WebTables scale.

Builds a few thousand crawled-style schemas (with the junk a crawl
contains), applies the paper's filter pipeline, serves search over HTTP
— the way a consortium would deploy Schemr — and exports an SVG
comparison of the top hits.

Run:  python examples/conservation_catalog.py
"""

from pathlib import Path

from repro import SchemaRepository
from repro.corpus.filters import paper_filter
from repro.corpus.generator import CorpusGenerator
from repro.model.graph import schema_to_networkx
from repro.service.client import SchemrClient
from repro.service.server import SchemrServer
from repro.viz.drill import display_subgraph
from repro.viz.radial import radial_layout
from repro.viz.svg import render_side_by_side

CORPUS_SIZE = 3000
OUT_SVG = Path(__file__).parent / "conservation_comparison.svg"


def main() -> None:
    # 1. Crawl simulation + the paper's filter pipeline.
    generator = CorpusGenerator(seed=2024)
    raw = generator.generate_raw_stream(CORPUS_SIZE)
    stats = paper_filter(raw)
    print(stats.summary())

    repo = SchemaRepository.in_memory()
    for generated in stats.kept:
        repo.add_schema(generated.schema)
    print(f"catalog holds {repo.schema_count} schemas")

    # 2. Serve it: the GUI would talk to these two endpoints.
    server = SchemrServer(repo)
    with server.running() as base_url:
        print(f"catalog service at {base_url}")
        client = SchemrClient(base_url)

        results = client.search("site species observation count date",
                                top_n=5)
        print("\ntop hits for 'site species observation count date':")
        for result in results:
            print(f"  #{result.schema_id:<5} {result.name:<40} "
                  f"score={result.score:.4f}")

        # 3. Fetch the top two as GraphML and render them side by side —
        #    Figure 2's comparison workspace, as an SVG file.
        layouts = []
        for result in results[:2]:
            graph = client.schema_graph(result.schema_id,
                                        match_scores=result.element_scores)
            display = display_subgraph(graph)
            layout = radial_layout(display)
            layout.name = result.name
            layouts.append(layout)
        OUT_SVG.write_text(render_side_by_side(layouts), encoding="utf-8")
        print(f"\nwrote side-by-side radial comparison to {OUT_SVG}")

    # 4. The offline indexer keeps the catalog fresh as members
    #    contribute: add a schema, refresh, search again.
    new_id = repo.import_ddl(
        """
        CREATE TABLE water_quality_site (
          site_id INTEGER PRIMARY KEY,
          river VARCHAR(80),
          ph DECIMAL(3,1),
          dissolved_oxygen DECIMAL(4,1),
          turbidity DECIMAL(5,1)
        );
        """,
        name="member_水_quality_upload".replace("水", "water"),
        description="new member contribution")
    applied = repo.reindex()
    print(f"\nmember contributed schema {new_id}; indexer applied "
          f"{applied} operation(s)")
    engine = repo.engine()
    hits = engine.search("river ph turbidity", top_n=3)
    for result in hits:
        print(f"  {result.name:<36} score={result.score:.4f}")

    # Local schema_to_networkx use keeps this example self-contained for
    # users without the HTTP layer.
    schema = repo.get_schema(new_id)
    assert schema_to_networkx(schema).number_of_nodes() > 1
    repo.close()


if __name__ == "__main__":
    main()
