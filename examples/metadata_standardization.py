"""Deep metadata tooling: codebook annotation, schema summarization,
mapping capture and provenance.

The paper's OpenII integration sketch, end to end:

* the **codebook** ("data types like units, date/time, and geographic
  location") annotates attributes with standardized concepts and powers
  a matcher that sees through vocabulary gaps (stature == height);
* **summarization** (Yu & Jagadish, cited as planned work) gives a
  size-k structural map of a large schema before drilling in;
* adopting a search result **captures the implicit element mapping**
  and records **provenance**, from which schema re-use statistics fall
  out.

Run:  python examples/metadata_standardization.py
"""

from repro import SchemaRepository, format_result_table
from repro.codebook.annotate import annotate_schema
from repro.codebook.matcher import CodebookMatcher
from repro.mapping.derive import derive_mapping
from repro.mapping.store import (
    provenance_of,
    record_provenance,
    reuse_statistics,
    save_mapping,
)
from repro.matching.context import ContextMatcher
from repro.matching.ensemble import MatcherEnsemble
from repro.matching.name import NameMatcher
from repro.model.query import QueryGraph
from repro.parsers.ddl import parse_ddl
from repro.viz.summarize import summarize_schema

#: A national surveillance warehouse — large enough to need a summary,
#: with vocabulary that defeats pure name matching.
WAREHOUSE_DDL = """
CREATE TABLE subject (
  subject_id INTEGER PRIMARY KEY,
  full_name VARCHAR(120),
  sex CHAR(1),
  stature DECIMAL(5,2),
  body_mass DECIMAL(5,2),
  birth_date DATE
);
CREATE TABLE encounter (
  encounter_id INTEGER PRIMARY KEY,
  subject_id INTEGER REFERENCES subject(subject_id),
  encounter_time TIMESTAMP,
  body_temperature REAL,
  systolic_pressure INTEGER
);
CREATE TABLE condition (
  condition_id INTEGER PRIMARY KEY,
  encounter_id INTEGER REFERENCES encounter(encounter_id),
  icd_code VARCHAR(10),
  onset_date DATE
);
CREATE TABLE facility (
  facility_id INTEGER PRIMARY KEY,
  facility_name VARCHAR(120),
  latitude REAL,
  longitude REAL,
  district VARCHAR(60)
);
CREATE TABLE catchment (
  catchment_id INTEGER PRIMARY KEY,
  facility_id INTEGER REFERENCES facility(facility_id),
  population INTEGER,
  area DECIMAL(10,2)
);
CREATE TABLE lab_result (
  result_id INTEGER PRIMARY KEY,
  encounter_id INTEGER REFERENCES encounter(encounter_id),
  assay VARCHAR(40),
  value DECIMAL(10,3),
  unit VARCHAR(12)
);
"""

#: The designer's draft, in her own vocabulary.
DRAFT_DDL = """
CREATE TABLE patient (
  patient_id INTEGER PRIMARY KEY,
  name VARCHAR(100),
  gender CHAR(1),
  height DECIMAL(5,2),
  weight DECIMAL(5,2)
);
"""


def main() -> None:
    repo = SchemaRepository.in_memory()
    warehouse_id = repo.import_ddl(
        WAREHOUSE_DDL, name="national_warehouse",
        description="national surveillance warehouse")

    # --- codebook annotation -------------------------------------------
    warehouse = repo.get_schema(warehouse_id)
    annotated = annotate_schema(warehouse)
    print(f"codebook coverage of {warehouse.name!r}: "
          f"{annotated.coverage:.0%}")
    for category, paths in sorted(annotated.by_category().items()):
        print(f"  {category:<11} {len(paths):2d} attributes "
              f"(e.g. {paths[0]})")

    # --- summarization ---------------------------------------------------
    summary = summarize_schema(warehouse, k=3)
    print(f"\nsize-3 summary (of {warehouse.entity_count} entities):")
    for name in summary.entities:
        print(f"  {name:<12} importance={summary.importance[name]:.3f}")
    for edge in summary.edges:
        note = "fk" if edge.direct else f"via {edge.via_count}"
        print(f"  {edge.source} -- {edge.target} ({note})")

    # --- codebook-powered search ----------------------------------------
    # Weight the codebook up: this repository's vocabulary gap (stature
    # vs height) is exactly what concept matching is for.
    ensemble = MatcherEnsemble(
        [NameMatcher(), ContextMatcher(), CodebookMatcher()],
        weights={"name": 1.0, "context": 0.5, "codebook": 2.0})
    engine = repo.engine(ensemble=ensemble)
    print("\nsearch with draft (height/weight vs stature/body_mass):")
    results = engine.search(keywords="subject", fragment=DRAFT_DDL)
    print(format_result_table(results))

    # --- mapping capture + provenance ------------------------------------
    draft = parse_ddl(DRAFT_DDL, "patient_draft")
    query = QueryGraph.build(fragments=[draft])
    combined = ensemble.match(query, warehouse).combined
    mapping = derive_mapping(combined, source_name="patient_draft",
                             target_name=warehouse.name, threshold=0.4)
    print("captured element mapping "
          f"(mean confidence {mapping.mean_confidence():.2f}):")
    for correspondence in mapping.correspondences:
        print(f"  {correspondence.source_element:<26} -> "
              f"{correspondence.target_element:<28} "
              f"{correspondence.confidence:.2f}")
    save_mapping(repo, mapping, target_schema_id=warehouse_id)

    # The designer finalizes her draft and stores it; adopted elements
    # carry provenance back to the warehouse schema.
    draft_id = repo.add_schema(draft)
    for correspondence in mapping.correspondences:
        source_element = correspondence.source_element.split(":", 1)[1]
        record_provenance(repo, draft_id, source_element,
                          warehouse_id, correspondence.target_element)
    print(f"\nprovenance of schema {draft_id}:")
    for record in provenance_of(repo, draft_id):
        print(f"  {record.element_path:<22} adopted from "
              f"{record.origin_element}")
    print(f"re-use statistics: {reuse_statistics(repo)}")
    repo.close()


if __name__ == "__main__":
    main()
