"""The paper's motivating scenario: a rural health system's database
administrator designs a new table with Schemr's help.

She is modeling patient intake for a district clinic.  Instead of
starting from a blank page, she searches the shared repository — seeded
by partner organizations — with keywords AND her partial design, then
drills into the best hit, leaves a comment, and adopts elements she was
missing.

Run:  python examples/health_clinic.py
"""

from repro import SchemaRepository, format_result_table
from repro.model.graph import schema_to_networkx
from repro.repository.collab import (
    add_comment,
    average_rating,
    comments_for,
    rate_schema,
    record_click,
    record_impressions,
)
from repro.viz.ascii_art import render_ascii_tree
from repro.viz.drill import drill_in

#: Schemas contributed by partner organizations (regional programs,
#: ministries of health, NGOs) — each with its own naming conventions.
PARTNER_SCHEMAS = {
    "tanzania_hiv_program": """
    CREATE TABLE patient (
      patient_id INTEGER PRIMARY KEY,
      fname VARCHAR(60),
      lname VARCHAR(60),
      dob DATE,
      gender CHAR(1),
      height DECIMAL(5,2),
      weight DECIMAL(5,2),
      village VARCHAR(80)
    );
    CREATE TABLE visit (
      visit_id INTEGER PRIMARY KEY,
      patient_id INTEGER REFERENCES patient(patient_id),
      visit_date DATE,
      cd4_count INTEGER,
      who_stage SMALLINT,
      regimen VARCHAR(40)
    );
    CREATE TABLE clinic (
      clinic_id INTEGER PRIMARY KEY,
      clinic_name VARCHAR(100),
      district VARCHAR(60)
    );
    """,
    "district_hospital_emr": """
    CREATE TABLE Patients (
      ID INTEGER PRIMARY KEY,
      FullName VARCHAR(120),
      Sex CHAR(1),
      BirthDate DATE,
      PhoneNumber VARCHAR(20)
    );
    CREATE TABLE Encounters (
      EncounterID INTEGER PRIMARY KEY,
      PatientID INTEGER REFERENCES Patients(ID),
      Diagnosis TEXT,
      Outcome VARCHAR(30),
      EncounterDate DATE
    );
    """,
    "community_health_workers": """
    CREATE TABLE chw (
      chw_id INTEGER PRIMARY KEY,
      name VARCHAR(80),
      catchment_area VARCHAR(80),
      phone VARCHAR(20)
    );
    CREATE TABLE household_visit (
      id INTEGER PRIMARY KEY,
      chw_id INTEGER REFERENCES chw(chw_id),
      visit_date DATE,
      household_size INTEGER,
      bednets INTEGER,
      referrals INTEGER
    );
    """,
    "national_hmis_export": """
    CREATE TABLE facility (
      facility_code VARCHAR(12) PRIMARY KEY,
      facility_name VARCHAR(120),
      region VARCHAR(60),
      district VARCHAR(60),
      facility_type VARCHAR(30)
    );
    CREATE TABLE monthly_report (
      report_id INTEGER PRIMARY KEY,
      facility_code VARCHAR(12) REFERENCES facility(facility_code),
      period CHAR(7),
      opd_attendance INTEGER,
      malaria_cases INTEGER,
      anc_visits INTEGER
    );
    """,
}

#: Her partially designed intake table so far.
DRAFT = """
CREATE TABLE patient_intake (
  intake_id INTEGER PRIMARY KEY,
  patient_name VARCHAR(100),
  gender CHAR(1),
  height DECIMAL(5,2)
);
"""


def main() -> None:
    repo = SchemaRepository.in_memory()
    for name, ddl in PARTNER_SCHEMAS.items():
        repo.import_ddl(ddl, name=name,
                        description=f"shared by {name.replace('_', ' ')}")

    engine = repo.engine()

    print("=" * 70)
    print("Search: keywords 'patient, height, gender, diagnosis'"
          " + the draft table")
    print("=" * 70)
    results = engine.search("patient, height, gender, diagnosis",
                            fragment=DRAFT)
    print(format_result_table(results))
    record_impressions(repo, [r.schema_id for r in results])

    # She clicks the top result to inspect it.
    top = results[0]
    record_click(repo, top.schema_id)
    schema = repo.get_schema(top.schema_id)
    graph = schema_to_networkx(schema)
    for path, score in top.element_scores.items():
        if graph.has_node(path):
            graph.nodes[path]["match_score"] = score

    print(f"\ndrill-in on {top.name!r} (anchor entity: "
          f"{top.best_anchor}):\n")
    print(render_ascii_tree(drill_in(graph, top.best_anchor or "patient")))

    # Collaboration: she rates the schema and leaves a comment for the
    # partner organization.
    rate_schema(repo, top.schema_id, "clinic_dba", 5)
    add_comment(repo, top.schema_id, "clinic_dba",
                "Adopting your patient demographics block; consider "
                "adding units to height (cm?).")
    print(f"\nrating now: {average_rating(repo, top.schema_id):.1f} stars")
    for comment in comments_for(repo, top.schema_id):
        print(f"comment by {comment.user}: {comment.body}")

    # She extends her draft with what she learned and searches again —
    # the iterative model development process the paper sketches.
    refined = DRAFT.replace(
        "height DECIMAL(5,2)",
        "height DECIMAL(5,2),\n  weight DECIMAL(5,2),\n  dob DATE")
    print("\nrefined draft (adopted weight + dob) — new search:")
    for result in engine.search(fragment=refined, top_n=3):
        print(f"  {result.name:<28} score={result.score:.4f} "
              f"matches={result.match_count}")

    repo.close()


if __name__ == "__main__":
    main()
